//! The laminar-instance algorithm of Section 5 (Theorem 9):
//! non-migratory scheduling of laminar instances on `O(m log m)` machines.
//!
//! α-loose jobs are routed to a separate pool scheduled by non-migratory
//! first-fit EDF (Theorem 5 supplies the `O(m)` budget). For the α-tight
//! jobs the paper's *sub-budget balancing* scheme is implemented verbatim:
//!
//! * each arriving job `j` is assigned immediately, in index order;
//! * a machine none of whose assigned jobs' windows intersect `I(j)` takes
//!   `j` for free;
//! * otherwise every machine's ≺-minimal overlapping job is *responsible*;
//!   by laminarity the responsible jobs form a chain
//!   `c_1(j) ≺ c_2(j) ≺ …` of **candidates**;
//! * candidate laxities are split into `m'` equal sub-budgets; `j` is
//!   assigned to the machine of the smallest `i` whose candidate `c_i(j)`
//!   still has `ℓ_{c_i}/m' − Σ_{j' ∈ U_i(c_i)} |I(j')| ≥ |I(j)|` in its
//!   `i`-th sub-budget, which is then charged `|I(j)|`;
//! * each machine runs its unfinished assigned job with minimum deadline
//!   (unique while no budget is violated — Lemma 5).
//!
//! The greedy variant that always picks the ≺-minimal candidate with enough
//! *total* budget — which the paper notes fails on hard laminar instances
//! [10, Thm 2.13] — is available as [`AssignMode::GreedyTotal`] for the
//! ablation experiment E11.

use std::collections::BTreeMap;

use mm_instance::{Job, JobId};
use mm_numeric::Rat;
use mm_sim::{Decision, OnlinePolicy, SimState};

use crate::edf::fits_single_machine;

/// Candidate-selection rule for the tight-job pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssignMode {
    /// The paper's balanced sub-budget scheme (Section 5.1).
    Balanced,
    /// Greedy ≺-minimal candidate with a single pooled budget (the rule the
    /// paper shows is insufficient); used for the ablation.
    GreedyTotal,
}

/// The Section 5 algorithm.
#[derive(Debug)]
pub struct LaminarBudget {
    /// Number of machines `m'` in the tight pool (also sub-budget count).
    m_prime: usize,
    /// Number of machines in the loose pool, placed after the tight pool.
    loose_machines: usize,
    /// Tightness threshold α.
    alpha: Rat,
    mode: AssignMode,
    /// machine (tight-pool index) → assigned jobs, in assignment order.
    machine_jobs: Vec<Vec<Job>>,
    /// job → tight-pool machine.
    tight_assignment: BTreeMap<JobId, usize>,
    /// candidate job → consumed volume per sub-budget (`m'` entries,
    /// lazily created). In greedy mode only entry 0 is used.
    consumed: BTreeMap<JobId, Vec<Rat>>,
    /// loose job → loose-pool machine (relative index).
    loose_assignment: BTreeMap<JobId, usize>,
    /// Jobs the assignment procedure failed on (Theorem 9 predicts none for
    /// `m' = Θ(m log m)` on laminar instances).
    failures: Vec<JobId>,
}

impl LaminarBudget {
    /// Creates the algorithm with `m_prime` tight-pool machines and
    /// `loose_machines` machines for the α-loose side channel.
    pub fn new(m_prime: usize, loose_machines: usize, alpha: Rat) -> Self {
        assert!(m_prime >= 1);
        assert!(alpha.is_positive() && alpha < Rat::one());
        LaminarBudget {
            m_prime,
            loose_machines,
            alpha,
            mode: AssignMode::Balanced,
            machine_jobs: vec![Vec::new(); m_prime],
            tight_assignment: BTreeMap::new(),
            consumed: BTreeMap::new(),
            loose_assignment: BTreeMap::new(),
            failures: Vec::new(),
        }
    }

    /// Sub-budget count / machine budget `m' = ⌈c·m·log₂(m+1)⌉` suggested by
    /// Theorem 9 for optimum `m` and constant `c`.
    pub fn suggested_m_prime(m: u64, c: u64) -> usize {
        let log = (64 - (m + 1).leading_zeros() as u64).max(1);
        (c * m * log).max(1) as usize
    }

    /// Switches the assignment rule (ablation).
    pub fn with_mode(mut self, mode: AssignMode) -> Self {
        self.mode = mode;
        self
    }

    /// Total machine budget (tight + loose pools).
    pub fn total_machines(&self) -> usize {
        self.m_prime + self.loose_machines
    }

    /// Jobs whose assignment failed so far.
    pub fn failures(&self) -> &[JobId] {
        &self.failures
    }

    /// Assigns a tight job per the balancing scheme. Returns the tight-pool
    /// machine, or `None` on assignment failure.
    fn assign_tight(&mut self, job: &Job) -> Option<usize> {
        // Free machine: no assigned job with overlapping window.
        for (mi, jobs) in self.machine_jobs.iter().enumerate() {
            if jobs.iter().all(|j| !j.window().overlaps(&job.window())) {
                return Some(mi);
            }
        }
        // Responsible job per machine: the ⊀-minimal (smallest-window)
        // assigned job whose window overlaps I(j). In a laminar instance all
        // overlapping previously-assigned jobs dominate j, so "smallest
        // window" is the unique ≺-minimal one.
        let mut candidates: Vec<(Rat, JobId, Rat, usize)> = Vec::new(); // (win_len, id, laxity, machine)
        for (mi, jobs) in self.machine_jobs.iter().enumerate() {
            let resp = jobs
                .iter()
                .filter(|j| j.window().overlaps(&job.window()))
                .min_by(|a, b| {
                    a.window_length()
                        .cmp(&b.window_length())
                        .then(b.id.cmp(&a.id))
                })
                .expect("machine had an overlap in the previous loop");
            candidates.push((resp.window_length(), resp.id, resp.laxity(), mi));
        }
        // Chain order: most nested candidate first.
        candidates.sort_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)));
        let need = job.window_length();
        match self.mode {
            AssignMode::Balanced => {
                for (i, (_, cand, laxity, mi)) in candidates.iter().enumerate() {
                    let slots = self
                        .consumed
                        .entry(*cand)
                        .or_insert_with(|| vec![Rat::zero(); self.m_prime]);
                    let sub_budget = laxity / Rat::from(self.m_prime as u64);
                    if &sub_budget - &slots[i] >= need {
                        slots[i] += &need;
                        return Some(*mi);
                    }
                }
                None
            }
            AssignMode::GreedyTotal => {
                for (_, cand, laxity, mi) in candidates.iter() {
                    let slots = self
                        .consumed
                        .entry(*cand)
                        .or_insert_with(|| vec![Rat::zero(); 1]);
                    if laxity - &slots[0] >= need {
                        slots[0] += &need;
                        return Some(*mi);
                    }
                }
                None
            }
        }
    }
}

impl OnlinePolicy for LaminarBudget {
    fn decide(&mut self, state: &SimState<'_>) -> Decision {
        // Assign new arrivals in index order (the paper's canonical order).
        let mut new: Vec<Job> = state
            .active
            .values()
            .filter(|a| {
                !self.tight_assignment.contains_key(&a.job.id)
                    && !self.loose_assignment.contains_key(&a.job.id)
                    && !self.failures.contains(&a.job.id)
            })
            .map(|a| a.job.clone())
            .collect();
        new.sort_by(|a, b| {
            a.release
                .cmp(&b.release)
                .then(b.deadline.cmp(&a.deadline))
                .then(a.id.cmp(&b.id))
        });
        for job in new {
            if job.is_loose(&self.alpha) && self.loose_machines > 0 {
                // Loose side channel: first-fit EDF (Theorem 5).
                let mut chosen = self.loose_machines - 1;
                for lm in 0..self.loose_machines {
                    let mut load: Vec<(Rat, Rat)> = state
                        .active
                        .values()
                        .filter(|o| self.loose_assignment.get(&o.job.id) == Some(&lm))
                        .map(|o| (o.job.deadline.clone(), o.remaining.clone()))
                        .collect();
                    load.push((job.deadline.clone(), job.processing.clone()));
                    if fits_single_machine(state.time, state.speed, &load) {
                        chosen = lm;
                        break;
                    }
                }
                self.loose_assignment.insert(job.id, chosen);
            } else {
                match self.assign_tight(&job) {
                    Some(mi) => {
                        self.machine_jobs[mi].push(job.clone());
                        self.tight_assignment.insert(job.id, mi);
                    }
                    None => self.failures.push(job.id),
                }
            }
        }
        // Per machine: run the active assigned job with minimum deadline.
        let mut best: BTreeMap<usize, (Rat, JobId)> = BTreeMap::new();
        for a in state.active.values() {
            let machine = if let Some(mi) = self.tight_assignment.get(&a.job.id) {
                *mi
            } else if let Some(lm) = self.loose_assignment.get(&a.job.id) {
                self.m_prime + lm
            } else {
                continue; // failed assignment: starves and misses
            };
            let key = (a.job.deadline.clone(), a.job.id);
            match best.get(&machine) {
                Some(cur) if *cur <= key => {}
                _ => {
                    best.insert(machine, key);
                }
            }
        }
        Decision {
            run: best.into_iter().map(|(m, (_, j))| (m, j)).collect(),
            wake_at: None,
        }
    }

    fn name(&self) -> &'static str {
        "laminar-budget"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_instance::generators::{laminar, laminar_hard_chain, LaminarCfg};
    use mm_instance::Instance;
    use mm_opt::optimal_machines;
    use mm_sim::{run_policy, verify, SimConfig, VerifyOptions};

    fn run_laminar(
        inst: &Instance,
        m_prime: usize,
        loose: usize,
        mode: AssignMode,
    ) -> (mm_sim::SimOutcome, usize) {
        let policy = LaminarBudget::new(m_prime, loose, Rat::half()).with_mode(mode);
        let total = policy.total_machines();
        let out = run_policy(inst, policy, SimConfig::nonmigratory(total)).unwrap();
        (out, total)
    }

    #[test]
    fn nested_chain_single_machine_when_budget_allows() {
        // A loose outer job and a tight inner job: the loose one goes to the
        // loose pool, the tight one gets a free tight machine.
        let inst = Instance::from_ints([(0, 16, 4), (2, 6, 4)]);
        assert!(inst.is_laminar());
        let (mut out, _) = run_laminar(&inst, 2, 2, AssignMode::Balanced);
        assert!(out.feasible());
        verify(
            &out.instance,
            &mut out.schedule,
            &VerifyOptions::nonmigratory(),
        )
        .unwrap();
    }

    #[test]
    fn tight_nested_jobs_split_machines() {
        // Outer tight job (0,8,7) and inner tight job (2,4,2): the inner one
        // charges the outer one's budget or opens machine 2.
        let inst = Instance::from_ints([(0, 8, 7), (2, 4, 2)]);
        let (mut out, _) = run_laminar(&inst, 4, 0, AssignMode::Balanced);
        assert!(out.feasible(), "misses: {:?}", out.misses);
        let stats = verify(
            &out.instance,
            &mut out.schedule,
            &VerifyOptions::nonmigratory(),
        )
        .unwrap();
        assert!(stats.machines_used >= 2);
    }

    #[test]
    fn feasible_on_generated_laminar_instances() {
        for seed in 0..5 {
            let inst = laminar(
                &LaminarCfg {
                    depth: 3,
                    branching: 2,
                    ..Default::default()
                },
                seed,
            );
            assert!(inst.is_laminar());
            let m = optimal_machines(&inst);
            let m_prime = LaminarBudget::suggested_m_prime(m, 4);
            let (mut out, _) = run_laminar(&inst, m_prime, 4 * m as usize, AssignMode::Balanced);
            assert!(
                out.feasible(),
                "seed {seed}: m={m}, m'={m_prime}, misses={:?}",
                out.misses
            );
            let stats = verify(
                &out.instance,
                &mut out.schedule,
                &VerifyOptions::nonmigratory(),
            )
            .unwrap_or_else(|e| panic!("seed {seed}: {e:?}"));
            assert_eq!(stats.migrations, 0);
        }
    }

    #[test]
    fn budget_charging_is_exact() {
        // One outer job with laxity 8 on machine 0; m'=2 so each sub-budget
        // is 4. Two inner jobs of window length 3 and 2: the first charges
        // sub-budget 1 (3 ≤ 4), the second still fits (3+2 > 4 fails, so it
        // must go to its 2nd candidate — which doesn't exist on machine 1
        // because machine 1 is free ⇒ it lands there for free first).
        let inst = Instance::from_ints([
            (0, 20, 12), // laxity 8, tight (12 > 10)
            (1, 4, 2),   // tight inner, |I| = 3
            (5, 7, 2),   // tight inner, |I| = 2
        ]);
        assert!(inst.is_laminar());
        let (mut out, _) = run_laminar(&inst, 2, 0, AssignMode::Balanced);
        assert!(out.feasible());
        verify(
            &out.instance,
            &mut out.schedule,
            &VerifyOptions::nonmigratory(),
        )
        .unwrap();
    }

    #[test]
    fn assignment_failure_is_recorded_not_fatal() {
        // m' = 1: a single tight machine. Outer job with tiny laxity cannot
        // pay for a conflicting inner job.
        let inst = Instance::from_ints([
            (0, 10, 9), // laxity 1
            (2, 6, 4),  // tight inner, |I| = 4 > 1: no budget, no free machine
        ]);
        let policy = LaminarBudget::new(1, 0, Rat::half());
        let out = run_policy(&inst, policy, SimConfig::nonmigratory(1)).unwrap();
        // The inner job fails assignment and misses; the outer job completes.
        assert_eq!(out.misses.len(), 1);
    }

    #[test]
    fn greedy_mode_differs_from_balanced_on_hard_chains() {
        // On the hard chain family the greedy rule concentrates charges on
        // the most nested candidate; balanced spreads them. We only assert
        // both run to completion and report machine usage / failures — the
        // quantitative gap is measured by experiment E11.
        let inst = laminar_hard_chain(4, 2);
        let m = optimal_machines(&inst);
        let m_prime = LaminarBudget::suggested_m_prime(m, 4);
        let (out_b, _) = run_laminar(&inst, m_prime, 4 * m as usize, AssignMode::Balanced);
        let (out_g, _) = run_laminar(&inst, m_prime, 4 * m as usize, AssignMode::GreedyTotal);
        assert!(out_b.feasible(), "balanced must survive the hard chain");
        let _ = out_g; // greedy may or may not fail here; E11 quantifies it
    }

    #[test]
    fn suggested_m_prime_grows_log_linearly() {
        assert!(LaminarBudget::suggested_m_prime(1, 2) >= 2);
        let a = LaminarBudget::suggested_m_prime(4, 2);
        let b = LaminarBudget::suggested_m_prime(8, 2);
        assert!(b > a);
        // m log m shape: doubling m slightly more than doubles m'.
        assert!(b >= 2 * a);
    }
}
