//! Non-preemptive machine minimization (related-work baseline, Saha).
//!
//! Section 1 of the paper contrasts its results with the *non-preemptive*
//! problem: no `f(m)`-competitive algorithm exists, the lower bound is
//! `Ω(log Δ)`, and Saha [11] gives a matching `O(log Δ)`-competitive
//! algorithm by grouping jobs into `O(log Δ)` processing-time classes. This
//! module implements that strategy in the online model:
//!
//! * [`NonPreemptivePools`] — each job joins a pool by `⌊log₂ p_j⌋`; within
//!   a pool, an idle machine immediately starts the waiting job with the
//!   earliest deadline, and a job whose *latest start time* `d_j − p_j`
//!   arrives is started on a fresh pool machine if none is idle. Jobs are
//!   never interrupted once started, so feasibility is by construction
//!   (modulo machine budget).
//! * The single-pool variant ([`NonPreemptivePools::global`]) is the naive
//!   baseline whose machine usage degrades when processing times are mixed —
//!   the contrast experiment E13 measures both against `Δ`.

use std::collections::BTreeMap;

use mm_instance::JobId;
use mm_numeric::Rat;
use mm_sim::{Decision, OnlinePolicy, SimState};

/// Non-preemptive scheduling with processing-time-class machine pools.
#[derive(Debug)]
pub struct NonPreemptivePools {
    /// If false, every job lands in a single pool (the naive baseline).
    classed: bool,
    /// Pool id → machines owned by that pool (global machine indices).
    pools: BTreeMap<i64, Vec<usize>>,
    /// Machines allocated so far.
    allocated: usize,
    /// Running job per machine.
    running: BTreeMap<usize, JobId>,
    /// Jobs already started (never restarted).
    started: BTreeMap<JobId, usize>,
}

impl NonPreemptivePools {
    /// The Saha-style classed algorithm.
    pub fn new() -> Self {
        NonPreemptivePools {
            classed: true,
            pools: BTreeMap::new(),
            allocated: 0,
            running: BTreeMap::new(),
            started: BTreeMap::new(),
        }
    }

    /// The naive single-pool variant.
    pub fn global() -> Self {
        NonPreemptivePools {
            classed: false,
            ..Self::new()
        }
    }

    /// Machines allocated so far.
    pub fn machines_allocated(&self) -> usize {
        self.allocated
    }

    fn class_of(&self, p: &Rat) -> i64 {
        if !self.classed {
            return 0;
        }
        // log₂ p within ±1, via exact bit lengths of the reduced fraction —
        // pooling only needs constant-factor granularity.
        let num_bits = p.numer().bits() as i64;
        let den_bits = p.denom().bits() as i64;
        num_bits - den_bits
    }

    /// An idle machine of `pool`, if any.
    fn idle_machine(&self, pool: i64) -> Option<usize> {
        self.pools
            .get(&pool)?
            .iter()
            .copied()
            .find(|m| !self.running.contains_key(m))
    }

    fn allocate(&mut self, pool: i64, budget: usize) -> Option<usize> {
        if self.allocated >= budget {
            return None;
        }
        let m = self.allocated;
        self.allocated += 1;
        self.pools.entry(pool).or_default().push(m);
        Some(m)
    }
}

impl Default for NonPreemptivePools {
    fn default() -> Self {
        Self::new()
    }
}

impl OnlinePolicy for NonPreemptivePools {
    fn decide(&mut self, state: &SimState<'_>) -> Decision {
        // Clear finished (or missed) jobs off their machines.
        self.running.retain(|_, j| state.active.contains_key(j));
        self.started.retain(|j, _| state.active.contains_key(j));

        // Waiting jobs by class, earliest deadline first.
        let mut waiting: BTreeMap<i64, Vec<(&Rat, &Rat, JobId)>> = BTreeMap::new();
        for a in state.active.values() {
            if self.started.contains_key(&a.job.id) {
                continue;
            }
            waiting
                .entry(self.class_of(&a.job.processing))
                .or_default()
                .push((&a.job.deadline, &a.job.release, a.job.id));
        }
        let mut wake: Option<Rat> = None;
        for (pool, mut jobs) in waiting {
            jobs.sort();
            for (deadline, _, id) in jobs {
                let a = &state.active[&id];
                // Latest start: d − p/σ (at machine speed σ).
                let latest_start = deadline - &a.remaining / state.speed;
                let must_start = *state.time >= latest_start;
                let machine = match self.idle_machine(pool) {
                    Some(m) => Some(m),
                    None if must_start => self.allocate(pool, state.machines),
                    None => None,
                };
                match machine {
                    Some(m) => {
                        self.running.insert(m, id);
                        self.started.insert(id, m);
                    }
                    None => {
                        // Re-decide at the forced-start moment.
                        if latest_start > *state.time {
                            match &wake {
                                Some(w) if *w <= latest_start => {}
                                _ => wake = Some(latest_start),
                            }
                        }
                    }
                }
            }
        }
        Decision {
            run: self.running.iter().map(|(m, j)| (*m, *j)).collect(),
            wake_at: wake,
        }
    }

    fn name(&self) -> &'static str {
        if self.classed {
            "nonpreemptive-pools"
        } else {
            "nonpreemptive-global"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_instance::Instance;
    use mm_sim::{run_policy, verify, SimConfig, VerifyOptions};

    #[test]
    fn class_boundaries() {
        let p = NonPreemptivePools::new();
        assert_eq!(p.class_of(&Rat::one()), 0);
        assert_eq!(p.class_of(&Rat::from(2i64)), 1);
        assert_eq!(p.class_of(&Rat::from(3i64)), 1);
        assert_eq!(p.class_of(&Rat::from(4i64)), 2);
        // log₂(1/2) = −1: bits(1) − bits(2) = 1 − 2.
        assert_eq!(p.class_of(&Rat::half()), -1);
        let g = NonPreemptivePools::global();
        assert_eq!(g.class_of(&Rat::from(1000i64)), 0);
    }

    #[test]
    fn single_job_starts_and_finishes() {
        let inst = Instance::from_ints([(0, 10, 4)]);
        let mut out =
            run_policy(&inst, NonPreemptivePools::new(), SimConfig::nonmigratory(4)).unwrap();
        assert!(out.feasible());
        let stats = verify(
            &out.instance,
            &mut out.schedule,
            &VerifyOptions::nonpreemptive(),
        )
        .unwrap();
        assert_eq!(stats.preemptions, 0);
        assert_eq!(stats.machines_used, 1);
    }

    #[test]
    fn forced_start_opens_new_machine() {
        // Two identical zero-laxity jobs: both must start at t=0.
        let inst = Instance::from_ints([(0, 4, 4), (0, 4, 4)]);
        let out = run_policy(&inst, NonPreemptivePools::new(), SimConfig::nonmigratory(4)).unwrap();
        assert!(out.feasible());
        assert_eq!(out.machines_used(), 2);
    }

    #[test]
    fn idle_machine_reuse_within_class() {
        // Sequential same-class jobs share one machine.
        let inst = Instance::from_ints([(0, 4, 2), (4, 8, 2), (8, 12, 2)]);
        let out = run_policy(&inst, NonPreemptivePools::new(), SimConfig::nonmigratory(4)).unwrap();
        assert!(out.feasible());
        assert_eq!(out.machines_used(), 1);
    }

    #[test]
    fn classes_use_separate_pools() {
        // A zero-laxity long job pins machine 0 during [0,8); a later short
        // job finds that machine idle. The global variant reuses it; the
        // classed variant opens a short-pool machine instead.
        let inst = Instance::from_ints([(0, 8, 8), (8, 20, 1)]);
        let out = run_policy(
            &inst,
            NonPreemptivePools::global(),
            SimConfig::nonmigratory(4),
        )
        .unwrap();
        assert!(out.feasible());
        assert_eq!(out.machines_used(), 1);
        let out = run_policy(&inst, NonPreemptivePools::new(), SimConfig::nonmigratory(4)).unwrap();
        assert!(out.feasible());
        assert_eq!(out.machines_used(), 2); // separate pools
    }

    #[test]
    fn lazy_start_uses_latest_start_times() {
        // With no machine yet in the pool, a lax job procrastinates to its
        // latest start time d − p.
        let inst = Instance::from_ints([(0, 20, 8)]);
        let mut out =
            run_policy(&inst, NonPreemptivePools::new(), SimConfig::nonmigratory(2)).unwrap();
        assert!(out.feasible());
        let segs = out.schedule.segments();
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].interval.start, Rat::from(12i64));
        assert_eq!(segs[0].interval.end, Rat::from(20i64));
    }

    #[test]
    fn nonpreemptive_on_generated_workloads() {
        use mm_instance::generators::{uniform, UniformCfg};
        for seed in 0..4 {
            let inst = uniform(
                &UniformCfg {
                    n: 30,
                    ..Default::default()
                },
                seed,
            );
            let budget = inst.len();
            let mut out = run_policy(
                &inst,
                NonPreemptivePools::new(),
                SimConfig::nonmigratory(budget),
            )
            .unwrap();
            assert!(out.feasible(), "seed {seed}");
            let stats = verify(
                &out.instance,
                &mut out.schedule,
                &VerifyOptions::nonpreemptive(),
            )
            .unwrap_or_else(|e| panic!("seed {seed}: {e:?}"));
            assert_eq!(stats.preemptions, 0);
            assert_eq!(stats.migrations, 0);
        }
    }

    #[test]
    fn budget_exhaustion_degrades_to_misses() {
        let inst = Instance::from_ints([(0, 2, 2), (0, 2, 2), (0, 2, 2)]);
        let out = run_policy(&inst, NonPreemptivePools::new(), SimConfig::nonmigratory(2)).unwrap();
        assert_eq!(out.misses.len(), 1);
    }
}
