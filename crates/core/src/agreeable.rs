//! The agreeable-instance algorithm of Section 6.1 (Theorem 12):
//! a **non-preemptive** solution on `≈ 32.70·m` machines.
//!
//! Jobs are split at a threshold α: α-loose jobs go to a non-preemptive EDF
//! pool (Corollary 1: on agreeable instances EDF never preempts and
//! `m/(1−α)²` machines suffice), α-tight jobs go to a [`MediumFit`] pool
//! (Lemma 8: `16m/α` machines suffice). The total
//! `m/(1−α)² + 16m/α` is minimized at `α ≈ 0.63`, giving the paper's
//! `32.70·m` bound.

use std::collections::BTreeMap;

use mm_instance::JobId;
use mm_numeric::Rat;
use mm_sim::{ActiveJob, Decision, OnlinePolicy, SimState};

use crate::{MediumFit, NonpreemptiveEdf};

/// The paper's α ≈ 0.63 as a rational (63/100).
pub fn optimal_alpha() -> Rat {
    Rat::ratio(63, 100)
}

/// Machine budgets of Theorem 12 for optimum `m` and threshold `alpha`:
/// `(⌈m/(1−α)²⌉, ⌈16m/α⌉)` for the loose and tight pools.
pub fn theorem12_budgets(m: u64, alpha: &Rat) -> (u64, u64) {
    let one = Rat::one();
    let loose = (Rat::from(m) / ((&one - alpha) * (&one - alpha))).ceil_u64();
    let tight = (Rat::from(16 * m) / alpha).ceil_u64();
    (loose, tight)
}

/// The combined machine count `m/(1−α)² + 16m/α` (exact rational), the
/// quantity the paper optimizes to `≈ 32.70·m`.
pub fn theorem12_total(m: u64, alpha: &Rat) -> Rat {
    let one = Rat::one();
    Rat::from(m) / ((&one - alpha) * (&one - alpha)) + Rat::from(16 * m) / alpha
}

/// The Theorem 12 algorithm: loose pool (non-preemptive EDF) on machines
/// `[0, loose_machines)`, tight pool (MediumFit) on
/// `[loose_machines, loose_machines + tight_machines)`.
#[derive(Debug)]
pub struct AgreeableSplit {
    alpha: Rat,
    loose_machines: usize,
    tight_machines: usize,
    loose: NonpreemptiveEdf,
    tight: MediumFit,
    routing: BTreeMap<JobId, bool>, // true = loose pool
}

impl AgreeableSplit {
    /// Creates the algorithm with explicit pool sizes.
    pub fn new(alpha: Rat, loose_machines: usize, tight_machines: usize) -> Self {
        assert!(alpha.is_positive() && alpha < Rat::one());
        AgreeableSplit {
            alpha,
            loose_machines,
            tight_machines,
            loose: NonpreemptiveEdf::new(),
            tight: MediumFit::new(),
            routing: BTreeMap::new(),
        }
    }

    /// Creates the algorithm with the Theorem 12 budgets for optimum `m`.
    pub fn for_optimum(m: u64) -> Self {
        let alpha = optimal_alpha();
        let (loose, tight) = theorem12_budgets(m, &alpha);
        AgreeableSplit::new(alpha, loose as usize, tight as usize)
    }

    /// Total machine budget.
    pub fn total_machines(&self) -> usize {
        self.loose_machines + self.tight_machines
    }
}

impl OnlinePolicy for AgreeableSplit {
    fn decide(&mut self, state: &SimState<'_>) -> Decision {
        for a in state.active.values() {
            self.routing
                .entry(a.job.id)
                .or_insert_with(|| a.job.is_loose(&self.alpha));
        }
        let routing = &self.routing;
        // Present each sub-policy a filtered view of the active set.
        let loose_active: BTreeMap<JobId, ActiveJob> = state
            .active
            .iter()
            .filter(|(id, _)| routing[id])
            .map(|(id, a)| (*id, a.clone()))
            .collect();
        let tight_active: BTreeMap<JobId, ActiveJob> = state
            .active
            .iter()
            .filter(|(id, _)| !routing[id])
            .map(|(id, a)| (*id, a.clone()))
            .collect();
        let loose_decision = self.loose.decide(&SimState {
            time: state.time,
            machines: self.loose_machines,
            speed: state.speed,
            active: &loose_active,
        });
        let tight_decision = self.tight.decide(&SimState {
            time: state.time,
            machines: self.tight_machines,
            speed: state.speed,
            active: &tight_active,
        });
        let mut run = loose_decision.run;
        run.extend(
            tight_decision
                .run
                .into_iter()
                .map(|(m, j)| (m + self.loose_machines, j)),
        );
        let wake_at = match (loose_decision.wake_at, tight_decision.wake_at) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        Decision { run, wake_at }
    }

    fn name(&self) -> &'static str {
        "agreeable-split"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_instance::generators::{agreeable, AgreeableCfg};
    use mm_opt::optimal_machines;
    use mm_sim::{run_policy, verify, SimConfig, VerifyOptions};

    #[test]
    fn alpha_optimization_curve_has_minimum_near_063() {
        // theorem12_total is the curve the paper minimizes; check the shape:
        // the value at α = 0.63 beats the values at 0.3 and 0.9.
        let at = |num: i64| theorem12_total(1, &Rat::ratio(num, 100)).to_f64();
        let mid = at(63);
        assert!(mid < at(30));
        assert!(mid < at(90));
        // and the bound value is ≈ 32.70 m
        assert!((mid - 32.70).abs() < 0.05, "total at 0.63 was {mid}");
    }

    #[test]
    fn budgets_match_formula() {
        let alpha = Rat::half();
        let (loose, tight) = theorem12_budgets(2, &alpha);
        assert_eq!(loose, 8); // 2 / (1/2)^2
        assert_eq!(tight, 64); // 16*2 / (1/2)
    }

    #[test]
    fn nonpreemptive_feasible_on_agreeable_instances_with_theorem_budget() {
        for seed in 0..5 {
            let inst = agreeable(
                &AgreeableCfg {
                    n: 40,
                    ..Default::default()
                },
                seed,
            );
            let m = optimal_machines(&inst);
            let policy = AgreeableSplit::for_optimum(m);
            let total = policy.total_machines();
            let mut out = run_policy(&inst, policy, SimConfig::nonmigratory(total)).unwrap();
            assert!(out.feasible(), "seed {seed}: misses {:?}", out.misses);
            let stats = verify(
                &out.instance,
                &mut out.schedule,
                &VerifyOptions::nonpreemptive(),
            )
            .unwrap_or_else(|e| panic!("seed {seed}: {e:?}"));
            assert_eq!(
                stats.preemptions, 0,
                "Theorem 12 promises non-preemptive schedules"
            );
            assert!(stats.machines_used as u64 <= (33 * m).max(1));
        }
    }

    #[test]
    fn routing_respects_alpha() {
        // Two jobs: one loose (p=1, window 10), one tight (p=9, window 10).
        let inst = mm_instance::Instance::from_ints([(0, 10, 1), (0, 10, 9)]);
        let policy = AgreeableSplit::new(Rat::half(), 2, 2);
        let mut out = run_policy(&inst, policy, SimConfig::nonmigratory(4)).unwrap();
        assert!(out.feasible());
        let segs = out.schedule.segments().to_vec();
        // the tight job must run on the tight pool (machines ≥ 2)
        for s in &segs {
            let job = out.instance.job(s.job);
            if job.processing == Rat::from(9i64) {
                assert!(
                    s.machine >= 2,
                    "tight job ran on loose pool machine {}",
                    s.machine
                );
            } else {
                assert!(
                    s.machine < 2,
                    "loose job ran on tight pool machine {}",
                    s.machine
                );
            }
        }
    }

    #[test]
    fn unit_processing_agreeable_instances() {
        let cfg = AgreeableCfg {
            n: 30,
            unit_processing: Some(2),
            ..Default::default()
        };
        let inst = agreeable(&cfg, 3);
        let m = optimal_machines(&inst);
        let policy = AgreeableSplit::for_optimum(m);
        let total = policy.total_machines();
        let out = run_policy(&inst, policy, SimConfig::nonmigratory(total)).unwrap();
        assert!(out.feasible());
    }
}
