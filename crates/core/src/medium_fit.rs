//! MediumFit (Section 6.1): the α-tight half of the agreeable algorithm.
//!
//! Every job `j` runs *exactly* in the centered interval
//! `[r_j + ℓ_j/2, d_j − ℓ_j/2)` — whose length is precisely `p_j` —
//! independently of all other jobs. Lemma 8 proves via a load argument
//! against Theorem 1 that on agreeable α-tight instances at most `16m/α`
//! such intervals overlap at any time, so greedy interval coloring on that
//! many machines always succeeds. The paper notes the centering is
//! essential: running in `[r_j, d_j − ℓ_j)` or `[r_j + ℓ_j, d_j)` does *not*
//! give `O(m)` machines.

use std::collections::BTreeMap;

use mm_instance::{Interval, JobId};
use mm_numeric::Rat;
use mm_sim::{Decision, OnlinePolicy, SimState};

/// The MediumFit policy. Produces a non-preemptive (hence non-migratory)
/// schedule; jobs that cannot be given a conflict-free machine within the
/// driver's machine budget overflow to the highest machine and may miss.
#[derive(Debug, Default)]
pub struct MediumFit {
    /// Fixed execution interval and machine per assigned job.
    assigned: BTreeMap<JobId, (Interval, usize)>,
}

impl MediumFit {
    /// Creates the policy.
    pub fn new() -> Self {
        Self::default()
    }

    /// The fixed execution interval `[r+ℓ/2, d−ℓ/2)` of a job.
    pub fn fixed_interval(job: &mm_instance::Job) -> Interval {
        let half_lax = job.laxity() * Rat::half();
        Interval::new(&job.release + &half_lax, &job.deadline - &half_lax)
    }

    /// Machine chosen for `job`, if assigned.
    pub fn machine_of(&self, job: JobId) -> Option<usize> {
        self.assigned.get(&job).map(|(_, m)| *m)
    }
}

impl OnlinePolicy for MediumFit {
    fn decide(&mut self, state: &SimState<'_>) -> Decision {
        // Assign newly released jobs greedily (first machine whose already
        // assigned fixed intervals do not overlap the new one).
        let mut new: Vec<_> = state
            .active
            .values()
            .filter(|a| !self.assigned.contains_key(&a.job.id))
            .collect();
        new.sort_by_key(|a| a.job.id);
        for a in new {
            let iv = Self::fixed_interval(&a.job);
            let mut machine = state.machines - 1;
            for m in 0..state.machines {
                let clash = self
                    .assigned
                    .values()
                    .any(|(other, om)| *om == m && other.overlaps(&iv));
                if !clash {
                    machine = m;
                    break;
                }
            }
            self.assigned.insert(a.job.id, (iv, machine));
        }
        // Drop assignments of jobs that are gone (finished or missed).
        self.assigned.retain(|id, _| state.active.contains_key(id));

        // Run every job whose fixed interval covers the current time; wake at
        // the next fixed start among the remaining ones. If the machine
        // budget overflowed, several jobs may share the fallback machine —
        // run the earliest-ending one and let the others miss gracefully.
        let mut run: BTreeMap<usize, (Rat, JobId)> = BTreeMap::new();
        let mut wake: Option<Rat> = None;
        for (id, (iv, m)) in &self.assigned {
            if iv.contains(state.time) {
                match run.get(m) {
                    Some((end, _)) if *end <= iv.end => {}
                    _ => {
                        run.insert(*m, (iv.end.clone(), *id));
                    }
                }
            } else if iv.start > *state.time {
                match &wake {
                    Some(w) if *w <= iv.start => {}
                    _ => wake = Some(iv.start.clone()),
                }
            }
        }
        Decision {
            run: run.into_iter().map(|(m, (_, id))| (m, id)).collect(),
            wake_at: wake,
        }
    }

    fn name(&self) -> &'static str {
        "medium-fit"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_instance::{Instance, Job};
    use mm_sim::{run_policy, verify, SimConfig, VerifyOptions};

    fn rat(v: i64) -> Rat {
        Rat::from(v)
    }

    #[test]
    fn fixed_interval_is_centered() {
        let j = Job::new(JobId(0), rat(0), rat(10), rat(6)); // laxity 4
        let iv = MediumFit::fixed_interval(&j);
        assert_eq!(iv.start, rat(2));
        assert_eq!(iv.end, rat(8));
        assert_eq!(iv.length(), rat(6));
    }

    #[test]
    fn zero_laxity_fixed_interval_is_whole_window() {
        let j = Job::new(JobId(0), rat(0), rat(4), rat(4));
        let iv = MediumFit::fixed_interval(&j);
        assert_eq!(iv, Interval::ints(0, 4));
    }

    #[test]
    fn single_job_runs_in_center() {
        let inst = Instance::from_ints([(0, 10, 6)]);
        let mut out = run_policy(&inst, MediumFit::new(), SimConfig::nonmigratory(1)).unwrap();
        assert!(out.feasible());
        let segs = out.schedule.segments();
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].interval, Interval::ints(2, 8));
    }

    #[test]
    fn conflicting_centers_use_two_machines() {
        let inst = Instance::from_ints([(0, 10, 6), (0, 10, 6)]);
        let mut out = run_policy(&inst, MediumFit::new(), SimConfig::nonmigratory(4)).unwrap();
        assert!(out.feasible());
        assert_eq!(out.machines_used(), 2);
        let stats = verify(
            &out.instance,
            &mut out.schedule,
            &VerifyOptions::nonpreemptive(),
        )
        .unwrap();
        assert_eq!(stats.preemptions, 0);
        assert_eq!(stats.migrations, 0);
    }

    #[test]
    fn disjoint_centers_share_a_machine() {
        // windows overlap, but centered intervals do not
        let inst = Instance::from_ints([(0, 6, 2), (4, 10, 2)]); // centers [2,4) and [6,8)
        let mut out = run_policy(&inst, MediumFit::new(), SimConfig::nonmigratory(4)).unwrap();
        assert!(out.feasible());
        assert_eq!(out.machines_used(), 1);
        let _ = out.schedule.segments();
    }

    #[test]
    fn lemma8_budget_on_agreeable_tight_instances() {
        // α-tight agreeable jobs: MediumFit must fit in 16·m/α machines.
        use mm_instance::generators::{tight, UniformCfg};
        use mm_opt::optimal_machines;
        let alpha = Rat::half();
        for seed in 0..4 {
            // agreeable-ify: equal windows make any instance agreeable
            let base = tight(
                &UniformCfg {
                    n: 30,
                    min_window: 8,
                    max_window: 8,
                    ..Default::default()
                },
                &alpha,
                seed,
            );
            assert!(base.is_agreeable());
            let m = optimal_machines(&base);
            let budget = (Rat::from(16 * m) / &alpha).ceil_u64() as usize;
            let mut out =
                run_policy(&base, MediumFit::new(), SimConfig::nonmigratory(budget)).unwrap();
            assert!(
                out.feasible(),
                "seed {seed}: MediumFit missed within Lemma 8 budget"
            );
            verify(
                &out.instance,
                &mut out.schedule,
                &VerifyOptions::nonpreemptive(),
            )
            .unwrap_or_else(|e| panic!("seed {seed}: {e:?}"));
        }
    }
}
