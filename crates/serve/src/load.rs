//! Load generation and replay clients for `machmin serve`.
//!
//! Two modes:
//!
//! * **closed-loop** — at most `window` requests outstanding; the next
//!   request is sent when a response arrives. With `window ≤ queue_cap`
//!   nothing is ever shed, so the response transcript is a pure function of
//!   the seed — the soak harness diffs two runs byte-for-byte. When the
//!   server *does* shed (`overloaded`), the client honors the response's
//!   `retry_after_ms`: it backs off (scaled by the attempt number), re-sends
//!   the identical request, and counts the retry in the report. Only after
//!   [`MAX_OVERLOAD_RETRIES`] consecutive sheds does the overload line
//!   become the terminal answer.
//! * **paced** — arrival-driven replay: a generated instance is fed through
//!   [`mm_sim::ArrivalSource`] and each release group becomes a request at
//!   its wall-clock offset, deadline pressure and sheds included.
//!
//! The report separates the deterministic transcript (response lines sorted
//! by request id) from the measured latencies (quantiles, for `machmin
//! bench`), so determinism checks and performance numbers don't pollute
//! each other.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use mm_instance::Instance;
use mm_sim::ArrivalSource;

use crate::protocol::{Request, RequestKind, Response};

/// Load-run configuration.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Requests to send.
    pub n: usize,
    /// Seed for the request mix (and recorded in the transcript header).
    pub seed: u64,
    /// Paced (arrival-driven) instead of closed-loop.
    pub paced: bool,
    /// Max outstanding requests in closed-loop mode.
    pub window: usize,
    /// Per-request deadline to attach, if any.
    pub deadline_ms: Option<u64>,
    /// Send a `shutdown` request after the last response (drains the server).
    pub shutdown: bool,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            n: 100,
            seed: 0,
            paced: false,
            window: 8,
            deadline_ms: None,
            shutdown: false,
        }
    }
}

/// How many times one request is re-sent after `overloaded` responses
/// before the overload line is accepted as its terminal answer.
pub const MAX_OVERLOAD_RETRIES: u32 = 8;

/// Outcome of a load run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Response lines, sorted by request id — the determinism artifact.
    pub transcript: Vec<String>,
    /// Requests sent (excluding the shutdown request).
    pub sent: usize,
    /// Requests that never received a response (must be 0).
    pub lost: usize,
    /// Requests re-sent after an `overloaded` response (closed-loop mode
    /// honors the server's `retry_after_ms` backoff hint).
    pub retried: usize,
    /// Responses by status tag.
    pub by_status: Vec<(String, usize)>,
    /// Median response latency in milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile response latency in milliseconds.
    pub p99_ms: f64,
    /// 99.9th-percentile response latency in milliseconds.
    pub p999_ms: f64,
    /// Latency histogram in microseconds — same bucket scheme as the
    /// server's `stats` endpoint, so client- and server-side observations
    /// merge. Exported by `machmin load --hist`.
    pub hist: mm_obs::Histogram,
    /// Server-side count of answered requests that carried a `migration`
    /// marker — nonzero only when a cluster coordinator moved work onto
    /// this backend. Migrated copies answer with byte-identical lines, so
    /// this end-of-run stats scrape is the only place migration shows up;
    /// soaks assert on it to prove migration actually happened.
    pub migrated_served: u64,
}

impl LoadReport {
    /// Count of responses with the given status.
    pub fn count(&self, status: &str) -> usize {
        self.by_status
            .iter()
            .find(|(s, _)| s == status)
            .map(|(_, n)| *n)
            .unwrap_or(0)
    }
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn gen_jobs(state: &mut u64, count: usize) -> Vec<(i64, i64, i64)> {
    (0..count)
        .map(|_| {
            let r = (splitmix(state) % 40) as i64;
            let w = 2 + (splitmix(state) % 10) as i64;
            let p = 1 + (splitmix(state) % w as u64) as i64;
            (r, r + w, p)
        })
        .collect()
}

/// The deterministic mixed request stream: mostly solves and probes, some
/// schedules, a rare (cheap) adversary sweep. Pure function of `(seed, n)`.
pub fn mixed_requests(seed: u64, n: usize, deadline_ms: Option<u64>) -> Vec<Request> {
    let mut state = seed ^ 0xD6E8_FEB8_6659_FD93;
    (0..n as u64)
        .map(|id| {
            let kind = match id % 10 {
                9 if id % 100 == 99 => RequestKind::Adversary {
                    policy: "edf-ff".into(),
                    k: 2,
                    machines: 8,
                },
                0..=4 => RequestKind::Solve {
                    jobs: gen_jobs(&mut state, 6 + (id % 7) as usize),
                },
                5..=7 => {
                    let jobs = gen_jobs(&mut state, 6 + (id % 5) as usize);
                    let machines = 1 + splitmix(&mut state) % 4;
                    RequestKind::Probe { jobs, machines }
                }
                _ => RequestKind::Schedule {
                    jobs: gen_jobs(&mut state, 5 + (id % 4) as usize),
                    policy: "edf-ff".into(),
                    machines: None,
                },
            };
            Request {
                deadline_ms,
                ..Request::new(id, kind)
            }
        })
        .collect()
}

/// Runs a load session against a running server and collects the report.
pub fn run_load(addr: &str, cfg: &LoadConfig) -> std::io::Result<LoadReport> {
    let requests = mixed_requests(cfg.seed, cfg.n, cfg.deadline_ms);
    let stream = TcpStream::connect(addr)?;
    let mut writer = BufWriter::new(stream.try_clone()?);
    let mut reader = BufReader::new(stream);
    let mut responses: HashMap<u64, String> = HashMap::new();
    let mut latencies: Vec<f64> = Vec::new();
    let mut started: HashMap<u64, Instant> = HashMap::new();
    let mut retried = 0usize;

    let send = |writer: &mut BufWriter<TcpStream>,
                started: &mut HashMap<u64, Instant>,
                req: &Request|
     -> std::io::Result<()> {
        started.insert(req.id, Instant::now());
        writer.write_all(req.to_line().as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()
    };
    let recv = |reader: &mut BufReader<TcpStream>,
                responses: &mut HashMap<u64, String>,
                started: &mut HashMap<u64, Instant>,
                latencies: &mut Vec<f64>|
     -> std::io::Result<bool> {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Ok(false);
        }
        let line = line.trim().to_string();
        if let Ok(resp) = Response::parse(&line) {
            if let Some(t0) = started.remove(&resp.id()) {
                latencies.push(t0.elapsed().as_secs_f64() * 1e3);
            }
            responses.insert(resp.id(), line);
        }
        Ok(true)
    };

    if cfg.paced {
        // Arrival-driven replay: derive the pacing from the very jobs the
        // requests carry, through the exact simulator's arrival source.
        let pool = mixed_requests(cfg.seed ^ 1, cfg.n.max(1), None);
        let pacing_jobs: Vec<(i64, i64, i64)> = pool
            .iter()
            .filter_map(|r| match &r.kind {
                RequestKind::Solve { jobs } => jobs.first().copied(),
                _ => None,
            })
            .collect();
        let inst = Instance::from_ints(pacing_jobs.iter().copied().take(cfg.n.max(1)));
        let source = ArrivalSource::new(&inst, Duration::from_millis(3));
        let offsets: Vec<Duration> = source.arrivals().iter().map(|a| a.offset).collect();
        let t0 = Instant::now();
        for (i, req) in requests.iter().enumerate() {
            let due = offsets
                .get(i % offsets.len().max(1))
                .copied()
                .unwrap_or_default();
            if let Some(wait) = due.checked_sub(t0.elapsed()) {
                std::thread::sleep(wait);
            }
            send(&mut writer, &mut started, req)?;
        }
        while responses.len() < requests.len()
            && recv(&mut reader, &mut responses, &mut started, &mut latencies)?
        {}
    } else {
        // Closed-loop with overload backoff: a shed request is re-sent after
        // the server's own `retry_after_ms` hint (scaled by the attempt
        // number, so consecutive sheds back off progressively) instead of
        // recording the overload as its final answer.
        let window = cfg.window.max(1);
        let mut next = 0usize;
        let mut outstanding = 0usize;
        let mut retry_at: Vec<(Instant, u64)> = Vec::new();
        let mut attempts: HashMap<u64, u32> = HashMap::new();
        while responses.len() < requests.len() {
            let now = Instant::now();
            let mut i = 0;
            while i < retry_at.len() {
                if retry_at[i].0 <= now && outstanding < window {
                    let (_, id) = retry_at.swap_remove(i);
                    send(&mut writer, &mut started, &requests[id as usize])?;
                    outstanding += 1;
                } else {
                    i += 1;
                }
            }
            while next < requests.len() && outstanding < window {
                send(&mut writer, &mut started, &requests[next])?;
                next += 1;
                outstanding += 1;
            }
            if outstanding == 0 {
                // Everything unanswered is waiting out a backoff; sleep to
                // the earliest due time instead of blocking on the socket.
                let Some(due) = retry_at.iter().map(|(t, _)| *t).min() else {
                    break;
                };
                let wait = due.saturating_duration_since(Instant::now());
                if !wait.is_zero() {
                    std::thread::sleep(wait);
                }
                continue;
            }
            let mut line = String::new();
            if reader.read_line(&mut line)? == 0 {
                break;
            }
            let line = line.trim().to_string();
            let Ok(resp) = Response::parse(&line) else {
                // The garbage line still answered (and consumed) a window
                // slot; free it, or enough of them would stall the loop.
                outstanding = outstanding.saturating_sub(1);
                continue;
            };
            let id = resp.id();
            outstanding = outstanding.saturating_sub(1);
            if let Response::Overloaded { retry_after_ms, .. } = &resp {
                let tries = attempts.entry(id).or_insert(0);
                if *tries < MAX_OVERLOAD_RETRIES && (id as usize) < requests.len() {
                    *tries += 1;
                    retried += 1;
                    let backoff = (*retry_after_ms).max(1) * u64::from(*tries);
                    retry_at.push((Instant::now() + Duration::from_millis(backoff), id));
                    started.remove(&id);
                    continue;
                }
            }
            if let Some(t0) = started.remove(&id) {
                latencies.push(t0.elapsed().as_secs_f64() * 1e3);
            }
            responses.insert(id, line);
        }
    }

    // One stats scrape before shutdown: migrated copies answer with
    // byte-identical lines, so the server's `migrated_served` counter is the
    // only footprint migration leaves. Scrape failures (e.g. a server that
    // already hung up) degrade to 0 rather than failing the run, and the
    // probe bypasses the latency bookkeeping so quantiles stay untouched.
    let mut scrape_migrated = || -> std::io::Result<u64> {
        let probe = Request::new(
            (u64::MAX >> 1) - 1,
            RequestKind::Stats {
                prometheus: false,
                counters_only: true,
            },
        );
        writer.write_all(probe.to_line().as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Ok(0);
        }
        Ok(mm_json::parse(line.trim())
            .ok()
            .and_then(|j| {
                j.get("counters")
                    .and_then(|c| c.get("migrated_served"))
                    .and_then(mm_json::Json::as_i64)
            })
            .unwrap_or(0)
            .max(0) as u64)
    };
    let migrated_served = scrape_migrated().unwrap_or(0);

    if cfg.shutdown {
        let bye = Request::new(u64::MAX >> 1, RequestKind::Shutdown);
        send(&mut writer, &mut started, &bye)?;
        let _ = recv(&mut reader, &mut responses, &mut started, &mut latencies);
        responses.remove(&bye.id);
    }

    let mut transcript: Vec<(u64, String)> = responses.into_iter().collect();
    transcript.sort_by_key(|(id, _)| *id);
    let lost = requests
        .iter()
        .filter(|r| !transcript.iter().any(|(id, _)| *id == r.id))
        .count();
    let mut by_status: HashMap<String, usize> = HashMap::new();
    for (_, line) in &transcript {
        if let Ok(resp) = Response::parse(line) {
            *by_status.entry(resp.status().to_string()).or_default() += 1;
        }
    }
    let mut by_status: Vec<(String, usize)> = by_status.into_iter().collect();
    by_status.sort();
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    // Nearest-rank (ceil) quantiles, the same convention the histogram's
    // `quantile` uses — the exact and bucketed numbers stay comparable.
    let quantile = |q: f64| -> f64 {
        match mm_obs::quantile_index(latencies.len(), q) {
            Some(idx) => latencies[idx],
            None => 0.0,
        }
    };
    let mut hist = mm_obs::Histogram::new();
    for &ms in &latencies {
        hist.record((ms * 1e3).round() as u64);
    }
    Ok(LoadReport {
        transcript: transcript.into_iter().map(|(_, line)| line).collect(),
        sent: requests.len(),
        lost,
        retried,
        by_status,
        p50_ms: quantile(0.5),
        p99_ms: quantile(0.99),
        p999_ms: quantile(0.999),
        hist,
        migrated_served,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::supervisor::{DynSink, ServeConfig, Service};
    use mm_fault::{FaultPlan, FaultRule, FaultSite, RetryPolicy};
    use mm_trace::NoopSink;
    use std::sync::Arc;

    #[test]
    fn mixed_requests_are_deterministic_and_valid() {
        let a = mixed_requests(7, 50, Some(1_000));
        let b = mixed_requests(7, 50, Some(1_000));
        assert_eq!(a, b);
        for req in &a {
            let line = req.to_line();
            assert_eq!(Request::parse(&line).unwrap(), *req);
        }
        assert!(a
            .iter()
            .any(|r| matches!(r.kind, RequestKind::Probe { .. })));
        assert!(a
            .iter()
            .any(|r| matches!(r.kind, RequestKind::Schedule { .. })));
    }

    #[test]
    fn closed_loop_transcripts_are_reproducible_under_panics() {
        // A server with injected worker panics: retries mask the faults, so
        // two same-seed runs produce byte-identical transcripts.
        let run = || {
            let plan = FaultPlan {
                seed: 0,
                rules: vec![FaultRule {
                    site: FaultSite::WorkerPanic,
                    nth: 3,
                    every: Some(5),
                }],
            };
            let cfg = ServeConfig {
                workers: 2,
                queue_cap: 8,
                retry: RetryPolicy::new(1, 4, 5),
                plan,
                ..ServeConfig::default()
            };
            let service = Arc::new(Service::start(cfg, DynSink::new(Box::new(NoopSink))).unwrap());
            let (listener, addr) = crate::tcp::bind("127.0.0.1:0").unwrap();
            let acceptor = {
                let service = Arc::clone(&service);
                std::thread::spawn(move || crate::tcp::serve(listener, service))
            };
            let report = run_load(
                &addr,
                &LoadConfig {
                    n: 24,
                    seed: 11,
                    window: 4,
                    shutdown: true,
                    ..LoadConfig::default()
                },
            )
            .unwrap();
            acceptor.join().unwrap().unwrap();
            service.wait_stopped();
            let stats = service.stats();
            assert_eq!(report.lost, 0, "no admitted request may vanish");
            assert!(stats.invariant_holds(), "{stats:?}");
            (report.transcript, stats.panics)
        };
        let (t1, panics1) = run();
        let (t2, _) = run();
        assert!(panics1 > 0, "the fault plan must actually fire");
        assert_eq!(t1, t2, "same-seed transcripts must be byte-identical");
    }

    #[test]
    fn overloaded_responses_are_retried_after_backoff() {
        // A tiny queue behind a wide window forces sheds; the client must
        // honor `retry_after_ms` and re-send until every request lands.
        let cfg = ServeConfig {
            workers: 1,
            queue_cap: 2,
            retry: RetryPolicy::new(1, 2, 4),
            ..ServeConfig::default()
        };
        let service = Arc::new(Service::start(cfg, DynSink::new(Box::new(NoopSink))).unwrap());
        let (listener, addr) = crate::tcp::bind("127.0.0.1:0").unwrap();
        let acceptor = {
            let service = Arc::clone(&service);
            std::thread::spawn(move || crate::tcp::serve(listener, service))
        };
        let report = run_load(
            &addr,
            &LoadConfig {
                n: 16,
                seed: 3,
                window: 8,
                shutdown: true,
                ..LoadConfig::default()
            },
        )
        .unwrap();
        acceptor.join().unwrap().unwrap();
        service.wait_stopped();
        assert!(report.retried > 0, "the tiny queue must shed at least once");
        assert_eq!(report.lost, 0, "every shed request must be re-sent home");
        assert_eq!(
            report.count("overloaded"),
            0,
            "no overload line may survive as a terminal answer: {:?}",
            report.by_status
        );
    }
}
