//! Crash-safe write-ahead journal for the service layer.
//!
//! Every *admitted* request is appended (and fsynced) to the journal
//! **before** it is enqueued for execution, and every terminal response is
//! appended before it is released to the client. After a crash, replaying
//! the journal therefore partitions requests exactly:
//!
//! * `acked` — requests whose response record made it to disk. Their
//!   responses are replayed **byte-identically**; the work is never redone.
//! * `pending` — requests admitted but never acknowledged. They are
//!   re-enqueued on restart; in-flight adversary sweeps resume from their
//!   last [`SweepCheckpoint`] record instead of restarting from depth 2.
//!
//! The journal is JSONL. A crash can leave at most one torn record — the
//! final line — so replay tolerates (and reports) a malformed *last* line
//! but treats a malformed interior line as corruption, located by line
//! number for the io exit-code taxonomy.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use mm_adversary::SweepCheckpoint;
use mm_json::Json;

/// One parsed journal record.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// A request was admitted; `line` is the exact request wire line.
    Admitted {
        /// Request id.
        id: u64,
        /// Raw request line as received.
        line: String,
    },
    /// An adversary sweep finished a depth; full checkpoint state.
    Sweep {
        /// Request id the sweep belongs to.
        id: u64,
        /// Checkpoint after the completed depth.
        checkpoint: SweepCheckpoint,
    },
    /// A terminal response was released; `line` is the exact response line.
    Acked {
        /// Request id.
        id: u64,
        /// Raw response line as sent.
        line: String,
    },
    /// An observability snapshot written on graceful drain. Replay restores
    /// the monotonic counters (lifetime uptime, restart count, cumulative
    /// request totals) from the **last** such record, so a restarted server
    /// reports honest lifetime numbers instead of starting from zero.
    Stats {
        /// The drained server's registry snapshot plus lifecycle counters.
        snapshot: Json,
    },
}

impl Record {
    fn to_json(&self) -> Json {
        match self {
            Record::Admitted { id, line } => Json::obj([
                ("rec", Json::str("admitted")),
                ("id", Json::Int(*id as i64)),
                ("line", Json::str(line)),
            ]),
            Record::Sweep { id, checkpoint } => Json::obj([
                ("rec", Json::str("sweep")),
                ("id", Json::Int(*id as i64)),
                ("checkpoint", checkpoint.to_json()),
            ]),
            Record::Acked { id, line } => Json::obj([
                ("rec", Json::str("acked")),
                ("id", Json::Int(*id as i64)),
                ("line", Json::str(line)),
            ]),
            Record::Stats { snapshot } => {
                Json::obj([("rec", Json::str("stats")), ("snapshot", snapshot.clone())])
            }
        }
    }

    fn from_json(json: &Json) -> Result<Record, String> {
        let rec = json
            .get("rec")
            .and_then(Json::as_str)
            .ok_or("journal record missing `rec`")?;
        if rec == "stats" {
            return Ok(Record::Stats {
                snapshot: json
                    .get("snapshot")
                    .cloned()
                    .ok_or("stats record missing `snapshot`")?,
            });
        }
        let id = json
            .get("id")
            .and_then(Json::as_i64)
            .filter(|&n| n >= 0)
            .ok_or("journal record missing non-negative `id`")? as u64;
        let line = |key: &str| -> Result<String, String> {
            json.get(key)
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("journal record missing `{key}`"))
        };
        Ok(match rec {
            "admitted" => Record::Admitted {
                id,
                line: line("line")?,
            },
            "sweep" => Record::Sweep {
                id,
                checkpoint: SweepCheckpoint::from_json(
                    json.get("checkpoint")
                        .ok_or("sweep record missing `checkpoint`")?,
                )?,
            },
            "acked" => Record::Acked {
                id,
                line: line("line")?,
            },
            // "stats" was handled above (it carries no request id).
            other => return Err(format!("unknown journal record `{other}`")),
        })
    }
}

/// Append-only fsynced journal writer.
#[derive(Debug)]
pub struct Journal {
    file: File,
    path: PathBuf,
}

impl Journal {
    /// Opens (creating or appending to) the journal at `path`.
    pub fn open(path: &Path) -> std::io::Result<Journal> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Journal {
            file,
            path: path.to_path_buf(),
        })
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one record and fsyncs before returning, reporting the number
    /// of bytes written (newline included). The fsync is the crash-safety
    /// contract: once this returns, a replay sees the record.
    pub fn append(&mut self, record: &Record) -> std::io::Result<usize> {
        let mut line = record.to_json().to_compact();
        line.push('\n');
        self.file.write_all(line.as_bytes())?;
        self.file.sync_data()?;
        Ok(line.len())
    }
}

/// The result of replaying a journal after a restart.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Replay {
    /// `(id, response line)` for every acknowledged request, in ack order.
    pub acked: Vec<(u64, String)>,
    /// `(idempotency key, response line)` for every acked request whose
    /// admitted line carried an idempotency key. Seeds the idempotency
    /// cache on restart so a duplicate submitted *after* the crash still
    /// re-serves the exact pre-crash bytes (fault plans do not survive a
    /// restart, so re-executing could answer differently).
    pub acked_keys: Vec<(u64, String)>,
    /// Admitted-but-unacknowledged requests, in admission order.
    pub pending: Vec<PendingRequest>,
    /// Whether a torn (truncated) final line was dropped.
    pub torn_tail: bool,
    /// The last stats snapshot recorded on a graceful drain, if any. Used
    /// to restore lifetime-monotonic observability counters on restart.
    pub stats: Option<Json>,
}

/// One request that must be re-run after a crash.
#[derive(Debug, Clone, PartialEq)]
pub struct PendingRequest {
    /// Request id.
    pub id: u64,
    /// Raw request line as originally received.
    pub line: String,
    /// Last sweep checkpoint recorded for the request, if any.
    pub checkpoint: Option<SweepCheckpoint>,
}

/// Extracts the `idempotency_key` field from a journaled request line.
/// The line was validated at admission, so a parse failure just means
/// "no key" — the replay stays usable either way.
fn idempotency_key_of(line: &str) -> Option<u64> {
    let json = mm_json::parse(line).ok()?;
    match json.get("idempotency_key")? {
        Json::Int(k) => Some(*k as u64),
        _ => None,
    }
}

impl Replay {
    /// Replays the journal at `path`. Missing file ⇒ empty replay. A
    /// malformed **final** line is tolerated (a crash mid-append); any other
    /// malformed line is corruption, reported with its line number.
    pub fn load(path: &Path) -> Result<Replay, String> {
        if !path.exists() {
            return Ok(Replay::default());
        }
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read journal {}: {e}", path.display()))?;
        Replay::from_text(&text).map_err(|e| format!("journal {}: {e}", path.display()))
    }

    /// Replays journal text (split out for truncation tests).
    pub fn from_text(text: &str) -> Result<Replay, String> {
        let lines: Vec<&str> = text.lines().collect();
        let mut replay = Replay::default();
        let mut acked_ids = std::collections::HashSet::new();
        let mut admitted_keys = std::collections::HashMap::new();
        for (i, raw) in lines.iter().enumerate() {
            if raw.trim().is_empty() {
                continue;
            }
            let last = i + 1 == lines.len();
            let record = match mm_json::parse(raw)
                .map_err(|e| e.message.clone())
                .and_then(|json| Record::from_json(&json))
            {
                Ok(r) => r,
                Err(_) if last => {
                    // A torn final line is the expected crash artifact: the
                    // record never finished, so its request (if any) simply
                    // was never admitted / acked.
                    replay.torn_tail = true;
                    continue;
                }
                Err(e) => return Err(format!("corrupt record at line {}: {e}", i + 1)),
            };
            match record {
                Record::Admitted { id, line } => {
                    if let Some(key) = idempotency_key_of(&line) {
                        admitted_keys.insert(id, key);
                    }
                    replay.pending.push(PendingRequest {
                        id,
                        line,
                        checkpoint: None,
                    });
                }
                Record::Sweep { id, checkpoint } => {
                    if let Some(p) = replay.pending.iter_mut().find(|p| p.id == id) {
                        p.checkpoint = Some(checkpoint);
                    }
                }
                Record::Acked { id, line } => {
                    acked_ids.insert(id);
                    if let Some(key) = admitted_keys.get(&id) {
                        replay.acked_keys.push((*key, line.clone()));
                    }
                    replay.acked.push((id, line));
                }
                Record::Stats { snapshot } => replay.stats = Some(snapshot),
            }
        }
        replay.pending.retain(|p| !acked_ids.contains(&p.id));
        Ok(replay)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "machmin-journal-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn replay_partitions_acked_and_pending() {
        let path = tmp("basic.jsonl");
        std::fs::remove_file(&path).ok();
        let mut j = Journal::open(&path).unwrap();
        j.append(&Record::Admitted {
            id: 1,
            line: "{\"id\":1}".into(),
        })
        .unwrap();
        j.append(&Record::Admitted {
            id: 2,
            line: "{\"id\":2}".into(),
        })
        .unwrap();
        let mut cp = SweepCheckpoint::new("edf-ff", 4);
        cp.record(mm_adversary::CompletedRun {
            k: 2,
            machines_forced: 2,
            jobs_released: 5,
            policy_missed: false,
            machines_used: 3,
            offline_optimum: 3,
            stopped: None,
        });
        j.append(&Record::Sweep {
            id: 2,
            checkpoint: cp.clone(),
        })
        .unwrap();
        j.append(&Record::Acked {
            id: 1,
            line: "{\"id\":1,\"status\":\"ok\"}".into(),
        })
        .unwrap();
        let replay = Replay::load(&path).unwrap();
        assert_eq!(
            replay.acked,
            vec![(1, "{\"id\":1,\"status\":\"ok\"}".into())]
        );
        assert_eq!(replay.pending.len(), 1);
        assert_eq!(replay.pending[0].id, 2);
        assert_eq!(replay.pending[0].checkpoint.as_ref(), Some(&cp));
        assert!(!replay.torn_tail);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_final_line_is_tolerated_interior_corruption_is_not() {
        let good = concat!(
            "{\"rec\":\"admitted\",\"id\":1,\"line\":\"x\"}\n",
            "{\"rec\":\"acked\",\"id\":1,\"line\":\"y\"}\n",
        );
        // Truncate at every byte: replay must either succeed (possibly with
        // a torn tail) or fail with a line-numbered corruption error, and
        // acked prefixes must survive intact.
        for cut in 0..good.len() {
            match Replay::from_text(&good[..cut]) {
                Ok(replay) => {
                    for (id, line) in &replay.acked {
                        assert_eq!((*id, line.as_str()), (1, "y"));
                    }
                }
                Err(e) => assert!(e.contains("line "), "cut {cut}: {e}"),
            }
        }
        // Interior corruption (torn line is NOT last) is an error.
        let torn_middle = "{\"rec\":\"adm\n{\"rec\":\"acked\",\"id\":1,\"line\":\"y\"}\n";
        let err = Replay::from_text(torn_middle).unwrap_err();
        assert!(err.contains("line 1"), "{err}");
    }

    #[test]
    fn stats_snapshot_round_trips_and_the_last_one_wins() {
        let path = tmp("stats.jsonl");
        std::fs::remove_file(&path).ok();
        let mut j = Journal::open(&path).unwrap();
        let snap = |n: i64| Json::obj([("lifetime_requests", Json::Int(n))]);
        j.append(&Record::Stats { snapshot: snap(10) }).unwrap();
        j.append(&Record::Admitted {
            id: 1,
            line: "{\"id\":1}".into(),
        })
        .unwrap();
        j.append(&Record::Stats { snapshot: snap(25) }).unwrap();
        let replay = Replay::load(&path).unwrap();
        assert_eq!(replay.stats, Some(snap(25)));
        assert_eq!(replay.pending.len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_journal_is_an_empty_replay() {
        let replay = Replay::load(Path::new("/nonexistent/machmin/journal.jsonl")).unwrap();
        assert!(replay.acked.is_empty() && replay.pending.is_empty());
    }
}
