//! Server-side observability state: the registry, windowed rings, slow-span
//! exemplars, and the lifetime counters restored from the journal.
//!
//! Everything wall-clock lives here, quarantined away from the response
//! path: timings flow into the registry and (when a sink is attached) into
//! [`TraceEvent::SpanPhase`] events, never into response lines — the
//! byte-identical transcript contract survives with observability on.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use mm_json::Json;
use mm_obs::{Registry, RegistrySnapshot, SlowSpans, Span, SpanPhase, WindowRing};
use mm_trace::TraceEvent;

/// How many slow-request exemplars the server retains.
pub const SLOW_SPAN_CAP: usize = 8;

/// Length of the windowed (last-N-seconds) latency/queue-depth rings.
pub const OBS_WINDOW_SECS: u64 = 60;

/// Lifetime counters carried across graceful restarts via the journal's
/// stats snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LifetimeBase {
    /// Accumulated uptime of prior lifecycles, milliseconds.
    pub uptime_ms: u64,
    /// Graceful lifecycles completed before this one.
    pub lifecycles: u64,
    /// Terminal responses released in prior lifecycles.
    pub responses: u64,
    /// Worker restarts in prior lifecycles.
    pub restarts: u64,
}

impl LifetimeBase {
    /// Restores the base from a journal stats snapshot, tolerating missing
    /// fields (older journals have no snapshot at all).
    pub fn from_snapshot(snapshot: &Json) -> LifetimeBase {
        let get = |key: &str| {
            snapshot
                .get(key)
                .and_then(Json::as_i64)
                .filter(|&n| n >= 0)
                .unwrap_or(0) as u64
        };
        LifetimeBase {
            uptime_ms: get("lifetime_uptime_ms"),
            lifecycles: get("lifecycles"),
            responses: get("lifetime_responses"),
            restarts: get("lifetime_restarts"),
        }
    }
}

/// Live observability state for one server lifecycle.
pub struct ServeObs {
    /// Named counters and per-kind latency/phase histograms.
    pub registry: Registry,
    started: Instant,
    base: LifetimeBase,
    windows: Mutex<Windows>,
    slow: Mutex<SlowSpans>,
    journal_bytes: AtomicU64,
}

struct Windows {
    latency: WindowRing,
    depth: WindowRing,
}

impl ServeObs {
    /// Fresh state; `base` carries counters restored from the journal.
    pub fn new(base: LifetimeBase) -> ServeObs {
        ServeObs {
            registry: Registry::new(),
            started: Instant::now(),
            base,
            windows: Mutex::new(Windows {
                latency: WindowRing::new(OBS_WINDOW_SECS),
                depth: WindowRing::new(OBS_WINDOW_SECS),
            }),
            slow: Mutex::new(SlowSpans::new(SLOW_SPAN_CAP)),
            journal_bytes: AtomicU64::new(0),
        }
    }

    /// Milliseconds since this lifecycle started.
    pub fn uptime_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    /// The restored lifetime counters.
    pub fn base(&self) -> LifetimeBase {
        self.base
    }

    /// Instant this lifecycle started (workers timestamp phases against it).
    pub fn started(&self) -> Instant {
        self.started
    }

    /// Accounts one admission at the current queue depth.
    pub fn on_admitted(&self, kind: &'static str, depth: usize) {
        self.registry.add(request_counter(kind), 1);
        let now_ms = self.uptime_ms();
        self.windows
            .lock()
            .unwrap()
            .depth
            .record(now_ms, depth as u64);
    }

    /// Accounts one terminal response: latency and phase histograms, the
    /// windowed latency ring, and slow-span retention.
    pub fn on_finished(
        &self,
        kind: &'static str,
        status: &'static str,
        id: u64,
        total_micros: u64,
        phases: &[(&'static str, u64)],
    ) {
        self.registry.add(status_counter(status), 1);
        self.registry.observe(latency_histogram(kind), total_micros);
        for &(phase, micros) in phases {
            self.registry.observe(phase_histogram(phase), micros);
        }
        let now_ms = self.uptime_ms();
        self.windows
            .lock()
            .unwrap()
            .latency
            .record(now_ms, total_micros);
        self.slow.lock().unwrap().offer(Span {
            id,
            kind,
            micros: total_micros,
            phases: phases
                .iter()
                .map(|&(phase, micros)| SpanPhase { phase, micros })
                .collect(),
        });
    }

    /// Adds journal bytes written.
    pub fn on_journal_write(&self, bytes: u64) {
        self.journal_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Journal bytes written this lifecycle.
    pub fn journal_bytes(&self) -> u64 {
        self.journal_bytes.load(Ordering::Relaxed)
    }

    /// The windowed latency/queue-depth aggregates as a JSON object.
    pub fn window_json(&self) -> Json {
        let now_ms = self.uptime_ms();
        let windows = self.windows.lock().unwrap();
        Json::obj([
            ("latency_us", windows.latency.snapshot(now_ms).to_json()),
            ("queue_depth", windows.depth.snapshot(now_ms).to_json()),
        ])
    }

    /// The slow-request exemplars as a JSON array, slowest first.
    pub fn slowest_json(&self) -> Json {
        self.slow.lock().unwrap().to_json()
    }

    /// A registry snapshot (counters, gauges, histograms).
    pub fn snapshot(&self) -> RegistrySnapshot {
        self.registry.snapshot()
    }

    /// [`TraceEvent::SpanPhase`] events for one finished request, total
    /// phase included, ready for the service's trace sink.
    pub fn span_events(
        id: u64,
        total_micros: u64,
        phases: &[(&'static str, u64)],
    ) -> Vec<TraceEvent> {
        let mut events: Vec<TraceEvent> = phases
            .iter()
            .map(|&(phase, micros)| TraceEvent::SpanPhase { id, phase, micros })
            .collect();
        events.push(TraceEvent::SpanPhase {
            id,
            phase: "total",
            micros: total_micros,
        });
        events
    }
}

/// Registry name of the per-kind admission counter.
pub fn request_counter(kind: &str) -> &'static str {
    match kind {
        "solve" => "requests.solve",
        "probe" => "requests.probe",
        "schedule" => "requests.schedule",
        "online" => "requests.online",
        "adversary" => "requests.adversary",
        _ => "requests.other",
    }
}

/// Registry name of the per-portfolio-member online-run counter. The match
/// is static because [`Registry`] names are `&'static str`.
pub fn member_counter(member: &str) -> &'static str {
    match member {
        "loose" => "online.loose",
        "laminar" => "online.laminar",
        "agreeable" => "online.agreeable",
        "cms" => "online.cms",
        "imps" => "online.imps",
        _ => "online.other",
    }
}

/// Registry name of the per-status response counter.
pub fn status_counter(status: &str) -> &'static str {
    match status {
        "ok" => "responses.ok",
        "degraded" => "responses.degraded",
        "overloaded" => "responses.overloaded",
        "error" => "responses.error",
        "quarantined" => "responses.quarantined",
        _ => "responses.other",
    }
}

/// Registry name of the per-kind end-to-end latency histogram.
pub fn latency_histogram(kind: &str) -> &'static str {
    match kind {
        "solve" => "latency_us.solve",
        "probe" => "latency_us.probe",
        "schedule" => "latency_us.schedule",
        "online" => "latency_us.online",
        "adversary" => "latency_us.adversary",
        _ => "latency_us.other",
    }
}

/// Registry name of a phase-duration histogram.
pub fn phase_histogram(phase: &str) -> &'static str {
    match phase {
        "queued" => "phase_us.queued",
        "exec" => "phase_us.exec",
        "probe" => "phase_us.probe",
        "flow" => "phase_us.flow",
        "sim" => "phase_us.sim",
        "sweep" => "phase_us.sweep",
        "reply" => "phase_us.reply",
        _ => "phase_us.other",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finished_requests_land_in_the_right_histograms() {
        let obs = ServeObs::new(LifetimeBase::default());
        obs.on_admitted("solve", 1);
        obs.on_finished("solve", "ok", 4, 1500, &[("queued", 100), ("exec", 1400)]);
        obs.on_finished("probe", "degraded", 5, 90, &[("exec", 90)]);
        let snap = obs.snapshot();
        assert_eq!(snap.counters["requests.solve"], 1);
        assert_eq!(snap.counters["responses.ok"], 1);
        assert_eq!(snap.counters["responses.degraded"], 1);
        assert_eq!(snap.histograms["latency_us.solve"].count(), 1);
        assert_eq!(snap.histograms["latency_us.probe"].count(), 1);
        assert_eq!(snap.histograms["phase_us.queued"].count(), 1);
        assert_eq!(snap.histograms["phase_us.exec"].count(), 2);
        let slow = obs.slowest_json();
        let arr = slow.as_arr().unwrap();
        assert_eq!(arr.len(), 2);
        assert_eq!(arr[0].get("id").unwrap().as_i64(), Some(4));
    }

    #[test]
    fn lifetime_base_round_trips_through_snapshot_json() {
        let base = LifetimeBase {
            uptime_ms: 1234,
            lifecycles: 3,
            responses: 99,
            restarts: 2,
        };
        let json = Json::obj([
            ("lifetime_uptime_ms", Json::Int(base.uptime_ms as i64)),
            ("lifecycles", Json::Int(base.lifecycles as i64)),
            ("lifetime_responses", Json::Int(base.responses as i64)),
            ("lifetime_restarts", Json::Int(base.restarts as i64)),
        ]);
        assert_eq!(LifetimeBase::from_snapshot(&json), base);
        assert_eq!(
            LifetimeBase::from_snapshot(&Json::obj([] as [(&str, Json); 0])),
            LifetimeBase::default()
        );
    }

    #[test]
    fn span_events_cover_every_phase_plus_total() {
        let events = ServeObs::span_events(7, 500, &[("queued", 100), ("exec", 400)]);
        assert_eq!(events.len(), 3);
        assert!(matches!(
            events[2],
            TraceEvent::SpanPhase {
                id: 7,
                phase: "total",
                micros: 500
            }
        ));
    }
}
