//! Supervised concurrent service layer for `machmin`.
//!
//! Turns the batch solver into a long-running server (`machmin serve`)
//! without changing any algorithmic code:
//!
//! * JSONL-over-TCP protocol ([`protocol`]) — solve / probe / schedule /
//!   online / adversary requests with client-chosen correlation ids;
//! * a supervised worker pool ([`supervisor`]) — bounded admission with
//!   explicit shedding, per-request deadlines mapped onto cooperative
//!   [`mm_fault::Budget`] cancellation, panic-catching supervision with
//!   worker recycling, jittered-backoff retries, and quarantine;
//! * a crash-safe write-ahead journal ([`journal`]) — fsynced before
//!   admission and before every response release; replay after a crash
//!   re-serves acked responses byte-identically and resumes unfinished
//!   adversary sweeps from their last checkpoint;
//! * graceful drain — past the drain deadline, queued solve/probe work
//!   degrades to certified `[lo, hi]` brackets instead of being dropped;
//! * load/replay clients ([`load`]) for the soak harness and benchmarks.
//!
//! Everything is std-only: threads, `Mutex`/`Condvar` channels (the
//! workspace `crossbeam` shim), and `std::net`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exec;
pub mod journal;
pub mod load;
pub mod obs;
pub mod protocol;
pub mod supervisor;
pub mod tcp;

pub use journal::{Journal, PendingRequest, Record, Replay};
pub use load::{mixed_requests, run_load, LoadConfig, LoadReport};
pub use obs::{LifetimeBase, ServeObs};
pub use protocol::{Request, RequestKind, Response};
pub use supervisor::{DynSink, ServeConfig, ServeStats, Service};
