//! Request execution: one request in, one terminal [`Response`] out.
//!
//! This is the code that runs *inside* a worker thread, under
//! `catch_unwind`. It is deliberately free of service-layer state: given the
//! same request (and checkpoint), it produces the same response, which is
//! the foundation of the byte-identical replay and same-seed transcript
//! guarantees. Deadlines become [`Budget`] deadlines, so cancellation is
//! cooperative — the solver stops at its own checkpoints and we degrade to
//! whatever bracket it certified, rather than killing threads mid-pivot.

use mm_adversary::{CompletedRun, MigrationGapAdversary, SweepCheckpoint};
use mm_core::{Edf, EdfFirstFit, Llf, MediumFit};
use mm_fault::Budget;
use mm_json::Json;
use mm_sim::{run_policy, SimConfig};
use mm_trace::{NoopSink, TraceEvent, TraceSink};

use crate::protocol::{Request, RequestKind, Response};

/// Starts a phase timer only when the sink wants events, so the untraced
/// path ([`NoopSink`], whose `enabled` is a constant `false`) never reads
/// the clock.
fn phase_start<S: TraceSink>(sink: &S) -> Option<std::time::Instant> {
    sink.enabled().then(std::time::Instant::now)
}

/// Closes a phase timer: one [`TraceEvent::SpanPhase`] into the sink.
fn phase_end<S: TraceSink>(
    sink: &mut S,
    id: u64,
    phase: &'static str,
    start: Option<std::time::Instant>,
) {
    if let Some(t0) = start {
        sink.record(&TraceEvent::SpanPhase {
            id,
            phase,
            micros: t0.elapsed().as_micros() as u64,
        });
    }
}

/// How a sweep step reports progress back to the supervisor for journaling.
pub trait SweepProgress {
    /// Called after every completed adversary depth with the full state.
    fn checkpoint(&mut self, id: u64, checkpoint: &SweepCheckpoint);
}

/// Progress sink that drops checkpoints (tests, journal-less servers).
pub struct NoProgress;

impl SweepProgress for NoProgress {
    fn checkpoint(&mut self, _id: u64, _checkpoint: &SweepCheckpoint) {}
}

impl<F: FnMut(u64, &SweepCheckpoint)> SweepProgress for F {
    fn checkpoint(&mut self, id: u64, checkpoint: &SweepCheckpoint) {
        self(id, checkpoint)
    }
}

/// Builds the budget a request runs under. `starved` is the drain-deadline
/// degradation mode: one augmentation, enough to certify a `[lo, hi]`
/// bracket from the volume bound and a single probe, never enough to stall
/// the drain.
pub fn request_budget(req: &Request, starved: bool) -> Budget {
    let mut budget = Budget::unlimited();
    if let Some(d) = req.deadline() {
        budget = budget.with_deadline(d);
    }
    if let Some(n) = req.max_augmentations {
        budget = budget.with_augmentations(n);
    }
    if starved {
        budget = budget.with_augmentations(1);
    }
    budget
}

/// Executes one request to a terminal response.
///
/// `checkpoint` carries resumed adversary state after a crash; `starved`
/// marks drain-deadline degradation. Never returns `Overloaded` — admission
/// control happens before execution.
pub fn execute(
    req: &Request,
    checkpoint: Option<SweepCheckpoint>,
    starved: bool,
    progress: &mut dyn SweepProgress,
) -> Response {
    execute_traced(req, checkpoint, starved, progress, NoopSink)
}

/// [`execute`] with span-phase reporting: the solver/prober portion of each
/// request is timed and emitted as [`TraceEvent::SpanPhase`] events (`probe`
/// for solve/probe, `sim` for schedule, `sweep` for adversary), and the
/// sink is threaded into [`mm_opt::FeasibilityProber`] so probe counts and
/// the `flow` phase surface too. With a disabled sink this is exactly
/// [`execute`]: no clock reads, no event construction.
pub fn execute_traced<S: TraceSink>(
    req: &Request,
    checkpoint: Option<SweepCheckpoint>,
    starved: bool,
    progress: &mut dyn SweepProgress,
    mut sink: S,
) -> Response {
    let id = req.id;
    let budget = request_budget(req, starved);
    match &req.kind {
        RequestKind::Solve { .. } => {
            let inst = req.instance().expect("solve carries jobs");
            let t_probe = phase_start(&sink);
            let search = mm_opt::optimal_machines_budgeted_traced(&inst, &budget, &mut sink);
            phase_end(&mut sink, id, "probe", t_probe);
            match search.exact {
                Some(m) => {
                    let mut fields = vec![("machines".into(), Json::Int(m as i64))];
                    if req.want_proof {
                        fields.push(("proof".into(), mm_opt::proof_for_solve(&inst, m).to_json()));
                    }
                    Response::Ok { id, fields }
                }
                None => Response::Degraded {
                    id,
                    reason: degrade_reason(&search.exceeded, starved),
                    fields: vec![
                        ("lo".into(), Json::Int(search.lo as i64)),
                        ("hi".into(), Json::Int(search.hi as i64)),
                    ],
                },
            }
        }
        RequestKind::Probe { machines, .. } => {
            let inst = req.instance().expect("probe carries jobs");
            let t_probe = phase_start(&sink);
            // Structured instances answer through the direct certifier —
            // same verdict as the flow oracle, no network, so the budget
            // is irrelevant. General instances (and the rare certifier
            // gap) keep the budgeted flow probe.
            let verdict = match mm_opt::FastProber::new(&inst).try_certify(*machines) {
                Some(true) => mm_opt::Verdict::Feasible,
                Some(false) => mm_opt::Verdict::Infeasible,
                None => mm_opt::FeasibilityProber::new(&inst)
                    .probe_budgeted_traced(*machines, &budget, &mut sink),
            };
            phase_end(&mut sink, id, "probe", t_probe);
            let probe_fields = |feasible: bool| {
                let mut fields = vec![("feasible".into(), Json::Bool(feasible))];
                if req.want_proof {
                    // The infeasible side can decline (a cert whose volume
                    // overflows the wire form); the answer simply ships
                    // proof-less and the coordinator reports Unverifiable.
                    if let Some(proof) = mm_opt::proof_for_probe(&inst, *machines, feasible) {
                        fields.push(("proof".into(), proof.to_json()));
                    }
                }
                fields
            };
            match verdict {
                mm_opt::Verdict::Feasible => Response::Ok {
                    id,
                    fields: probe_fields(true),
                },
                mm_opt::Verdict::Infeasible => Response::Ok {
                    id,
                    fields: probe_fields(false),
                },
                mm_opt::Verdict::Unknown(e) => {
                    // An undecided probe still has certified bounds: the
                    // volume bound below, the trivial one-machine-per-job
                    // bound above.
                    let search = mm_opt::optimal_machines_budgeted(
                        &inst,
                        &Budget::unlimited().with_augmentations(1),
                    );
                    Response::Degraded {
                        id,
                        reason: degrade_reason(&Some(e), starved),
                        fields: vec![
                            ("lo".into(), Json::Int(search.lo as i64)),
                            ("hi".into(), Json::Int(search.hi as i64)),
                        ],
                    }
                }
            }
        }
        RequestKind::Schedule {
            policy, machines, ..
        } => {
            if starved {
                return Response::Degraded {
                    id,
                    reason: "drain".into(),
                    fields: Vec::new(),
                };
            }
            let inst = req.instance().expect("schedule carries jobs");
            let machine_budget = machines.unwrap_or(inst.len()).max(1);
            let t_sim = phase_start(&sink);
            let outcome = match policy.as_str() {
                "edf" => run_policy(&inst, Edf, SimConfig::migratory(machine_budget)),
                "llf" => run_policy(&inst, Llf::new(), SimConfig::migratory(machine_budget)),
                "edf-ff" => run_policy(
                    &inst,
                    EdfFirstFit::new(),
                    SimConfig::nonmigratory(machine_budget),
                ),
                "medium-fit" => run_policy(
                    &inst,
                    MediumFit::new(),
                    SimConfig::nonmigratory(machine_budget),
                ),
                other => {
                    return Response::Error {
                        id,
                        message: format!("unknown policy `{other}`"),
                    }
                }
            };
            phase_end(&mut sink, id, "sim", t_sim);
            match outcome {
                Ok(out) => Response::Ok {
                    id,
                    fields: vec![
                        ("feasible".into(), Json::Bool(out.feasible())),
                        (
                            "machines_used".into(),
                            Json::Int(out.machines_used() as i64),
                        ),
                        ("misses".into(), Json::Int(out.misses.len() as i64)),
                    ],
                },
                Err(e) => Response::Error {
                    id,
                    message: format!("simulation failed: {e}"),
                },
            }
        }
        RequestKind::Online { member, .. } => {
            if starved {
                return Response::Degraded {
                    id,
                    reason: "drain".into(),
                    fields: Vec::new(),
                };
            }
            let inst = req.instance().expect("online carries jobs");
            let picked = if member == "auto" {
                mm_online::Member::auto(&inst)
            } else {
                match mm_online::Member::parse(member) {
                    Some(m) => m,
                    None => {
                        return Response::Error {
                            id,
                            message: format!(
                                "unknown portfolio member `{member}` \
                                 (expected loose, laminar, agreeable, cms, imps, or auto)"
                            ),
                        }
                    }
                }
            };
            let t_probe = phase_start(&sink);
            let (optimum, _) = mm_opt::optimal_machines_fast(&inst);
            phase_end(&mut sink, id, "probe", t_probe);
            let events = mm_online::stream_of_instance(&inst);
            let t_sim = phase_start(&sink);
            let run = mm_online::run_member(picked, "serve", &events, optimum, &mut sink);
            phase_end(&mut sink, id, "sim", t_sim);
            match run {
                Ok(row) => Response::Ok {
                    id,
                    fields: vec![
                        ("member".into(), Json::str(picked.label())),
                        (
                            "machines_opened".into(),
                            Json::Int(row.machines_opened as i64),
                        ),
                        ("optimum".into(), Json::Int(optimum as i64)),
                        ("ratio_millis".into(), Json::Int(row.ratio_millis as i64)),
                        ("misses".into(), Json::Int(row.misses as i64)),
                    ],
                },
                Err(e) => Response::Error {
                    id,
                    message: format!("online replay failed: {e}"),
                },
            }
        }
        RequestKind::Adversary {
            policy,
            k,
            machines,
        } => {
            if starved {
                return Response::Degraded {
                    id,
                    reason: "drain".into(),
                    fields: Vec::new(),
                };
            }
            let t_sweep = phase_start(&sink);
            let response = run_adversary(id, policy, *k, *machines, checkpoint, progress);
            phase_end(&mut sink, id, "sweep", t_sweep);
            response
        }
        RequestKind::Shutdown => Response::Ok {
            id,
            fields: vec![("draining".into(), Json::Bool(true))],
        },
        // Stats and the membership control verbs are answered inline by the
        // supervisor; reaching a worker is a routing bug, answered loudly
        // instead of silently.
        RequestKind::Stats { .. } => Response::Error {
            id,
            message: "stats requests are answered by the supervisor, not a worker".into(),
        },
        RequestKind::Join | RequestKind::Drain | RequestKind::Leave => Response::Error {
            id,
            message: "membership requests are answered by the supervisor, not a worker".into(),
        },
        RequestKind::Verdict { .. } => Response::Error {
            id,
            message: "verdict notices are answered by the supervisor, not a worker".into(),
        },
    }
}

fn degrade_reason(exceeded: &Option<mm_fault::BudgetExceeded>, starved: bool) -> String {
    if starved {
        return "drain".into();
    }
    match exceeded {
        Some(e) => e.tag().to_owned(),
        None => "budget".into(),
    }
}

/// Runs (or resumes) an adversary sweep to depth `k`, emitting a checkpoint
/// after every completed depth so a crash resumes mid-sweep.
fn run_adversary(
    id: u64,
    policy: &str,
    k: usize,
    machines: usize,
    checkpoint: Option<SweepCheckpoint>,
    progress: &mut dyn SweepProgress,
) -> Response {
    if !(2..=8).contains(&k) {
        return Response::Error {
            id,
            message: format!("adversary depth k={k} out of range 2..=8"),
        };
    }
    let mut state = match checkpoint {
        Some(cp) if cp.policy == policy => {
            let mut cp = cp;
            cp.k_target = cp.k_target.max(k);
            cp
        }
        _ => SweepCheckpoint::new(policy, k),
    };
    while let Some(depth) = state.next_k() {
        let res = match policy {
            "edf-ff" => {
                MigrationGapAdversary::with_sink(EdfFirstFit::new(), machines, NoopSink).run(depth)
            }
            "medium-fit" => {
                MigrationGapAdversary::with_sink(MediumFit::new(), machines, NoopSink).run(depth)
            }
            other => {
                return Response::Error {
                    id,
                    message: format!("unknown adversary policy `{other}`"),
                }
            }
        };
        match res {
            Ok(r) => state.record(CompletedRun::from_result(&r)),
            Err(e) => {
                return Response::Error {
                    id,
                    message: format!("adversary run at k={depth} failed: {e}"),
                }
            }
        }
        progress.checkpoint(id, &state);
    }
    let forced = state
        .completed
        .iter()
        .map(|r| r.machines_forced)
        .max()
        .unwrap_or(0);
    let missed = state.completed.iter().any(|r| r.policy_missed);
    Response::Ok {
        id,
        fields: vec![
            ("machines_forced".into(), Json::Int(forced as i64)),
            ("jobs_released".into(), Json::Int(state.total_jobs() as i64)),
            ("policy_missed".into(), Json::Bool(missed)),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64, kind: RequestKind) -> Request {
        Request::new(id, kind)
    }

    #[test]
    fn solve_and_probe_agree_with_the_offline_optimum() {
        let jobs = vec![(0, 2, 2), (0, 2, 2), (0, 2, 2)];
        let solve = execute(
            &req(1, RequestKind::Solve { jobs: jobs.clone() }),
            None,
            false,
            &mut NoProgress,
        );
        assert_eq!(solve.to_line(), r#"{"id":1,"status":"ok","machines":3}"#);
        let yes = execute(
            &req(
                2,
                RequestKind::Probe {
                    jobs: jobs.clone(),
                    machines: 3,
                },
            ),
            None,
            false,
            &mut NoProgress,
        );
        assert_eq!(yes.to_line(), r#"{"id":2,"status":"ok","feasible":true}"#);
        let no = execute(
            &req(3, RequestKind::Probe { jobs, machines: 2 }),
            None,
            false,
            &mut NoProgress,
        );
        assert_eq!(no.to_line(), r#"{"id":3,"status":"ok","feasible":false}"#);
    }

    #[test]
    fn starved_solve_degrades_to_a_certified_bracket() {
        let jobs: Vec<_> = (0..12).map(|i| (i, i + 6, 3)).collect();
        let resp = execute(
            &req(4, RequestKind::Solve { jobs: jobs.clone() }),
            None,
            true,
            &mut NoProgress,
        );
        match resp {
            Response::Degraded { reason, fields, .. } => {
                assert_eq!(reason, "drain");
                let lo = fields.iter().find(|(k, _)| k == "lo").unwrap();
                let hi = fields.iter().find(|(k, _)| k == "hi").unwrap();
                let (lo, hi) = (lo.1.as_i64().unwrap(), hi.1.as_i64().unwrap());
                let exact = execute(
                    &req(5, RequestKind::Solve { jobs }),
                    None,
                    false,
                    &mut NoProgress,
                );
                let line = exact.to_line();
                let m: i64 = mm_json::parse(&line)
                    .unwrap()
                    .get("machines")
                    .unwrap()
                    .as_i64()
                    .unwrap();
                assert!(lo <= m && m <= hi, "bracket [{lo}, {hi}] misses m={m}");
            }
            other => panic!("expected degraded, got {other:?}"),
        }
    }

    #[test]
    fn schedule_reports_feasibility_and_machine_count() {
        let resp = execute(
            &req(
                6,
                RequestKind::Schedule {
                    jobs: vec![(0, 3, 2), (0, 3, 2), (5, 9, 3)],
                    policy: "edf-ff".into(),
                    machines: Some(4),
                },
            ),
            None,
            false,
            &mut NoProgress,
        );
        assert_eq!(
            resp.to_line(),
            r#"{"id":6,"status":"ok","feasible":true,"machines_used":2,"misses":0}"#
        );
    }

    #[test]
    fn online_reports_ratio_against_the_offline_optimum() {
        // Three simultaneous tight jobs: optimum 3; `auto` resolves to the
        // agreeable specialist on this agreeable instance.
        let jobs = vec![(0, 2, 2), (0, 2, 2), (0, 2, 2)];
        let resp = execute(
            &req(
                30,
                RequestKind::Online {
                    jobs: jobs.clone(),
                    member: "auto".into(),
                },
            ),
            None,
            false,
            &mut NoProgress,
        );
        match &resp {
            Response::Ok { fields, .. } => {
                let get = |key: &str| {
                    fields
                        .iter()
                        .find(|(k, _)| k == key)
                        .and_then(|(_, v)| v.as_i64())
                };
                assert_eq!(
                    fields.iter().find(|(k, _)| k == "member").unwrap().1,
                    Json::str("agreeable")
                );
                assert_eq!(get("optimum"), Some(3));
                assert_eq!(get("misses"), Some(0));
                let opened = get("machines_opened").unwrap();
                assert_eq!(get("ratio_millis"), Some(opened * 1000 / 3));
            }
            other => panic!("expected ok, got {other:?}"),
        }
        // Byte-identical across reruns, like every other kind.
        let again = execute(
            &req(
                30,
                RequestKind::Online {
                    jobs,
                    member: "auto".into(),
                },
            ),
            None,
            false,
            &mut NoProgress,
        );
        assert_eq!(resp.to_line(), again.to_line());
        let bad = execute(
            &req(
                31,
                RequestKind::Online {
                    jobs: vec![(0, 2, 1)],
                    member: "dance".into(),
                },
            ),
            None,
            false,
            &mut NoProgress,
        );
        assert!(matches!(bad, Response::Error { .. }), "{bad:?}");
    }

    #[test]
    fn adversary_resumes_from_a_checkpoint_without_redoing_depths() {
        // Run the full sweep once, capturing the k=2 checkpoint.
        let mut after_k2 = None;
        let mut grab = |_id: u64, cp: &SweepCheckpoint| {
            if after_k2.is_none() && cp.is_done(2) {
                after_k2 = Some(cp.clone());
            }
        };
        let full = run_adversary(7, "edf-ff", 3, 16, None, &mut grab);
        let cp = after_k2.expect("k=2 checkpoint observed");
        // Resuming from it must produce the identical final response while
        // only re-running the missing depth.
        let mut depths_rerun = Vec::new();
        let mut count = |_id: u64, cp: &SweepCheckpoint| {
            depths_rerun.push(cp.completed.len());
        };
        let resumed = run_adversary(7, "edf-ff", 3, 16, Some(cp), &mut count);
        assert_eq!(full.to_line(), resumed.to_line());
        assert_eq!(depths_rerun.len(), 1, "only k=3 should re-run");
    }

    #[test]
    fn execution_is_deterministic_per_request() {
        let r = req(
            8,
            RequestKind::Solve {
                jobs: vec![(0, 4, 2), (1, 5, 3), (2, 6, 2)],
            },
        );
        let a = execute(&r, None, false, &mut NoProgress).to_line();
        let b = execute(&r, None, false, &mut NoProgress).to_line();
        assert_eq!(a, b);
    }
}
