//! Wire protocol for `machmin serve`: one JSON object per line, both ways.
//!
//! Requests carry a client-chosen `id` that is echoed on every response, so
//! a client multiplexing many requests over one connection can correlate
//! replies (responses are *not* guaranteed to arrive in submission order —
//! the worker pool completes them as it pleases).
//!
//! Responses deliberately contain **no** timestamps, latencies, or attempt
//! counters: for a fixed request the success response is a pure function of
//! the request, which is what makes same-seed soak transcripts byte-identical
//! across runs and across worker-pool interleavings.

use std::time::Duration;

use mm_instance::Instance;
use mm_json::Json;

/// Maximum number of jobs a single request may carry. Keeps one hostile
/// line from pinning a worker for hours.
pub const MAX_JOBS: usize = 100_000;

/// Maximum accepted line length in bytes (defense against unbounded reads).
pub const MAX_LINE_BYTES: usize = 4 << 20;

/// A parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Client-chosen correlation id, echoed on the response.
    pub id: u64,
    /// What to compute.
    pub kind: RequestKind,
    /// Per-request deadline; mapped onto a [`mm_fault::Budget`] deadline so
    /// the solver cancels cooperatively at its checkpoints.
    pub deadline_ms: Option<u64>,
    /// Cap on binary-search probes (budget augmentations) for solve/probe.
    pub max_augmentations: Option<u64>,
    /// Cluster shard this request belongs to (coordinator bookkeeping;
    /// ignored by the executor so responses stay pure in the payload).
    pub shard: Option<u64>,
    /// Hedge copy number: absent on the primary send, `Some(n)` on the
    /// n-th hedged duplicate. Never echoed — hedged copies of one request
    /// must produce byte-identical response lines.
    pub hedge: Option<u64>,
    /// Idempotency key: requests sharing a key are the same logical work.
    /// The server answers a duplicate key from its response cache instead
    /// of recomputing, so hedged duplicates cost one execution.
    pub idempotency_key: Option<u64>,
    /// Migration marker: absent on ordinary sends, `Some(n)` on a copy the
    /// coordinator moved off a draining or overloaded backend. Like `hedge`
    /// it is never echoed — a migrated copy must produce a byte-identical
    /// response line — but the receiving server counts it, so migration
    /// stays observable without touching the transcript.
    pub migration: Option<u64>,
    /// Ask the executor to attach a Theorem-1 [`mm_opt::Proof`] to a
    /// successful solve/probe answer (the `proof` response field), so the
    /// coordinator can verify the verdict without re-running a flow. Absent
    /// on the wire when false, keeping proof-free request lines unchanged.
    pub want_proof: bool,
}

/// The request payloads the service executes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestKind {
    /// Compute the exact optimum `m(J)` (or a certified bracket).
    Solve {
        /// Jobs as `(release, deadline, processing)` integer triples.
        jobs: Vec<(i64, i64, i64)>,
    },
    /// Feasibility of the instance on `machines` machines.
    Probe {
        /// Jobs as integer triples.
        jobs: Vec<(i64, i64, i64)>,
        /// Machine count to test.
        machines: u64,
    },
    /// Run an online policy and report feasibility and machines used.
    Schedule {
        /// Jobs as integer triples.
        jobs: Vec<(i64, i64, i64)>,
        /// Policy name (`edf`, `llf`, or `edf-ff`).
        policy: String,
        /// Machine budget (defaults to the job count).
        machines: Option<usize>,
    },
    /// Replay the jobs as a strict release-order event stream through one
    /// online portfolio member and report its measured competitive ratio
    /// against the Theorem-1 offline optimum.
    Online {
        /// Jobs as integer triples.
        jobs: Vec<(i64, i64, i64)>,
        /// Portfolio member label (`loose`, `laminar`, `agreeable`, `cms`,
        /// `imps`) or `auto` to let the instance classifier pick.
        member: String,
    },
    /// Run the migration-gap adversary sweep up to depth `k`.
    Adversary {
        /// Policy under attack (`edf-ff` or `medium-fit`).
        policy: String,
        /// Deepest target depth (sweeps `2..=k`).
        k: usize,
        /// Machine budget handed to the policy.
        machines: usize,
    },
    /// Ask the server to drain and shut down.
    Shutdown,
    /// Membership handshake: a coordinator admitting this backend into an
    /// elastic pool asks whether it is ready to take work. Answered inline;
    /// the reply's `ready` field is 0 while the server is draining.
    Join,
    /// Begin draining: stop admitting new work, finish the queue, then stop.
    /// Unlike `shutdown` this is the coordinator-driven graceful-leave verb;
    /// the two are wire-compatible aliases today but carry distinct tags so
    /// journals and traces record intent.
    Drain,
    /// A backend announcing its own departure: drain and stop. Semantically
    /// `drain` initiated by the member rather than the coordinator.
    Leave,
    /// A coordinator reporting its proof-check verdict for an answer this
    /// backend produced. Answered inline (no queue slot, no journal record);
    /// the backend counts it so `top` and `stats` show per-backend
    /// verified/refuted splits without the coordinator's involvement.
    Verdict {
        /// Whether the coordinator refuted the answer (`false` = verified).
        refuted: bool,
    },
    /// Report live observability metrics. Answered inline by the supervisor
    /// (no queue slot, no journal record) so stats stay readable under load.
    Stats {
        /// Reply with the Prometheus text exposition instead of JSON.
        prometheus: bool,
        /// Restrict the reply to deterministic counters: no uptime, no
        /// latency histograms, no exemplars. Used by tests that assert
        /// byte-identical stats across reruns of a seeded plan.
        counters_only: bool,
    },
}

impl RequestKind {
    /// Stable tag used in trace events and journal records.
    pub fn tag(&self) -> &'static str {
        match self {
            RequestKind::Solve { .. } => "solve",
            RequestKind::Probe { .. } => "probe",
            RequestKind::Schedule { .. } => "schedule",
            RequestKind::Online { .. } => "online",
            RequestKind::Adversary { .. } => "adversary",
            RequestKind::Shutdown => "shutdown",
            RequestKind::Join => "join",
            RequestKind::Drain => "drain",
            RequestKind::Leave => "leave",
            RequestKind::Verdict { .. } => "verdict",
            RequestKind::Stats { .. } => "stats",
        }
    }
}

impl Request {
    /// A request with the given id and kind and every optional field unset.
    pub fn new(id: u64, kind: RequestKind) -> Request {
        Request {
            id,
            kind,
            deadline_ms: None,
            max_augmentations: None,
            shard: None,
            hedge: None,
            idempotency_key: None,
            migration: None,
            want_proof: false,
        }
    }

    /// The request's deadline as a `Duration`, if set.
    pub fn deadline(&self) -> Option<Duration> {
        self.deadline_ms.map(Duration::from_millis)
    }

    /// Builds the instance carried by the request, if its kind has one.
    pub fn instance(&self) -> Option<Instance> {
        let jobs = match &self.kind {
            RequestKind::Solve { jobs }
            | RequestKind::Probe { jobs, .. }
            | RequestKind::Schedule { jobs, .. }
            | RequestKind::Online { jobs, .. } => jobs,
            _ => return None,
        };
        Some(Instance::from_ints(jobs.iter().copied()))
    }

    /// Serializes the request to one wire line (no trailing newline).
    pub fn to_line(&self) -> String {
        let mut fields = vec![
            ("id", Json::Int(self.id as i64)),
            ("kind", Json::str(self.kind.tag())),
        ];
        match &self.kind {
            RequestKind::Solve { jobs } => fields.push(("jobs", jobs_json(jobs))),
            RequestKind::Probe { jobs, machines } => {
                fields.push(("jobs", jobs_json(jobs)));
                fields.push(("machines", Json::Int(*machines as i64)));
            }
            RequestKind::Schedule {
                jobs,
                policy,
                machines,
            } => {
                fields.push(("jobs", jobs_json(jobs)));
                fields.push(("policy", Json::str(policy)));
                if let Some(m) = machines {
                    fields.push(("machines", Json::Int(*m as i64)));
                }
            }
            RequestKind::Online { jobs, member } => {
                fields.push(("jobs", jobs_json(jobs)));
                fields.push(("member", Json::str(member)));
            }
            RequestKind::Adversary {
                policy,
                k,
                machines,
            } => {
                fields.push(("policy", Json::str(policy)));
                fields.push(("k", Json::Int(*k as i64)));
                fields.push(("machines", Json::Int(*machines as i64)));
            }
            RequestKind::Shutdown | RequestKind::Join | RequestKind::Drain | RequestKind::Leave => {
            }
            RequestKind::Verdict { refuted } => {
                fields.push(("refuted", Json::Bool(*refuted)));
            }
            RequestKind::Stats {
                prometheus,
                counters_only,
            } => {
                if *prometheus {
                    fields.push(("format", Json::str("prometheus")));
                }
                if *counters_only {
                    fields.push(("counters_only", Json::Bool(true)));
                }
            }
        }
        if let Some(ms) = self.deadline_ms {
            fields.push(("deadline_ms", Json::Int(ms as i64)));
        }
        if let Some(n) = self.max_augmentations {
            fields.push(("max_augmentations", Json::Int(n as i64)));
        }
        if let Some(s) = self.shard {
            fields.push(("shard", Json::Int(s as i64)));
        }
        if let Some(h) = self.hedge {
            fields.push(("hedge", Json::Int(h as i64)));
        }
        if let Some(k) = self.idempotency_key {
            fields.push(("idempotency_key", Json::Int(k as i64)));
        }
        if let Some(m) = self.migration {
            fields.push(("migration", Json::Int(m as i64)));
        }
        if self.want_proof {
            fields.push(("want_proof", Json::Bool(true)));
        }
        Json::obj(fields).to_compact()
    }

    /// Parses one wire line. Errors are client errors — the connection stays
    /// up and the line is answered with a `status: "error"` response.
    pub fn parse(line: &str) -> Result<Request, String> {
        if line.len() > MAX_LINE_BYTES {
            return Err(format!(
                "request line exceeds {MAX_LINE_BYTES} bytes ({} sent)",
                line.len()
            ));
        }
        let json = mm_json::parse(line)
            .map_err(|e| format!("malformed request ({}): {}", e.locate(line), e.message))?;
        let id = json
            .get("id")
            .and_then(Json::as_i64)
            .filter(|&n| n >= 0)
            .ok_or("request missing non-negative integer `id`")? as u64;
        let kind_tag = json
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("request missing string `kind`")?;
        let uint = |key: &str| -> Result<Option<u64>, String> {
            match json.get(key) {
                None => Ok(None),
                Some(v) => v
                    .as_i64()
                    .filter(|&n| n >= 0)
                    .map(|n| Some(n as u64))
                    .ok_or_else(|| format!("field `{key}` must be a non-negative integer")),
            }
        };
        let kind = match kind_tag {
            "solve" => RequestKind::Solve {
                jobs: parse_jobs(&json)?,
            },
            "probe" => RequestKind::Probe {
                jobs: parse_jobs(&json)?,
                machines: uint("machines")?.ok_or("probe request missing `machines`")?,
            },
            "schedule" => RequestKind::Schedule {
                jobs: parse_jobs(&json)?,
                policy: json
                    .get("policy")
                    .and_then(Json::as_str)
                    .ok_or("schedule request missing string `policy`")?
                    .to_owned(),
                machines: uint("machines")?.map(|m| m as usize),
            },
            "online" => RequestKind::Online {
                jobs: parse_jobs(&json)?,
                member: match json.get("member") {
                    None => "auto".to_owned(),
                    Some(v) => v
                        .as_str()
                        .ok_or("field `member` must be a string")?
                        .to_owned(),
                },
            },
            "adversary" => RequestKind::Adversary {
                policy: json
                    .get("policy")
                    .and_then(Json::as_str)
                    .ok_or("adversary request missing string `policy`")?
                    .to_owned(),
                k: uint("k")?.ok_or("adversary request missing `k`")? as usize,
                machines: uint("machines")?.ok_or("adversary request missing `machines`")? as usize,
            },
            "shutdown" => RequestKind::Shutdown,
            "join" => RequestKind::Join,
            "drain" => RequestKind::Drain,
            "leave" => RequestKind::Leave,
            "verdict" => RequestKind::Verdict {
                refuted: match json.get("refuted") {
                    None => false,
                    Some(v) => v.as_bool().ok_or("field `refuted` must be a boolean")?,
                },
            },
            "stats" => RequestKind::Stats {
                prometheus: match json.get("format").map(Json::as_str) {
                    None => false,
                    Some(Some("prometheus")) => true,
                    Some(Some("json")) => false,
                    Some(_) => {
                        return Err("field `format` must be `json` or `prometheus`".into());
                    }
                },
                counters_only: match json.get("counters_only") {
                    None => false,
                    Some(v) => v
                        .as_bool()
                        .ok_or("field `counters_only` must be a boolean")?,
                },
            },
            other => return Err(format!("unknown request kind `{other}`")),
        };
        Ok(Request {
            id,
            kind,
            deadline_ms: uint("deadline_ms")?,
            max_augmentations: uint("max_augmentations")?,
            shard: uint("shard")?,
            hedge: uint("hedge")?,
            idempotency_key: uint("idempotency_key")?,
            migration: uint("migration")?,
            want_proof: match json.get("want_proof") {
                None => false,
                Some(v) => v.as_bool().ok_or("field `want_proof` must be a boolean")?,
            },
        })
    }
}

fn jobs_json(jobs: &[(i64, i64, i64)]) -> Json {
    Json::Arr(
        jobs.iter()
            .map(|&(r, d, p)| Json::Arr(vec![Json::Int(r), Json::Int(d), Json::Int(p)]))
            .collect(),
    )
}

fn parse_jobs(json: &Json) -> Result<Vec<(i64, i64, i64)>, String> {
    let arr = json
        .get("jobs")
        .and_then(Json::as_arr)
        .ok_or("request missing `jobs` array")?;
    if arr.len() > MAX_JOBS {
        return Err(format!("too many jobs ({} > {MAX_JOBS})", arr.len()));
    }
    arr.iter()
        .enumerate()
        .map(|(i, j)| {
            let triple = j.as_arr().filter(|t| t.len() == 3).ok_or_else(|| {
                format!("job {i} is not a [release, deadline, processing] triple")
            })?;
            let mut nums = [0i64; 3];
            for (slot, v) in nums.iter_mut().zip(triple) {
                *slot = v
                    .as_i64()
                    .ok_or_else(|| format!("job {i} has a non-integer field"))?;
            }
            if nums[2] <= 0 || nums[1] <= nums[0] || nums[2] > nums[1] - nums[0] {
                return Err(format!(
                    "job {i} is invalid: need release < deadline and 0 < processing <= window"
                ));
            }
            Ok((nums[0], nums[1], nums[2]))
        })
        .collect()
}

/// A terminal response for one request.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Success; the payload depends on the request kind.
    Ok {
        /// Echoed request id.
        id: u64,
        /// Kind-specific result fields, already in wire order.
        fields: Vec<(String, Json)>,
    },
    /// The budget or drain deadline ran out; a certified partial answer.
    Degraded {
        /// Echoed request id.
        id: u64,
        /// Why the request degraded (`deadline`, `budget`, or `drain`).
        reason: String,
        /// Kind-specific partial-result fields (e.g. a `[lo, hi]` bracket).
        fields: Vec<(String, Json)>,
    },
    /// The admission queue was full (or the server is draining); retry later.
    Overloaded {
        /// Echoed request id.
        id: u64,
        /// Suggested client backoff before retrying.
        retry_after_ms: u64,
    },
    /// The request was invalid or failed; it was not (or could not be) run.
    Error {
        /// Echoed request id (0 when the line had no parsable id).
        id: u64,
        /// Human-readable cause.
        message: String,
    },
    /// The request crashed its worker repeatedly and was set aside.
    Quarantined {
        /// Echoed request id.
        id: u64,
        /// How many attempts were made before giving up.
        attempts: u32,
    },
}

impl Response {
    /// The correlation id this response answers.
    pub fn id(&self) -> u64 {
        match self {
            Response::Ok { id, .. }
            | Response::Degraded { id, .. }
            | Response::Overloaded { id, .. }
            | Response::Error { id, .. }
            | Response::Quarantined { id, .. } => *id,
        }
    }

    /// Stable status tag.
    pub fn status(&self) -> &'static str {
        match self {
            Response::Ok { .. } => "ok",
            Response::Degraded { .. } => "degraded",
            Response::Overloaded { .. } => "overloaded",
            Response::Error { .. } => "error",
            Response::Quarantined { .. } => "quarantined",
        }
    }

    /// Whether this response terminates an *admitted* request (sheds and
    /// pre-admission errors are terminal too, but never entered the queue).
    pub fn is_terminal(&self) -> bool {
        true
    }

    /// Serializes the response to one wire line (no trailing newline).
    pub fn to_line(&self) -> String {
        let mut fields: Vec<(String, Json)> = vec![
            ("id".into(), Json::Int(self.id() as i64)),
            ("status".into(), Json::str(self.status())),
        ];
        match self {
            Response::Ok { fields: extra, .. } => fields.extend(extra.iter().cloned()),
            Response::Degraded {
                reason,
                fields: extra,
                ..
            } => {
                fields.push(("reason".into(), Json::str(reason)));
                fields.extend(extra.iter().cloned());
            }
            Response::Overloaded { retry_after_ms, .. } => {
                fields.push(("retry_after_ms".into(), Json::Int(*retry_after_ms as i64)));
            }
            Response::Error { message, .. } => {
                fields.push(("message".into(), Json::str(message)));
            }
            Response::Quarantined { attempts, .. } => {
                fields.push(("attempts".into(), Json::Int(*attempts as i64)));
            }
        }
        Json::obj(fields).to_compact()
    }

    /// Parses a response line (used by clients and the load generator).
    pub fn parse(line: &str) -> Result<Response, String> {
        let json = mm_json::parse(line)
            .map_err(|e| format!("malformed response ({}): {}", e.locate(line), e.message))?;
        let id = json
            .get("id")
            .and_then(Json::as_i64)
            .filter(|&n| n >= 0)
            .ok_or("response missing `id`")? as u64;
        let status = json
            .get("status")
            .and_then(Json::as_str)
            .ok_or("response missing `status`")?;
        let rest = |skip: &[&str]| -> Vec<(String, Json)> {
            json.as_obj()
                .map(|members| {
                    members
                        .iter()
                        .filter(|(k, _)| k != "id" && k != "status" && !skip.contains(&k.as_str()))
                        .cloned()
                        .collect()
                })
                .unwrap_or_default()
        };
        Ok(match status {
            "ok" => Response::Ok {
                id,
                fields: rest(&[]),
            },
            "degraded" => Response::Degraded {
                id,
                reason: json
                    .get("reason")
                    .and_then(Json::as_str)
                    .unwrap_or("unknown")
                    .to_owned(),
                fields: rest(&["reason"]),
            },
            "overloaded" => Response::Overloaded {
                id,
                retry_after_ms: json
                    .get("retry_after_ms")
                    .and_then(Json::as_i64)
                    .filter(|&n| n >= 0)
                    .unwrap_or(0) as u64,
            },
            "error" => Response::Error {
                id,
                message: json
                    .get("message")
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_owned(),
            },
            "quarantined" => Response::Quarantined {
                id,
                attempts: json
                    .get("attempts")
                    .and_then(Json::as_i64)
                    .filter(|&n| n >= 0)
                    .unwrap_or(0) as u32,
            },
            other => return Err(format!("unknown response status `{other}`")),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_roundtrip_through_the_wire_format() {
        let reqs = [
            Request {
                deadline_ms: Some(250),
                ..Request::new(
                    1,
                    RequestKind::Solve {
                        jobs: vec![(0, 4, 2), (1, 5, 3)],
                    },
                )
            },
            Request {
                max_augmentations: Some(8),
                ..Request::new(
                    2,
                    RequestKind::Probe {
                        jobs: vec![(0, 2, 2)],
                        machines: 1,
                    },
                )
            },
            Request::new(
                3,
                RequestKind::Schedule {
                    jobs: vec![(0, 3, 1)],
                    policy: "edf-ff".into(),
                    machines: Some(4),
                },
            ),
            Request::new(
                21,
                RequestKind::Online {
                    jobs: vec![(0, 4, 2), (1, 5, 3)],
                    member: "agreeable".into(),
                },
            ),
            Request::new(
                22,
                RequestKind::Online {
                    jobs: vec![(0, 2, 1)],
                    member: "auto".into(),
                },
            ),
            Request {
                deadline_ms: Some(10_000),
                ..Request::new(
                    4,
                    RequestKind::Adversary {
                        policy: "edf-ff".into(),
                        k: 3,
                        machines: 16,
                    },
                )
            },
            Request::new(5, RequestKind::Shutdown),
            Request::new(14, RequestKind::Join),
            Request::new(15, RequestKind::Drain),
            Request::new(16, RequestKind::Leave),
            Request::new(18, RequestKind::Verdict { refuted: true }),
            Request::new(19, RequestKind::Verdict { refuted: false }),
            Request {
                want_proof: true,
                idempotency_key: Some(0xCAFE),
                ..Request::new(
                    20,
                    RequestKind::Probe {
                        jobs: vec![(0, 3, 2)],
                        machines: 2,
                    },
                )
            },
            Request {
                idempotency_key: Some(0xF00D),
                migration: Some(1),
                ..Request::new(
                    17,
                    RequestKind::Solve {
                        jobs: vec![(0, 2, 2)],
                    },
                )
            },
            Request::new(
                12,
                RequestKind::Stats {
                    prometheus: false,
                    counters_only: false,
                },
            ),
            Request::new(
                13,
                RequestKind::Stats {
                    prometheus: true,
                    counters_only: true,
                },
            ),
            Request {
                shard: Some(2),
                hedge: Some(1),
                idempotency_key: Some(0xBEEF),
                ..Request::new(
                    6,
                    RequestKind::Probe {
                        jobs: vec![(0, 2, 2)],
                        machines: 2,
                    },
                )
            },
        ];
        for req in reqs {
            let line = req.to_line();
            assert_eq!(Request::parse(&line).unwrap(), req, "line: {line}");
        }
    }

    #[test]
    fn responses_roundtrip_through_the_wire_format() {
        let resps = [
            Response::Ok {
                id: 7,
                fields: vec![("machines".into(), Json::Int(3))],
            },
            Response::Degraded {
                id: 8,
                reason: "deadline".into(),
                fields: vec![("lo".into(), Json::Int(2)), ("hi".into(), Json::Int(5))],
            },
            Response::Overloaded {
                id: 9,
                retry_after_ms: 25,
            },
            Response::Error {
                id: 10,
                message: "job 0 is invalid: need release < deadline and 0 < processing <= window"
                    .into(),
            },
            Response::Quarantined {
                id: 11,
                attempts: 3,
            },
        ];
        for resp in resps {
            let line = resp.to_line();
            assert_eq!(Response::parse(&line).unwrap(), resp, "line: {line}");
        }
    }

    #[test]
    fn bad_requests_are_descriptive_errors() {
        for (line, needle) in [
            ("{", "malformed request"),
            (r#"{"kind": "solve"}"#, "id"),
            (r#"{"id": 1}"#, "kind"),
            (r#"{"id": 1, "kind": "dance"}"#, "unknown request kind"),
            (r#"{"id": 1, "kind": "solve"}"#, "jobs"),
            (
                r#"{"id": 1, "kind": "solve", "jobs": [[3, 1, 1]]}"#,
                "job 0 is invalid",
            ),
            (
                r#"{"id": 1, "kind": "probe", "jobs": [[0, 2, 1]]}"#,
                "machines",
            ),
            (
                r#"{"id": 1, "kind": "solve", "jobs": [[0, 2, 1]], "deadline_ms": -4}"#,
                "deadline_ms",
            ),
            (r#"{"id": 1, "kind": "stats", "format": "xml"}"#, "format"),
            (
                r#"{"id": 1, "kind": "stats", "counters_only": 3}"#,
                "counters_only",
            ),
        ] {
            let err = Request::parse(line).unwrap_err();
            assert!(err.contains(needle), "{line} -> {err}");
        }
    }

    #[test]
    fn truncating_a_request_line_is_located_not_a_panic() {
        let line = Request {
            deadline_ms: Some(100),
            max_augmentations: Some(4),
            idempotency_key: Some(7),
            ..Request::new(
                42,
                RequestKind::Solve {
                    jobs: vec![(0, 4, 2), (1, 5, 3)],
                },
            )
        }
        .to_line();
        for cut in 0..line.len() {
            if let Err(err) = Request::parse(&line[..cut]) {
                if err.contains("malformed") {
                    assert!(err.contains("line 1, column"), "cut {cut}: {err}");
                }
            }
        }
    }
}
