//! The supervised worker pool: admission control, retries, quarantine,
//! crash recovery, and graceful drain.
//!
//! # Lifecycle of a request
//!
//! 1. **Admission** ([`Service::submit_line`]): the line is parsed; invalid
//!    lines get an immediate `error` response. If the server is draining or
//!    the queue is at capacity the request is **shed** with `overloaded` +
//!    `retry_after_ms`. Otherwise the raw line is appended (fsynced) to the
//!    write-ahead journal *before* the request enters the bounded queue —
//!    the crash-safety ordering.
//! 2. **Execution**: a worker picks the item up and runs it under
//!    `catch_unwind`. Injected faults ([`FaultSite::WorkerPanic`],
//!    [`FaultSite::MachineSlowdown`]) fire here, deterministically.
//! 3. **Completion**: the supervisor journals the exact response line, then
//!    releases it to the client. Exactly one terminal response per admitted
//!    request — the property tests pin this.
//! 4. **Panic**: the worker thread dies; the supervisor catches the
//!    corpse via the control channel, spawns a replacement, and either
//!    re-queues the request (decorrelated-jitter backoff, capped attempts)
//!    or quarantines it with a `quarantined` response.
//! 5. **Drain** ([`Service::shutdown`]): no new admissions; in-flight work
//!    finishes. Past the drain deadline, still-queued solve/probe requests
//!    are *degraded* to certified `[lo, hi]` brackets instead of being
//!    dropped.

use std::collections::BinaryHeap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{self, Receiver, Sender};
use mm_adversary::SweepCheckpoint;
use mm_fault::{FaultInjector, FaultPlan, FaultSite, RetryPolicy};
use mm_json::Json;
use mm_obs::prometheus_text;
use mm_trace::{TraceEvent, TraceSink};

use crate::exec;
use crate::journal::{Journal, PendingRequest, Record, Replay};
use crate::obs::{LifetimeBase, ServeObs};
use crate::protocol::{Request, RequestKind, Response};

/// Trace sink handle shared by every thread of the service.
pub type DynSink = mm_trace::SharedSink<Box<dyn TraceSink + Send>>;

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads executing requests.
    pub workers: usize,
    /// Admission bound: queued + running + awaiting-retry requests.
    pub queue_cap: usize,
    /// Drain deadline: queued work older than this after [`Service::shutdown`]
    /// is degraded rather than completed.
    pub drain_ms: u64,
    /// Retry/backoff policy for panicked requests.
    pub retry: RetryPolicy,
    /// Seed for retry jitter (and recorded in transcripts).
    pub seed: u64,
    /// Deterministic fault plan (worker panics, slowdowns).
    pub plan: FaultPlan,
    /// Deadline applied to requests that carry none of their own.
    pub default_deadline_ms: Option<u64>,
    /// Write-ahead journal path (`None`: journal disabled).
    pub journal: Option<PathBuf>,
    /// Sleep injected when [`FaultSite::MachineSlowdown`] fires in a worker.
    pub slowdown_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            queue_cap: 16,
            drain_ms: 2_000,
            retry: RetryPolicy::default(),
            seed: 0,
            plan: FaultPlan::none(),
            default_deadline_ms: None,
            journal: None,
            slowdown_ms: 5,
        }
    }
}

/// Counters the service maintains; cheap to clone out at any time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Lines submitted (including shutdowns and parse failures).
    pub received: u64,
    /// Requests admitted to the queue (including crash-recovered ones).
    pub admitted: u64,
    /// Requests shed with `overloaded`.
    pub shed: u64,
    /// Lines rejected before admission (parse/validation errors).
    pub rejected: u64,
    /// Terminal responses released for admitted requests.
    pub responses: u64,
    /// Requests re-queued after a worker panic.
    pub retried: u64,
    /// Requests quarantined after exhausting retry attempts.
    pub quarantined: u64,
    /// Worker panics caught by the supervisor.
    pub panics: u64,
    /// Replacement workers spawned.
    pub restarts: u64,
    /// Requests degraded at the drain deadline.
    pub drain_degraded: u64,
    /// Acked responses replayed from the journal at startup.
    pub replayed_acks: u64,
    /// Requests answered from the idempotency cache (hedged duplicates).
    pub deduped: u64,
    /// `stats` requests answered inline by the supervisor.
    pub stats_served: u64,
    /// Membership control requests (`join`/`drain`/`leave`) answered inline.
    pub control_served: u64,
    /// Answered requests that carried a `migration` marker — work the
    /// cluster coordinator moved here off a draining or overloaded backend.
    /// The response bytes are identical to an unmarked send (transcript
    /// determinism), so this counter is how migration stays observable.
    pub migrated_served: u64,
    /// Ok solve/probe answers released with a `proof` field attached
    /// (requested via `want_proof`).
    pub proofs_attached: u64,
    /// Answers perturbed by the `answer_corruption` fault site before they
    /// were journaled, cached, and released. A corrupted answer replays
    /// byte-identically, so this counter is the only honest record that the
    /// released bytes are lies.
    pub corrupted: u64,
    /// `verdict` notices (refuted=false) received from a coordinator that
    /// proof-checked one of this server's answers.
    pub verified_noted: u64,
    /// `verdict` notices (refuted=true) received from a coordinator: answers
    /// this server gave that failed proof verification.
    pub refuted_noted: u64,
}

impl ServeStats {
    /// The soak invariant: every admitted request got exactly one terminal
    /// response, and every received line was admitted, shed, rejected, or
    /// answered from the idempotency cache.
    pub fn invariant_holds(&self) -> bool {
        self.admitted == self.responses
    }

    /// The counters as a JSON object (the `counters` field of a `stats`
    /// response). Field order is fixed, so the encoding is byte-stable.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("received", Json::Int(self.received as i64)),
            ("admitted", Json::Int(self.admitted as i64)),
            ("shed", Json::Int(self.shed as i64)),
            ("rejected", Json::Int(self.rejected as i64)),
            ("responses", Json::Int(self.responses as i64)),
            ("retried", Json::Int(self.retried as i64)),
            ("quarantined", Json::Int(self.quarantined as i64)),
            ("panics", Json::Int(self.panics as i64)),
            ("restarts", Json::Int(self.restarts as i64)),
            ("drain_degraded", Json::Int(self.drain_degraded as i64)),
            ("replayed_acks", Json::Int(self.replayed_acks as i64)),
            ("deduped", Json::Int(self.deduped as i64)),
            ("stats_served", Json::Int(self.stats_served as i64)),
            ("control_served", Json::Int(self.control_served as i64)),
            ("migrated_served", Json::Int(self.migrated_served as i64)),
            ("proofs_attached", Json::Int(self.proofs_attached as i64)),
            ("corrupted", Json::Int(self.corrupted as i64)),
            ("verified_noted", Json::Int(self.verified_noted as i64)),
            ("refuted_noted", Json::Int(self.refuted_noted as i64)),
        ])
    }
}

/// Bound on remembered idempotency keys (FIFO eviction past this).
const IDEM_CACHE_CAP: usize = 4096;

/// Bounded idempotency cache: completed response lines keyed by the
/// request's idempotency key. A duplicate key is answered with the exact
/// bytes of the first completion, so a hedged duplicate costs a map lookup
/// instead of a second execution — and the coordinator's dedup-by-bytes
/// works no matter which copy wins.
#[derive(Default)]
struct IdemCache {
    map: std::collections::HashMap<u64, String>,
    order: std::collections::VecDeque<u64>,
}

impl IdemCache {
    fn get(&self, key: u64) -> Option<&String> {
        self.map.get(&key)
    }

    fn insert(&mut self, key: u64, line: String) {
        if self.map.insert(key, line).is_none() {
            self.order.push_back(key);
            if self.order.len() > IDEM_CACHE_CAP {
                if let Some(old) = self.order.pop_front() {
                    self.map.remove(&old);
                }
            }
        }
    }
}

struct Admission {
    depth: usize,
    draining: bool,
    stopped: bool,
}

struct Shared {
    cfg: ServeConfig,
    admission: Mutex<Admission>,
    stopped_cv: Condvar,
    journal: Option<Mutex<Journal>>,
    injector: Mutex<FaultInjector>,
    idem: Mutex<IdemCache>,
    sink: DynSink,
    stats: Mutex<ServeStats>,
    obs: ServeObs,
}

impl Shared {
    fn emit(&self, event: TraceEvent) {
        let mut sink = self.sink.clone();
        if sink.enabled() {
            sink.record(&event);
        }
    }

    fn journal_append(&self, record: &Record) -> std::io::Result<()> {
        match &self.journal {
            Some(j) => {
                let bytes = j.lock().unwrap().append(record)?;
                self.obs.on_journal_write(bytes as u64);
                Ok(())
            }
            None => Ok(()),
        }
    }

    /// Builds the reply to a `stats` request. `counters_only` strips every
    /// wall-clock-derived field so the reply is a pure function of the
    /// request history — the form the determinism tests scrape. That form
    /// also zeroes `stats_served`: scrape cadence is an observer choice, not
    /// part of the workload, and must not perturb byte-compared replies.
    fn stats_response(&self, id: u64, prometheus: bool, counters_only: bool) -> Response {
        let mut stats = *self.stats.lock().unwrap();
        if counters_only {
            stats.stats_served = 0;
            // Verdict notices are an observer artifact like scrape cadence:
            // how often a coordinator checks proofs is not part of the
            // workload, so the byte-compared form drops them too.
            stats.verified_noted = 0;
            stats.refuted_noted = 0;
        }
        let depth = self.admission.lock().unwrap().depth;
        let base = self.obs.base();
        let uptime_ms = self.obs.uptime_ms();
        let mut snap = self.obs.snapshot();
        let serve_counters = [
            ("serve.received", stats.received),
            ("serve.admitted", stats.admitted),
            ("serve.shed", stats.shed),
            ("serve.rejected", stats.rejected),
            ("serve.responses", stats.responses),
            ("serve.retried", stats.retried),
            ("serve.quarantined", stats.quarantined),
            ("serve.panics", stats.panics),
            ("serve.restarts", stats.restarts),
            ("serve.drain_degraded", stats.drain_degraded),
            ("serve.replayed_acks", stats.replayed_acks),
            ("serve.deduped", stats.deduped),
            ("serve.stats_served", stats.stats_served),
            ("serve.control_served", stats.control_served),
            ("serve.migrated_served", stats.migrated_served),
            ("serve.proofs_attached", stats.proofs_attached),
            ("serve.corrupted", stats.corrupted),
            ("serve.verified", stats.verified_noted),
            ("serve.refuted", stats.refuted_noted),
        ];
        for (name, value) in serve_counters {
            snap.counters.insert(name.to_string(), value);
        }
        if counters_only {
            snap.gauges.clear();
            snap.histograms.clear();
        } else {
            snap.gauges.insert("queue_depth".to_string(), depth as i64);
            snap.gauges.insert("in_flight".to_string(), depth as i64);
            snap.gauges
                .insert("uptime_ms".to_string(), uptime_ms as i64);
            snap.counters
                .insert("serve.journal_bytes".to_string(), self.obs.journal_bytes());
        }
        if prometheus {
            return Response::Ok {
                id,
                fields: vec![("prometheus".into(), Json::str(prometheus_text(&snap)))],
            };
        }
        let mut fields: Vec<(String, Json)> = Vec::new();
        if !counters_only {
            fields.push(("uptime_ms".into(), Json::Int(uptime_ms as i64)));
            fields.push((
                "lifetime_uptime_ms".into(),
                Json::Int((base.uptime_ms + uptime_ms) as i64),
            ));
        }
        fields.push(("lifecycles".into(), Json::Int((base.lifecycles + 1) as i64)));
        fields.push((
            "lifetime_responses".into(),
            Json::Int((base.responses + stats.responses) as i64),
        ));
        fields.push((
            "lifetime_restarts".into(),
            Json::Int((base.restarts + stats.restarts) as i64),
        ));
        if !counters_only {
            fields.push(("queue_depth".into(), Json::Int(depth as i64)));
            fields.push(("in_flight".into(), Json::Int(depth as i64)));
            fields.push(("workers".into(), Json::Int(self.cfg.workers as i64)));
            fields.push(("workers_recycled".into(), Json::Int(stats.restarts as i64)));
            fields.push((
                "journal_bytes".into(),
                Json::Int(self.obs.journal_bytes() as i64),
            ));
        }
        fields.push(("counters".into(), stats.to_json()));
        fields.push(("registry".into(), snap.to_json()));
        if !counters_only {
            fields.push(("window".into(), self.obs.window_json()));
            fields.push(("slowest".into(), self.obs.slowest_json()));
        }
        Response::Ok { id, fields }
    }
}

struct WorkItem {
    req: Request,
    attempts: u32,
    checkpoint: Option<SweepCheckpoint>,
    reply: Sender<String>,
    /// When the request entered the queue (original admission — retries keep
    /// it, so span latency covers the whole supervised lifetime).
    admitted_at: Instant,
    /// Phase timings collected by the worker, microseconds per phase name.
    phases: Vec<(&'static str, u64)>,
}

enum Work {
    // Boxed: a WorkItem carries a whole Request, dwarfing the Stop pill.
    Item(Box<WorkItem>),
    Stop,
}

enum Ctrl {
    Done {
        item: WorkItem,
        response: Response,
    },
    Sweep {
        id: u64,
        checkpoint: SweepCheckpoint,
    },
    Panicked {
        worker: usize,
        item: WorkItem,
        message: String,
    },
    Drain,
}

/// A retry waiting for its backoff to elapse. Ordered so the *earliest* due
/// time is the heap maximum (`BinaryHeap` is a max-heap).
struct PendingRetry {
    due: Instant,
    item: WorkItem,
}

impl PartialEq for PendingRetry {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due
    }
}
impl Eq for PendingRetry {}
impl PartialOrd for PendingRetry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PendingRetry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.due.cmp(&self.due)
    }
}

/// A running service instance.
pub struct Service {
    shared: Arc<Shared>,
    work_tx: Sender<Work>,
    ctrl_tx: Sender<Ctrl>,
    supervisor: Option<JoinHandle<()>>,
    recovery_rx: Receiver<String>,
    recovered_acks: Vec<(u64, String)>,
}

impl Service {
    /// Starts the service: replays the journal (if any), spawns the worker
    /// pool and the supervisor, and re-enqueues crash-recovered requests.
    pub fn start(cfg: ServeConfig, sink: DynSink) -> Result<Service, String> {
        install_worker_panic_silencer();
        let replay = match &cfg.journal {
            Some(path) => Replay::load(path)?,
            None => Replay::default(),
        };
        let journal = match &cfg.journal {
            Some(path) => Some(Mutex::new(
                Journal::open(path).map_err(|e| format!("cannot open journal: {e}"))?,
            )),
            None => None,
        };
        let workers = cfg.workers.max(1);
        let queue_cap = cfg.queue_cap.max(1);
        let shared = Arc::new(Shared {
            admission: Mutex::new(Admission {
                depth: 0,
                draining: false,
                stopped: false,
            }),
            stopped_cv: Condvar::new(),
            journal,
            injector: Mutex::new(FaultInjector::new(cfg.plan.clone())),
            idem: Mutex::new({
                // Refill the idempotency cache from replayed acks: a
                // duplicate key arriving after the restart must re-serve
                // the journaled bytes (possibly a journaled *lie*), not
                // re-execute under a fault plan that no longer exists.
                let mut idem = IdemCache::default();
                for (key, line) in &replay.acked_keys {
                    idem.insert(*key, line.clone());
                }
                idem
            }),
            sink,
            stats: Mutex::new(ServeStats {
                replayed_acks: replay.acked.len() as u64,
                ..ServeStats::default()
            }),
            obs: ServeObs::new(
                replay
                    .stats
                    .as_ref()
                    .map(LifetimeBase::from_snapshot)
                    .unwrap_or_default(),
            ),
            cfg: ServeConfig {
                workers,
                queue_cap,
                ..cfg
            },
        });
        // Queue capacity `queue_cap` bounds *admitted* items; every sender
        // below only ever sends items holding an admission slot (plus one
        // Stop pill per worker at the very end), so sends never deadlock.
        let (work_tx, work_rx) = channel::bounded::<Work>(queue_cap + workers);
        let (ctrl_tx, ctrl_rx) = channel::unbounded::<Ctrl>();
        let handles: Vec<JoinHandle<()>> = (0..workers)
            .map(|idx| spawn_worker(idx, Arc::clone(&shared), work_rx.clone(), ctrl_tx.clone()))
            .collect();
        let supervisor = {
            let shared = Arc::clone(&shared);
            let work_tx = work_tx.clone();
            let work_rx = work_rx.clone();
            let ctrl_tx = ctrl_tx.clone();
            std::thread::Builder::new()
                .name("mm-serve-supervisor".into())
                .spawn(move || supervise(shared, ctrl_rx, ctrl_tx, work_tx, work_rx, handles))
                .map_err(|e| format!("cannot spawn supervisor: {e}"))?
        };
        let (recovery_tx, recovery_rx) = channel::unbounded::<String>();
        let service = Service {
            shared,
            work_tx,
            ctrl_tx,
            supervisor: Some(supervisor),
            recovery_rx,
            recovered_acks: replay.acked.clone(),
        };
        // Crash recovery: requests that were admitted but never acked are
        // re-enqueued (journal already has their admission record). Their
        // responses flow to `recovery_responses`.
        for pending in replay.pending {
            service.requeue_recovered(pending, &recovery_tx)?;
        }
        Ok(service)
    }

    /// Responses journaled as acked before the last crash, in ack order.
    /// Replayed byte-identically without re-running anything.
    pub fn recovered_acks(&self) -> &[(u64, String)] {
        &self.recovered_acks
    }

    /// Receiver for responses of crash-recovered (re-run) requests.
    pub fn recovery_responses(&self) -> &Receiver<String> {
        &self.recovery_rx
    }

    /// Current counters.
    pub fn stats(&self) -> ServeStats {
        *self.shared.stats.lock().unwrap()
    }

    /// Whether the service is draining (shutdown requested).
    pub fn is_draining(&self) -> bool {
        self.shared.admission.lock().unwrap().draining
    }

    /// Whether the drain has completed (supervisor exited its loop).
    pub fn is_stopped(&self) -> bool {
        self.shared.admission.lock().unwrap().stopped
    }

    fn requeue_recovered(
        &self,
        pending: PendingRequest,
        recovery_tx: &Sender<String>,
    ) -> Result<(), String> {
        let req = Request::parse(&pending.line)
            .map_err(|e| format!("journaled request {} no longer parses: {e}", pending.id))?;
        let mut admission = self.shared.admission.lock().unwrap();
        admission.depth += 1;
        let depth = admission.depth;
        drop(admission);
        {
            let mut stats = self.shared.stats.lock().unwrap();
            stats.received += 1;
            stats.admitted += 1;
        }
        self.shared.emit(TraceEvent::RequestAdmitted {
            id: req.id,
            kind: kind_tag(&req.kind),
            depth,
        });
        self.shared.obs.on_admitted(kind_tag(&req.kind), depth);
        let item = WorkItem {
            req,
            attempts: 0,
            checkpoint: pending.checkpoint,
            reply: recovery_tx.clone(),
            admitted_at: Instant::now(),
            phases: Vec::new(),
        };
        self.work_tx
            .send(Work::Item(Box::new(item)))
            .map_err(|_| "service stopped during recovery".to_string())
    }

    /// Submits one raw request line. Every line gets exactly one response on
    /// `reply` (admitted work answers later, from a worker; sheds and parse
    /// errors answer immediately).
    pub fn submit_line(&self, line: &str, reply: &Sender<String>) {
        self.shared.stats.lock().unwrap().received += 1;
        let req = match Request::parse(line) {
            Ok(req) => req,
            Err(message) => {
                self.shared.stats.lock().unwrap().rejected += 1;
                let id = mm_json::parse(line)
                    .ok()
                    .and_then(|j| j.get("id").and_then(mm_json::Json::as_i64))
                    .filter(|&n| n >= 0)
                    .unwrap_or(0) as u64;
                let _ = reply.send(Response::Error { id, message }.to_line());
                return;
            }
        };
        // Stats is answered inline by the supervisor thread: no queue slot,
        // no journal record, readable even when the queue is full or the
        // server is draining.
        if let RequestKind::Stats {
            prometheus,
            counters_only,
        } = req.kind
        {
            self.shared.stats.lock().unwrap().stats_served += 1;
            let response = self
                .shared
                .stats_response(req.id, prometheus, counters_only);
            let _ = reply.send(response.to_line());
            return;
        }
        if matches!(req.kind, RequestKind::Shutdown) {
            self.begin_drain();
            let _ = reply.send(
                Response::Ok {
                    id: req.id,
                    fields: vec![("draining".into(), mm_json::Json::Bool(true))],
                }
                .to_line(),
            );
            return;
        }
        // Membership control verbs are answered inline, like stats: a join
        // handshake must be readable even under a full queue, and a drain
        // must not itself occupy a queue slot.
        match req.kind {
            RequestKind::Join => {
                let draining = self.shared.admission.lock().unwrap().draining;
                self.shared.stats.lock().unwrap().control_served += 1;
                let _ = reply.send(
                    Response::Ok {
                        id: req.id,
                        fields: vec![(
                            "ready".into(),
                            mm_json::Json::Int(if draining { 0 } else { 1 }),
                        )],
                    }
                    .to_line(),
                );
                return;
            }
            // Verdict notices are answered inline too: the coordinator's
            // proof-check outcome must be recordable even when the liar's
            // queue is full (the exact moment it is being quarantined).
            RequestKind::Verdict { refuted } => {
                let mut stats = self.shared.stats.lock().unwrap();
                if refuted {
                    stats.refuted_noted += 1;
                } else {
                    stats.verified_noted += 1;
                }
                drop(stats);
                let _ = reply.send(
                    Response::Ok {
                        id: req.id,
                        fields: vec![("noted".into(), mm_json::Json::Bool(true))],
                    }
                    .to_line(),
                );
                return;
            }
            RequestKind::Drain | RequestKind::Leave => {
                self.shared.stats.lock().unwrap().control_served += 1;
                self.begin_drain();
                let field = if matches!(req.kind, RequestKind::Drain) {
                    "draining"
                } else {
                    "leaving"
                };
                let _ = reply.send(
                    Response::Ok {
                        id: req.id,
                        fields: vec![(field.into(), mm_json::Json::Bool(true))],
                    }
                    .to_line(),
                );
                return;
            }
            _ => {}
        }
        let mut req = req;
        if req.deadline_ms.is_none() {
            req.deadline_ms = self.shared.cfg.default_deadline_ms;
        }
        // Hedged duplicates: a known idempotency key is answered with the
        // cached bytes of the first completion, skipping the queue entirely.
        if let Some(key) = req.idempotency_key {
            let cached = self.shared.idem.lock().unwrap().get(key).cloned();
            if let Some(line) = cached {
                let mut stats = self.shared.stats.lock().unwrap();
                stats.deduped += 1;
                if req.migration.is_some() {
                    stats.migrated_served += 1;
                }
                drop(stats);
                self.shared
                    .emit(TraceEvent::RequestDeduped { id: req.id, key });
                let _ = reply.send(line);
                return;
            }
        }
        // Admission decision and WAL append happen under the same lock so
        // the journal's admission order matches the queue's.
        let admission = self.shared.admission.lock().unwrap();
        if admission.draining || admission.depth >= self.shared.cfg.queue_cap {
            let depth = admission.depth;
            drop(admission);
            self.shared.stats.lock().unwrap().shed += 1;
            self.shared
                .emit(TraceEvent::RequestShed { id: req.id, depth });
            let _ = reply.send(
                Response::Overloaded {
                    id: req.id,
                    retry_after_ms: self.shared.cfg.retry.base_ms.max(1),
                }
                .to_line(),
            );
            return;
        }
        let mut admission = admission;
        admission.depth += 1;
        let depth = admission.depth;
        if let Err(e) = self.shared.journal_append(&Record::Admitted {
            id: req.id,
            line: line.to_string(),
        }) {
            // A journal that cannot take the admission record voids the
            // crash-safety contract; refuse the request rather than lie.
            admission.depth -= 1;
            drop(admission);
            self.shared.stats.lock().unwrap().rejected += 1;
            let _ = reply.send(
                Response::Error {
                    id: req.id,
                    message: format!("journal write failed: {e}"),
                }
                .to_line(),
            );
            return;
        }
        drop(admission);
        {
            let mut stats = self.shared.stats.lock().unwrap();
            stats.admitted += 1;
            if req.migration.is_some() {
                stats.migrated_served += 1;
            }
        }
        self.shared.emit(TraceEvent::RequestAdmitted {
            id: req.id,
            kind: kind_tag(&req.kind),
            depth,
        });
        self.shared.obs.on_admitted(kind_tag(&req.kind), depth);
        let item = WorkItem {
            req,
            attempts: 0,
            checkpoint: None,
            reply: reply.clone(),
            admitted_at: Instant::now(),
            phases: Vec::new(),
        };
        let _ = self.work_tx.send(Work::Item(Box::new(item)));
    }

    /// Begins a graceful drain: no new admissions; queued work completes or
    /// degrades at the drain deadline.
    pub fn shutdown(&self) {
        self.begin_drain();
    }

    fn begin_drain(&self) {
        let mut admission = self.shared.admission.lock().unwrap();
        if admission.draining {
            return;
        }
        admission.draining = true;
        drop(admission);
        let _ = self.ctrl_tx.send(Ctrl::Drain);
    }

    /// Drains (if not already draining) and blocks until every admitted
    /// request has its terminal response, then returns the final counters.
    pub fn join(mut self) -> ServeStats {
        self.begin_drain();
        if let Some(handle) = self.supervisor.take() {
            let _ = handle.join();
        }
        self.stats()
    }

    /// Blocks until the drain completes, without consuming the service.
    pub fn wait_stopped(&self) {
        let mut admission = self.shared.admission.lock().unwrap();
        while !admission.stopped {
            admission = self.shared.stopped_cv.wait(admission).unwrap();
        }
    }
}

fn kind_tag(kind: &RequestKind) -> &'static str {
    match kind {
        RequestKind::Solve { .. } => "solve",
        RequestKind::Probe { .. } => "probe",
        RequestKind::Schedule { .. } => "schedule",
        RequestKind::Online { .. } => "online",
        RequestKind::Adversary { .. } => "adversary",
        RequestKind::Shutdown => "shutdown",
        RequestKind::Stats { .. } => "stats",
        RequestKind::Join => "join",
        RequestKind::Drain => "drain",
        RequestKind::Leave => "leave",
        RequestKind::Verdict { .. } => "verdict",
    }
}

/// A worker-local trace sink that keeps span-phase events and forwards
/// nothing else: the worker collects its request's phase timings without
/// touching the shared sink (ids are corrected at finish time — the prober
/// reports id 0 because it does not know the request id).
struct PhaseSink(Vec<(&'static str, u64)>);

impl TraceSink for PhaseSink {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&mut self, event: &TraceEvent) {
        if let TraceEvent::SpanPhase { phase, micros, .. } = event {
            self.0.push((phase, *micros));
        }
    }
}

/// Folds `extra` into `phases`, summing durations of repeated phase names
/// (a solve runs many flow probes; the histogram wants one entry per span).
fn fold_phases(phases: &mut Vec<(&'static str, u64)>, extra: Vec<(&'static str, u64)>) {
    for (phase, micros) in extra {
        match phases.iter_mut().find(|(p, _)| *p == phase) {
            Some((_, total)) => *total += micros,
            None => phases.push((phase, micros)),
        }
    }
}

/// Workers are named so the process-global panic hook can tell an injected
/// (supervised) worker panic from a real bug elsewhere and keep soak logs
/// clean without hiding anything that matters.
const WORKER_THREAD_PREFIX: &str = "mm-serve-worker";

fn install_worker_panic_silencer() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let supervised = std::thread::current()
                .name()
                .is_some_and(|n| n.starts_with(WORKER_THREAD_PREFIX));
            if !supervised {
                default(info);
            }
        }));
    });
}

fn spawn_worker(
    idx: usize,
    shared: Arc<Shared>,
    work_rx: Receiver<Work>,
    ctrl_tx: Sender<Ctrl>,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("{WORKER_THREAD_PREFIX}-{idx}"))
        .spawn(move || worker_loop(idx, shared, work_rx, ctrl_tx))
        .expect("spawn worker thread")
}

fn worker_loop(idx: usize, shared: Arc<Shared>, work_rx: Receiver<Work>, ctrl_tx: Sender<Ctrl>) {
    while let Ok(work) = work_rx.recv() {
        let mut item = match work {
            Work::Item(item) => *item,
            Work::Stop => return,
        };
        // Time spent waiting in the queue (for retries: since the original
        // admission, so the span covers the whole supervised lifetime).
        let queued_us = item.admitted_at.elapsed().as_micros() as u64;
        let slow = shared
            .injector
            .lock()
            .unwrap()
            .fire(FaultSite::MachineSlowdown);
        if slow {
            std::thread::sleep(Duration::from_millis(shared.cfg.slowdown_ms));
        }
        let boom = shared.injector.lock().unwrap().fire(FaultSite::WorkerPanic);
        let checkpoint = item.checkpoint.clone();
        let req = item.req.clone();
        let result = catch_unwind(AssertUnwindSafe(|| {
            if boom {
                panic!("injected worker panic");
            }
            let mut progress = |id: u64, cp: &SweepCheckpoint| {
                let _ = ctrl_tx.send(Ctrl::Sweep {
                    id,
                    checkpoint: cp.clone(),
                });
            };
            let mut collector = PhaseSink(Vec::new());
            let exec_t0 = Instant::now();
            let response =
                exec::execute_traced(&req, checkpoint, false, &mut progress, &mut collector);
            let exec_us = exec_t0.elapsed().as_micros() as u64;
            (response, collector.0, exec_us)
        }));
        match result {
            Ok((response, collected, exec_us)) => {
                item.phases.clear();
                item.phases.push(("queued", queued_us));
                item.phases.push(("exec", exec_us));
                fold_phases(&mut item.phases, collected);
                let _ = ctrl_tx.send(Ctrl::Done { item, response });
            }
            Err(payload) => {
                let _ = ctrl_tx.send(Ctrl::Panicked {
                    worker: idx,
                    item,
                    message: panic_message(payload),
                });
                // The thread is considered poisoned; the supervisor spawns
                // a replacement.
                return;
            }
        }
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked".to_string()
    }
}

fn supervise(
    shared: Arc<Shared>,
    ctrl_rx: Receiver<Ctrl>,
    ctrl_tx: Sender<Ctrl>,
    work_tx: Sender<Work>,
    work_rx: Receiver<Work>,
    mut handles: Vec<JoinHandle<()>>,
) {
    let mut retries: BinaryHeap<PendingRetry> = BinaryHeap::new();
    let mut next_worker_idx = handles.len();
    let mut draining = false;
    let mut drain_deadline: Option<Instant> = None;
    loop {
        // Release due retries back into the queue.
        let now = Instant::now();
        while retries.peek().is_some_and(|r| r.due <= now) {
            let retry = retries.pop().unwrap();
            shared.emit(TraceEvent::RequestRetried {
                id: retry.item.req.id,
                attempt: retry.item.attempts,
            });
            shared.stats.lock().unwrap().retried += 1;
            let _ = work_tx.send(Work::Item(Box::new(retry.item)));
        }
        // Past the drain deadline, degrade whatever is still queued or
        // awaiting retry: certified brackets beat silence.
        if draining && drain_deadline.is_some_and(|d| Instant::now() >= d) {
            while let Ok(Work::Item(item)) = work_rx.try_recv() {
                degrade(&shared, *item);
            }
            for retry in retries.drain() {
                degrade(&shared, retry.item);
            }
        }
        if draining && retries.is_empty() && shared.admission.lock().unwrap().depth == 0 {
            break;
        }
        let timeout = retries
            .peek()
            .map(|r| r.due.saturating_duration_since(Instant::now()))
            .unwrap_or(Duration::from_millis(50))
            .min(Duration::from_millis(50));
        let msg = match ctrl_rx.recv_timeout(timeout) {
            Ok(msg) => msg,
            Err(channel::RecvTimeoutError::Timeout) => continue,
            Err(channel::RecvTimeoutError::Disconnected) => break,
        };
        match msg {
            Ctrl::Done { item, response } => {
                finish(&shared, &item, &response);
            }
            Ctrl::Sweep { id, checkpoint } => {
                let _ = shared.journal_append(&Record::Sweep { id, checkpoint });
            }
            Ctrl::Panicked {
                worker,
                item,
                message,
            } => {
                shared.stats.lock().unwrap().panics += 1;
                shared.emit(TraceEvent::WorkerPanicked {
                    worker,
                    request: item.req.id,
                });
                // Recycle the pool before deciding the request's fate so
                // capacity never decays under repeated injections.
                let idx = next_worker_idx;
                next_worker_idx += 1;
                handles.push(spawn_worker(
                    idx,
                    Arc::clone(&shared),
                    work_rx.clone(),
                    ctrl_tx.clone(),
                ));
                shared.stats.lock().unwrap().restarts += 1;
                shared.emit(TraceEvent::WorkerRestarted { worker: idx });
                let mut item = item;
                item.attempts += 1;
                let retry = &shared.cfg.retry;
                if retry.should_retry(item.attempts) {
                    let delay = retry.backoff(shared.cfg.seed, item.req.id, item.attempts);
                    retries.push(PendingRetry {
                        due: Instant::now() + delay,
                        item,
                    });
                } else {
                    let response = Response::Quarantined {
                        id: item.req.id,
                        attempts: item.attempts,
                    };
                    let _ = message; // the panic text stays in the trace/journal domain
                    shared.stats.lock().unwrap().quarantined += 1;
                    finish(&shared, &item, &response);
                }
            }
            Ctrl::Drain => {
                draining = true;
                let pending = shared.admission.lock().unwrap().depth;
                drain_deadline = Some(Instant::now() + Duration::from_millis(shared.cfg.drain_ms));
                shared.emit(TraceEvent::DrainStarted { pending });
            }
        }
    }
    // Stop pills: one per live worker, then join the pool.
    for _ in 0..shared.cfg.workers {
        let _ = work_tx.send(Work::Stop);
    }
    drop(work_tx);
    for handle in handles {
        let _ = handle.join();
    }
    // Graceful drain complete: journal the lifetime snapshot so a restarted
    // server reports honest cumulative counters instead of starting at zero.
    {
        let stats = *shared.stats.lock().unwrap();
        let base = shared.obs.base();
        let snapshot = Json::obj([
            (
                "lifetime_uptime_ms",
                Json::Int((base.uptime_ms + shared.obs.uptime_ms()) as i64),
            ),
            ("lifecycles", Json::Int((base.lifecycles + 1) as i64)),
            (
                "lifetime_responses",
                Json::Int((base.responses + stats.responses) as i64),
            ),
            (
                "lifetime_restarts",
                Json::Int((base.restarts + stats.restarts) as i64),
            ),
        ]);
        let _ = shared.journal_append(&Record::Stats { snapshot });
    }
    let mut admission = shared.admission.lock().unwrap();
    admission.stopped = true;
    drop(admission);
    shared.stopped_cv.notify_all();
}

/// Journals, releases, and accounts one terminal response — including its
/// observability span: the `reply` phase (journal ack + release) is timed
/// here, then the whole span lands in the registry, the windowed rings, the
/// slow-span exemplars, and (when a sink is attached) the trace stream.
fn finish(shared: &Shared, item: &WorkItem, response: &Response) {
    let reply_t0 = Instant::now();
    // Byzantine injection happens here, BEFORE the line is journaled and
    // cached: a corrupted answer must replay byte-identically after a
    // restart and re-serve the same lie from the idempotency cache, exactly
    // like an honest one. Only eligible answers (Ok solve/probe verdicts)
    // charge the fault plan, so a `once` plan lies exactly once.
    let lie = if corruptible(response)
        && shared
            .injector
            .lock()
            .unwrap()
            .fire(FaultSite::AnswerCorruption)
    {
        Some(corrupt_answer(response))
    } else {
        None
    };
    let response = lie.as_ref().unwrap_or(response);
    let line = response.to_line();
    let _ = shared.journal_append(&Record::Acked {
        id: item.req.id,
        line: line.clone(),
    });
    if let Some(key) = item.req.idempotency_key {
        shared.idem.lock().unwrap().insert(key, line.clone());
    }
    let _ = item.reply.send(line);
    shared.admission.lock().unwrap().depth -= 1;
    {
        let mut stats = shared.stats.lock().unwrap();
        stats.responses += 1;
        if lie.is_some() {
            stats.corrupted += 1;
        }
        if let Response::Ok { fields, .. } = response {
            if fields.iter().any(|(k, _)| k == "proof") {
                stats.proofs_attached += 1;
            }
        }
    }
    let total_us = item.admitted_at.elapsed().as_micros() as u64;
    let mut phases = item.phases.clone();
    fold_phases(
        &mut phases,
        vec![("reply", reply_t0.elapsed().as_micros() as u64)],
    );
    shared.obs.on_finished(
        kind_tag(&item.req.kind),
        terminal_status(response),
        item.req.id,
        total_us,
        &phases,
    );
    // Per-member online counters: the executor echoes the member it actually
    // ran (resolving `auto`), so count from the response, not the request.
    if matches!(item.req.kind, RequestKind::Online { .. }) {
        if let Response::Ok { fields, .. } = response {
            if let Some(member) = fields
                .iter()
                .find(|(k, _)| k == "member")
                .and_then(|(_, v)| v.as_str())
            {
                shared
                    .obs
                    .registry
                    .add(crate::obs::member_counter(member), 1);
            }
        }
    }
    let mut sink = shared.sink.clone();
    if sink.enabled() {
        for event in ServeObs::span_events(item.req.id, total_us, &phases) {
            sink.record(&event);
        }
    }
    shared.emit(TraceEvent::RequestCompleted {
        id: item.req.id,
        status: terminal_status(response),
    });
}

/// Whether an answer is eligible for [`FaultSite::AnswerCorruption`]: only
/// successful solve (`machines`) and probe (`feasible`) verdicts — the
/// answers a coordinator can proof-check. Degraded brackets, errors, and
/// control replies never charge the plan.
fn corruptible(response: &Response) -> bool {
    match response {
        Response::Ok { fields, .. } => fields
            .iter()
            .any(|(k, _)| k == "machines" || k == "feasible"),
        _ => false,
    }
}

/// Builds the Byzantine lie: a plausible off-by-one perturbation, not
/// garbage. A solve verdict is bumped by one machine — with the attached
/// proof's machine fields bumped to match, so only re-checking the witness
/// arithmetic exposes it. A probe verdict is flipped, leaving the proof
/// untouched (the kind mismatch is the coordinator's to find).
fn corrupt_answer(response: &Response) -> Response {
    let Response::Ok { id, fields } = response else {
        unreachable!("corrupt_answer called on ineligible response");
    };
    let mut fields = fields.clone();
    for (key, value) in &mut fields {
        match (key.as_str(), &mut *value) {
            ("machines", Json::Int(m)) => *m += 1,
            ("feasible", Json::Bool(b)) => *b = !*b,
            ("proof", proof) => bump_proof_machines(proof),
            _ => {}
        }
    }
    Response::Ok { id: *id, fields }
}

/// Bumps the `machines` claims inside an encoded proof (top level and the
/// nested infeasibility cert) so a solve lie stays internally consistent.
/// The cert's interval witness and volume are left alone — they are what
/// refute the bumped claim.
fn bump_proof_machines(proof: &mut Json) {
    let Json::Obj(members) = proof else { return };
    for (key, value) in members.iter_mut() {
        match (key.as_str(), &mut *value) {
            ("machines", Json::Int(m)) => *m += 1,
            ("cert", Json::Obj(cert_members)) => {
                for (ck, cv) in cert_members.iter_mut() {
                    if ck == "machines" {
                        if let Json::Int(m) = cv {
                            *m += 1;
                        }
                    }
                }
            }
            _ => {}
        }
    }
}

fn terminal_status(response: &Response) -> &'static str {
    match response {
        Response::Ok { .. } => "ok",
        Response::Degraded { .. } => "degraded",
        Response::Overloaded { .. } => "overloaded",
        Response::Error { .. } => "error",
        Response::Quarantined { .. } => "quarantined",
    }
}

/// Drain-deadline degradation: answer with whatever can be certified under
/// a starved budget (brackets for solve/probe, an explicit `degraded` for
/// the rest).
fn degrade(shared: &Shared, item: WorkItem) {
    let response = exec::execute(
        &item.req,
        item.checkpoint.clone(),
        true,
        &mut exec::NoProgress,
    );
    shared.stats.lock().unwrap().drain_degraded += 1;
    finish(shared, &item, &response);
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_trace::NoopSink;

    fn sink() -> DynSink {
        DynSink::new(Box::new(NoopSink))
    }

    fn solve_line(id: u64) -> String {
        Request::new(
            id,
            RequestKind::Solve {
                jobs: vec![(0, 4, 2), (1, 5, 3)],
            },
        )
        .to_line()
    }

    #[test]
    fn requests_complete_and_stats_balance() {
        let service = Service::start(ServeConfig::default(), sink()).unwrap();
        let (tx, rx) = channel::unbounded();
        for id in 0..8 {
            service.submit_line(&solve_line(id), &tx);
        }
        let mut got = Vec::new();
        for _ in 0..8 {
            got.push(rx.recv_timeout(Duration::from_secs(30)).unwrap());
        }
        let stats = service.join();
        assert_eq!(stats.admitted, 8);
        assert_eq!(stats.responses, 8);
        assert!(stats.invariant_holds(), "{stats:?}");
        got.sort();
        got.dedup();
        assert_eq!(got.len(), 8, "distinct response per request");
    }

    #[test]
    fn duplicate_idempotency_key_is_answered_from_cache() {
        let service = Service::start(ServeConfig::default(), sink()).unwrap();
        let (tx, rx) = channel::unbounded();
        let line = Request {
            idempotency_key: Some(77),
            ..Request::new(
                3,
                RequestKind::Solve {
                    jobs: vec![(0, 4, 2), (1, 5, 3)],
                },
            )
        }
        .to_line();
        service.submit_line(&line, &tx);
        let first = rx.recv_timeout(Duration::from_secs(30)).unwrap();
        // The hedged duplicate: same id and key, a hedge marker.
        let dup = Request {
            idempotency_key: Some(77),
            hedge: Some(1),
            ..Request::parse(&line).unwrap()
        }
        .to_line();
        service.submit_line(&dup, &tx);
        let second = rx.recv_timeout(Duration::from_secs(30)).unwrap();
        assert_eq!(first, second, "cache must replay the exact bytes");
        let stats = service.join();
        assert_eq!(stats.admitted, 1, "duplicate must not re-execute");
        assert_eq!(stats.deduped, 1);
        assert!(stats.invariant_holds());
    }

    #[test]
    fn injected_worker_panic_retries_and_succeeds() {
        let cfg = ServeConfig {
            plan: FaultPlan::once(FaultSite::WorkerPanic, 1),
            retry: RetryPolicy::new(1, 5, 3),
            ..ServeConfig::default()
        };
        let service = Service::start(cfg, sink()).unwrap();
        let (tx, rx) = channel::unbounded();
        service.submit_line(&solve_line(1), &tx);
        let line = rx.recv_timeout(Duration::from_secs(30)).unwrap();
        assert!(line.contains("\"status\":\"ok\""), "{line}");
        let stats = service.join();
        assert_eq!(stats.panics, 1);
        assert_eq!(stats.restarts, 1);
        assert_eq!(stats.retried, 1);
        assert!(stats.invariant_holds());
    }

    #[test]
    fn always_panicking_request_is_quarantined() {
        // Fire on every hit: the request can never complete.
        let plan = FaultPlan {
            seed: 0,
            rules: vec![mm_fault::FaultRule {
                site: FaultSite::WorkerPanic,
                nth: 1,
                every: Some(1),
            }],
        };
        let cfg = ServeConfig {
            plan,
            retry: RetryPolicy::new(1, 2, 2),
            workers: 1,
            ..ServeConfig::default()
        };
        let service = Service::start(cfg, sink()).unwrap();
        let (tx, rx) = channel::unbounded();
        service.submit_line(&solve_line(9), &tx);
        let line = rx.recv_timeout(Duration::from_secs(30)).unwrap();
        assert!(line.contains("\"status\":\"quarantined\""), "{line}");
        let stats = service.join();
        assert_eq!(stats.quarantined, 1);
        assert!(stats.invariant_holds());
    }

    #[test]
    fn full_queue_sheds_with_retry_hint() {
        // One slow worker, capacity 2: a burst must shed the overflow.
        let plan = FaultPlan {
            seed: 0,
            rules: vec![mm_fault::FaultRule {
                site: FaultSite::MachineSlowdown,
                nth: 1,
                every: Some(1),
            }],
        };
        let cfg = ServeConfig {
            workers: 1,
            queue_cap: 2,
            slowdown_ms: 30,
            plan,
            ..ServeConfig::default()
        };
        let service = Service::start(cfg, sink()).unwrap();
        let (tx, rx) = channel::unbounded();
        for id in 0..6 {
            service.submit_line(&solve_line(id), &tx);
        }
        let mut lines = Vec::new();
        for _ in 0..6 {
            lines.push(rx.recv_timeout(Duration::from_secs(30)).unwrap());
        }
        let shed: Vec<_> = lines
            .iter()
            .filter(|l| l.contains("\"status\":\"overloaded\""))
            .collect();
        assert!(
            !shed.is_empty(),
            "burst of 6 into cap 2 must shed: {lines:?}"
        );
        assert!(shed.iter().all(|l| l.contains("retry_after_ms")));
        let stats = service.join();
        assert_eq!(stats.admitted + stats.shed, 6);
        assert!(stats.invariant_holds());
    }

    #[test]
    fn drain_deadline_degrades_queued_work_instead_of_dropping_it() {
        let plan = FaultPlan {
            seed: 0,
            rules: vec![mm_fault::FaultRule {
                site: FaultSite::MachineSlowdown,
                nth: 1,
                every: Some(1),
            }],
        };
        let cfg = ServeConfig {
            workers: 1,
            queue_cap: 8,
            slowdown_ms: 40,
            drain_ms: 1,
            plan,
            ..ServeConfig::default()
        };
        let service = Service::start(cfg, sink()).unwrap();
        let (tx, rx) = channel::unbounded();
        for id in 0..6 {
            service.submit_line(&solve_line(id), &tx);
        }
        service.shutdown();
        let mut lines = Vec::new();
        for _ in 0..6 {
            lines.push(rx.recv_timeout(Duration::from_secs(30)).unwrap());
        }
        let stats = service.join();
        assert_eq!(stats.responses, 6, "{lines:?}");
        assert!(stats.invariant_holds());
        // Everything answered: ok (ran before the deadline) or a certified
        // degraded bracket (caught by the drain) — never silence.
        for line in &lines {
            assert!(
                line.contains("\"status\":\"ok\"") || line.contains("\"status\":\"degraded\""),
                "{line}"
            );
        }
    }

    #[test]
    fn journal_replays_acked_responses_byte_identically() {
        let dir = std::env::temp_dir().join(format!(
            "machmin-serve-replay-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("journal.jsonl");
        std::fs::remove_file(&path).ok();
        let cfg = ServeConfig {
            journal: Some(path.clone()),
            ..ServeConfig::default()
        };
        let service = Service::start(cfg.clone(), sink()).unwrap();
        let (tx, rx) = channel::unbounded();
        for id in 0..4 {
            service.submit_line(&solve_line(id), &tx);
        }
        let mut sent: Vec<String> = (0..4)
            .map(|_| rx.recv_timeout(Duration::from_secs(30)).unwrap())
            .collect();
        service.join();
        // "Crash" (the process state is gone) and restart on the journal.
        let restarted = Service::start(cfg, sink()).unwrap();
        let mut replayed: Vec<String> = restarted
            .recovered_acks()
            .iter()
            .map(|(_, line)| line.clone())
            .collect();
        restarted.join();
        sent.sort();
        replayed.sort();
        assert_eq!(
            sent, replayed,
            "acked responses must replay byte-identically"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unacked_journal_entries_rerun_on_restart() {
        let dir = std::env::temp_dir().join(format!(
            "machmin-serve-rerun-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("journal.jsonl");
        std::fs::remove_file(&path).ok();
        // Hand-craft a journal: request 5 admitted, never acked.
        {
            let mut j = Journal::open(&path).unwrap();
            j.append(&Record::Admitted {
                id: 5,
                line: solve_line(5),
            })
            .unwrap();
        }
        let cfg = ServeConfig {
            journal: Some(path.clone()),
            ..ServeConfig::default()
        };
        let service = Service::start(cfg, sink()).unwrap();
        let line = service
            .recovery_responses()
            .recv_timeout(Duration::from_secs(30))
            .unwrap();
        assert!(line.contains("\"id\":5"), "{line}");
        assert!(line.contains("\"status\":\"ok\""), "{line}");
        let stats = service.join();
        assert_eq!(stats.admitted, 1);
        assert!(stats.invariant_holds());
        // The rerun's ack is now journaled: a second restart replays it
        // instead of running a third time.
        let again = Service::start(
            ServeConfig {
                journal: Some(path.clone()),
                ..ServeConfig::default()
            },
            sink(),
        )
        .unwrap();
        assert_eq!(again.recovered_acks().len(), 1);
        assert_eq!(again.recovered_acks()[0].1, line);
        again.join();
        std::fs::remove_dir_all(&dir).ok();
    }

    fn stats_line(id: u64, prometheus: bool) -> String {
        Request::new(
            id,
            RequestKind::Stats {
                prometheus,
                counters_only: false,
            },
        )
        .to_line()
    }

    #[test]
    fn stats_requests_are_answered_inline_with_latency_histograms() {
        let service = Service::start(ServeConfig::default(), sink()).unwrap();
        let (tx, rx) = channel::unbounded();
        for id in 0..4 {
            service.submit_line(&solve_line(id), &tx);
        }
        for _ in 0..4 {
            rx.recv_timeout(Duration::from_secs(30)).unwrap();
        }
        // Span accounting lands just after each reply is released, so poll
        // until the histogram has absorbed all four requests.
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            service.submit_line(&stats_line(99, false), &tx);
            let reply = rx.recv_timeout(Duration::from_secs(30)).unwrap();
            let json = mm_json::parse(&reply).unwrap();
            let count = json
                .get("registry")
                .and_then(|r| r.get("histograms"))
                .and_then(|h| h.get("latency_us.solve"))
                .and_then(|h| h.get("count"))
                .and_then(Json::as_i64)
                .unwrap_or(0);
            if count == 4 {
                assert_eq!(
                    json.get("counters")
                        .unwrap()
                        .get("responses")
                        .unwrap()
                        .as_i64(),
                    Some(4)
                );
                assert_eq!(json.get("lifecycles").unwrap().as_i64(), Some(1));
                assert!(json.get("window").is_some() && json.get("slowest").is_some());
                break;
            }
            assert!(
                Instant::now() < deadline,
                "histogram stuck below 4: {reply}"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        // Prometheus exposition rides the same inline path.
        service.submit_line(&stats_line(100, true), &tx);
        let prom = rx.recv_timeout(Duration::from_secs(30)).unwrap();
        let json = mm_json::parse(&prom).unwrap();
        let text = json
            .get("prometheus")
            .unwrap()
            .as_str()
            .unwrap()
            .to_string();
        assert!(text.contains("# TYPE latency_us_solve histogram"), "{text}");
        let stats = service.join();
        assert_eq!(stats.admitted, 4, "stats requests never take a queue slot");
        assert!(stats.stats_served >= 2);
        assert!(stats.invariant_holds());
    }

    #[test]
    fn lifetime_counters_survive_a_graceful_restart() {
        let dir = std::env::temp_dir().join(format!(
            "machmin-serve-lifetime-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("journal.jsonl");
        std::fs::remove_file(&path).ok();
        let cfg = ServeConfig {
            journal: Some(path.clone()),
            ..ServeConfig::default()
        };
        let service = Service::start(cfg.clone(), sink()).unwrap();
        let (tx, rx) = channel::unbounded();
        for id in 0..3 {
            service.submit_line(&solve_line(id), &tx);
        }
        for _ in 0..3 {
            rx.recv_timeout(Duration::from_secs(30)).unwrap();
        }
        service.join(); // drain writes the stats snapshot record
        let restarted = Service::start(cfg, sink()).unwrap();
        restarted.submit_line(&stats_line(50, false), &tx);
        let reply = rx.recv_timeout(Duration::from_secs(30)).unwrap();
        let json = mm_json::parse(&reply).unwrap();
        assert_eq!(json.get("lifecycles").unwrap().as_i64(), Some(2));
        assert_eq!(json.get("lifetime_responses").unwrap().as_i64(), Some(3));
        assert!(
            json.get("lifetime_uptime_ms").unwrap().as_i64().unwrap()
                >= json.get("uptime_ms").unwrap().as_i64().unwrap()
        );
        restarted.join();
        std::fs::remove_dir_all(&dir).ok();
    }
}
