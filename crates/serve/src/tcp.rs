//! JSONL-over-TCP front end.
//!
//! One request per line in, one response per line out, per connection.
//! Each connection gets a reader thread (parsing + admission) and a writer
//! thread (draining the connection's reply channel); the worker pool is
//! shared across connections, so backpressure is global, not per-socket.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel;

use crate::supervisor::Service;

/// Binds `addr` (use port 0 for an ephemeral port) and returns the listener
/// plus the address actually bound.
pub fn bind(addr: &str) -> std::io::Result<(TcpListener, String)> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?.to_string();
    Ok((listener, local))
}

/// Accept loop. Returns once the service has fully drained (a client sent a
/// `shutdown` request, or [`Service::shutdown`] was called) and every
/// admitted request has been answered.
pub fn serve(listener: TcpListener, service: Arc<Service>) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let service = Arc::clone(&service);
                std::thread::spawn(move || handle_connection(stream, service));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if service.is_stopped() {
                    return Ok(());
                }
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => return Err(e),
        }
    }
}

fn handle_connection(stream: TcpStream, service: Arc<Service>) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let (reply_tx, reply_rx) = channel::unbounded::<String>();
    let writer = std::thread::spawn(move || {
        let mut out = BufWriter::new(write_half);
        while let Ok(line) = reply_rx.recv() {
            if out.write_all(line.as_bytes()).is_err() || out.write_all(b"\n").is_err() {
                return;
            }
            let _ = out.flush();
        }
    });
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        service.submit_line(&line, &reply_tx);
    }
    // EOF: drop our sender. The writer exits once every in-flight response
    // for this connection has been delivered (workers hold clones).
    drop(reply_tx);
    let _ = writer.join();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{Request, RequestKind};
    use crate::supervisor::{DynSink, ServeConfig};
    use mm_trace::NoopSink;

    #[test]
    fn end_to_end_over_tcp_with_shutdown() {
        let service = Arc::new(
            Service::start(ServeConfig::default(), DynSink::new(Box::new(NoopSink))).unwrap(),
        );
        let (listener, addr) = bind("127.0.0.1:0").unwrap();
        let acceptor = {
            let service = Arc::clone(&service);
            std::thread::spawn(move || serve(listener, service))
        };
        let stream = TcpStream::connect(&addr).unwrap();
        let mut writer = BufWriter::new(stream.try_clone().unwrap());
        let mut reader = BufReader::new(stream);
        let mut send = |req: &Request| {
            writer.write_all(req.to_line().as_bytes()).unwrap();
            writer.write_all(b"\n").unwrap();
            writer.flush().unwrap();
        };
        for id in 0..3 {
            send(&Request::new(
                id,
                RequestKind::Solve {
                    jobs: vec![(0, 2, 2), (0, 2, 2)],
                },
            ));
        }
        let mut lines = Vec::new();
        for _ in 0..3 {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            lines.push(line.trim().to_string());
        }
        for line in &lines {
            assert!(line.contains("\"machines\":2"), "{line}");
        }
        send(&Request::new(99, RequestKind::Shutdown));
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"draining\":true"), "{line}");
        acceptor.join().unwrap().unwrap();
        service.wait_stopped();
        let stats = service.stats();
        assert_eq!(stats.admitted, 3);
        assert!(stats.invariant_holds());
    }
}
