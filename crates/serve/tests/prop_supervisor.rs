//! Property tests for the service layer's three load-bearing guarantees:
//!
//! (a) a worker panic never loses *other* queued requests — the supervisor
//!     recycles the worker and everything still gets answered;
//! (b) journal replay after a simulated crash (including torn-tail
//!     truncation) yields byte-identical responses for acked requests;
//! (c) every admitted request gets **exactly one** terminal response, under
//!     arbitrary fault plans and queue pressure.

use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel;
use mm_fault::{FaultPlan, FaultRule, FaultSite, RetryPolicy};
use mm_serve::{DynSink, Replay, Request, RequestKind, Response, ServeConfig, Service};
use mm_trace::NoopSink;
use proptest::prelude::*;

fn sink() -> DynSink {
    DynSink::new(Box::new(NoopSink))
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A small deterministic request (cheap solves/probes keyed by the seed).
fn request(id: u64, seed: u64) -> Request {
    let mut state = seed ^ id.rotate_left(13);
    let n = 2 + (splitmix(&mut state) % 5) as usize;
    let jobs: Vec<(i64, i64, i64)> = (0..n)
        .map(|_| {
            let r = (splitmix(&mut state) % 10) as i64;
            let w = 2 + (splitmix(&mut state) % 6) as i64;
            let p = 1 + (splitmix(&mut state) % w as u64) as i64;
            (r, r + w, p)
        })
        .collect();
    let kind = if id % 3 == 2 {
        RequestKind::Probe {
            jobs,
            machines: 1 + id % 3,
        }
    } else {
        RequestKind::Solve { jobs }
    };
    Request::new(id, kind)
}

fn run_batch(cfg: ServeConfig, ids: &[u64], seed: u64) -> (Vec<String>, mm_serve::ServeStats) {
    let service = Service::start(cfg, sink()).unwrap();
    let (tx, rx) = channel::unbounded();
    for &id in ids {
        service.submit_line(&request(id, seed).to_line(), &tx);
    }
    let mut lines = Vec::new();
    for _ in 0..ids.len() {
        lines.push(
            rx.recv_timeout(Duration::from_secs(60))
                .expect("every submitted request must get a response"),
        );
    }
    let stats = service.join();
    (lines, stats)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// (a) One poisoned request (panicking on every attempt) is quarantined;
    /// every *other* request still completes successfully, none lost.
    #[test]
    fn worker_panic_never_loses_other_requests(
        seed in any::<u64>(),
        n in 3u64..12,
        poison_hit in 1u64..3,
        workers in 1usize..4,
    ) {
        let plan = FaultPlan {
            seed,
            // Fire on one hit and then every attempt soon after: whichever
            // request draws the poisoned hits keeps panicking.
            rules: vec![FaultRule { site: FaultSite::WorkerPanic, nth: poison_hit, every: Some(1) }],
        };
        let cfg = ServeConfig {
            workers,
            queue_cap: n as usize,
            retry: RetryPolicy::new(1, 2, 2),
            plan,
            ..ServeConfig::default()
        };
        let ids: Vec<u64> = (0..n).collect();
        let (lines, stats) = run_batch(cfg, &ids, seed);
        prop_assert_eq!(lines.len(), n as usize);
        prop_assert!(stats.invariant_holds(), "{:?}", stats);
        // Exactly one response per id, and panics never became silence.
        let mut seen: Vec<u64> = lines
            .iter()
            .map(|l| Response::parse(l).unwrap().id())
            .collect();
        seen.sort();
        prop_assert_eq!(seen, ids);
        prop_assert!(stats.panics >= 1, "plan must fire at least once");
        prop_assert_eq!(stats.restarts, stats.panics);
    }

    /// (b) Crash-replay determinism: after a run with a journal, any
    /// truncation of that journal replays a prefix of the acked responses
    /// byte-identically (torn tails tolerated, interior corruption refused).
    #[test]
    fn journal_replay_is_byte_identical_after_simulated_crash(
        seed in any::<u64>(),
        n in 2u64..8,
    ) {
        let dir = std::env::temp_dir().join(format!(
            "machmin-prop-replay-{}-{}",
            std::process::id(),
            seed
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("journal.jsonl");
        std::fs::remove_file(&path).ok();
        let cfg = ServeConfig {
            journal: Some(path.clone()),
            ..ServeConfig::default()
        };
        let ids: Vec<u64> = (0..n).collect();
        let (mut lines, stats) = run_batch(cfg, &ids, seed);
        prop_assert!(stats.invariant_holds());
        lines.sort();
        let journal = std::fs::read(&path).unwrap();
        // Simulated crash: truncate the journal at a spread of byte offsets.
        for cut in (0..=journal.len()).step_by(journal.len().max(8) / 8) {
            let text = String::from_utf8_lossy(&journal[..cut]).into_owned();
            match Replay::from_text(&text) {
                Ok(replay) => {
                    for (_, acked_line) in &replay.acked {
                        prop_assert!(
                            lines.binary_search(acked_line).is_ok(),
                            "replayed ack not byte-identical to a sent response: {}",
                            acked_line
                        );
                    }
                }
                Err(e) => prop_assert!(e.contains("line "), "unlocated error: {}", e),
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// (c) Exactly one terminal response per admitted request under
    /// arbitrary fault plans and tight queues; sheds answer `overloaded`
    /// and everything received is accounted for.
    #[test]
    fn every_admitted_request_gets_exactly_one_terminal_response(
        seed in any::<u64>(),
        n in 4u64..16,
        queue_cap in 1usize..6,
        workers in 1usize..3,
        panic_nth in 1u64..8,
        slow_nth in 1u64..8,
    ) {
        let plan = FaultPlan {
            seed,
            rules: vec![
                FaultRule { site: FaultSite::WorkerPanic, nth: panic_nth, every: Some(7) },
                FaultRule { site: FaultSite::MachineSlowdown, nth: slow_nth, every: Some(3) },
            ],
        };
        let cfg = ServeConfig {
            workers,
            queue_cap,
            slowdown_ms: 2,
            retry: RetryPolicy::new(1, 3, 4),
            plan,
            ..ServeConfig::default()
        };
        let service = Service::start(cfg, sink()).unwrap();
        let (tx, rx) = channel::unbounded();
        for id in 0..n {
            service.submit_line(&request(id, seed).to_line(), &tx);
        }
        let mut by_id = std::collections::HashMap::new();
        for _ in 0..n {
            let line = rx
                .recv_timeout(Duration::from_secs(60))
                .expect("every request answered");
            let resp = Response::parse(&line).unwrap();
            *by_id.entry(resp.id()).or_insert(0usize) += 1;
        }
        // No extra (duplicate) responses may trickle in afterwards.
        let extra = rx.recv_timeout(Duration::from_millis(50));
        let stats = service.join();
        prop_assert!(extra.is_err(), "duplicate terminal response: {:?}", extra);
        prop_assert_eq!(by_id.len(), n as usize);
        prop_assert!(by_id.values().all(|&c| c == 1));
        prop_assert_eq!(stats.received, n);
        prop_assert_eq!(stats.admitted + stats.shed + stats.rejected, n);
        prop_assert!(stats.invariant_holds(), "{:?}", stats);
    }
}

/// Deterministic (non-proptest) end-to-end crash test: run half the batch,
/// kill the service mid-journal, restart on the same journal, and check the
/// union of acked-replays and re-runs covers everything exactly once.
#[test]
fn restart_resumes_pending_requests_without_duplicating_acks() {
    let dir = std::env::temp_dir().join(format!("machmin-prop-restart-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("journal.jsonl");
    std::fs::remove_file(&path).ok();
    let seed = 42u64;
    // Phase 1: complete requests 0..3 normally.
    let cfg = ServeConfig {
        journal: Some(path.clone()),
        ..ServeConfig::default()
    };
    let (lines, _) = {
        let service = Service::start(cfg.clone(), sink()).unwrap();
        let (tx, rx) = channel::unbounded();
        for id in 0..3u64 {
            service.submit_line(&request(id, seed).to_line(), &tx);
        }
        let lines: Vec<String> = (0..3)
            .map(|_| rx.recv_timeout(Duration::from_secs(60)).unwrap())
            .collect();
        (lines, service.join())
    };
    // Simulated crash mid-flight: append an admission record for request 7
    // that never got a response (as if the process died right after fsync).
    {
        let mut journal = mm_serve::Journal::open(&path).unwrap();
        journal
            .append(&mm_serve::Record::Admitted {
                id: 7,
                line: request(7, seed).to_line(),
            })
            .unwrap();
    }
    // Phase 2: restart. Acked responses replay byte-identically; request 7
    // re-runs to a fresh terminal response.
    let service = Service::start(cfg, sink()).unwrap();
    let replayed: Vec<String> = service
        .recovered_acks()
        .iter()
        .map(|(_, l)| l.clone())
        .collect();
    let rerun = service
        .recovery_responses()
        .recv_timeout(Duration::from_secs(60))
        .unwrap();
    let stats = service.join();
    let mut sent_sorted = lines.clone();
    sent_sorted.sort();
    let mut replayed_sorted = replayed.clone();
    replayed_sorted.sort();
    assert_eq!(sent_sorted, replayed_sorted);
    assert!(rerun.contains("\"id\":7"), "{rerun}");
    assert!(stats.invariant_holds(), "{stats:?}");
    std::fs::remove_dir_all(&dir).ok();
}

/// Satellite invariant for the observability layer: the `counters_only`
/// stats form is a pure function of the seeded workload. Two identical
/// chaos runs — same seed, same fault plan, one worker so fault-site hits
/// land in submission order — must answer the final stats scrape with
/// byte-identical lines. `counters_only` strips every wall-clock field and
/// zeroes the scrape-cadence counter, so polling until the registry catches
/// up cannot perturb the compared reply.
#[test]
fn stats_are_byte_identical_across_seeded_chaos_reruns() {
    fn chaos_run(seed: u64, n: u64) -> String {
        let plan = FaultPlan {
            seed,
            rules: vec![
                FaultRule {
                    site: FaultSite::WorkerPanic,
                    nth: 2,
                    every: Some(5),
                },
                FaultRule {
                    site: FaultSite::MachineSlowdown,
                    nth: 1,
                    every: Some(3),
                },
            ],
        };
        let cfg = ServeConfig {
            workers: 1,
            queue_cap: n as usize,
            slowdown_ms: 1,
            retry: RetryPolicy::new(1, 2, 3),
            plan,
            ..ServeConfig::default()
        };
        let service = Service::start(cfg, sink()).unwrap();
        let (tx, rx) = channel::unbounded();
        for id in 0..n {
            service.submit_line(&request(id, seed).to_line(), &tx);
        }
        for _ in 0..n {
            rx.recv_timeout(Duration::from_secs(60))
                .expect("every request answered");
        }
        // Per-kind response counters are flushed by the supervisor after the
        // reply is sent, so poll until the scrape accounts for all `n`
        // responses before freezing the line to compare.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            let stats_req = Request::new(
                1_000_000,
                RequestKind::Stats {
                    prometheus: false,
                    counters_only: true,
                },
            );
            service.submit_line(&stats_req.to_line(), &tx);
            let line = rx.recv_timeout(Duration::from_secs(10)).unwrap();
            let json = mm_json::parse(&line).unwrap();
            let accounted: i64 = json
                .get("registry")
                .and_then(|r| r.get("counters"))
                .and_then(|c| c.as_obj())
                .map(|members| {
                    members
                        .iter()
                        .filter(|(k, _)| k.starts_with("responses."))
                        .filter_map(|(_, v)| v.as_i64())
                        .sum()
                })
                .unwrap_or(0);
            if accounted == n as i64 || std::time::Instant::now() > deadline {
                service.join();
                return line;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }
    for seed in [3u64, 1977, 0xDEAD_BEEF] {
        let a = chaos_run(seed, 10);
        let b = chaos_run(seed, 10);
        assert_eq!(a, b, "stats diverged for seed {seed}");
        assert!(a.contains("\"serve.panics\""), "{a}");
    }
}

/// The arrival-driven replay source and the TCP front end compose: a paced
/// load run over a real socket loses nothing and drains cleanly.
#[test]
fn paced_load_over_tcp_drains_cleanly() {
    let service = Arc::new(Service::start(ServeConfig::default(), sink()).unwrap());
    let (listener, addr) = mm_serve::tcp::bind("127.0.0.1:0").unwrap();
    let acceptor = {
        let service = Arc::clone(&service);
        std::thread::spawn(move || mm_serve::tcp::serve(listener, service))
    };
    let report = mm_serve::run_load(
        &addr,
        &mm_serve::LoadConfig {
            n: 16,
            seed: 5,
            paced: true,
            shutdown: true,
            ..mm_serve::LoadConfig::default()
        },
    )
    .unwrap();
    acceptor.join().unwrap().unwrap();
    service.wait_stopped();
    let stats = service.stats();
    assert_eq!(report.lost, 0);
    assert!(stats.invariant_holds(), "{stats:?}");
    assert_eq!(stats.admitted + stats.shed, report.sent as u64, "{stats:?}");
}

/// Proof-carrying answers obey the same crash contract as plain ones: the
/// journal replays them byte-identically — proof bytes included — and a
/// corrupted (Byzantine) answer replays as the same lie instead of being
/// silently healed or re-corrupted on restart.
#[test]
fn proof_carrying_responses_and_lies_replay_byte_identically() {
    let dir = std::env::temp_dir().join(format!("machmin-proof-replay-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("journal.jsonl");
    std::fs::remove_file(&path).ok();
    let seed = 77u64;
    let proof_request = |id: u64| Request {
        want_proof: true,
        idempotency_key: Some(1_000 + id),
        ..request(id, seed)
    };
    // Phase 1: one worker (deterministic encode order) with a plan that
    // corrupts exactly the first eligible answer.
    let cfg = ServeConfig {
        workers: 1,
        journal: Some(path.clone()),
        plan: FaultPlan::once(FaultSite::AnswerCorruption, 1),
        ..ServeConfig::default()
    };
    let (lines, stats) = {
        let service = Service::start(cfg, sink()).unwrap();
        let (tx, rx) = channel::unbounded();
        for id in 0..6u64 {
            service.submit_line(&proof_request(id).to_line(), &tx);
        }
        let lines: Vec<String> = (0..6)
            .map(|_| rx.recv_timeout(Duration::from_secs(60)).unwrap())
            .collect();
        (lines, service.join())
    };
    assert_eq!(stats.corrupted, 1, "the once-plan lies exactly once");
    assert!(
        stats.proofs_attached >= stats.corrupted,
        "corrupted answers still carry their (doctored) proof"
    );
    let attached = lines.iter().filter(|l| l.contains("\"proof\"")).count() as u64;
    assert_eq!(attached, stats.proofs_attached);
    // Phase 2: restart on the same journal, fault plan gone. Every acked
    // line replays byte-for-byte — the lie survives restarts, which is
    // exactly why the coordinator must catch it, not the journal.
    let service = Service::start(
        ServeConfig {
            workers: 1,
            journal: Some(path),
            ..ServeConfig::default()
        },
        sink(),
    )
    .unwrap();
    let mut replayed: Vec<String> = service
        .recovered_acks()
        .iter()
        .map(|(_, l)| l.clone())
        .collect();
    // Replayed acks also refill the idempotency cache: re-asking with the
    // original key re-serves the identical bytes without re-execution.
    let (tx, rx) = channel::unbounded();
    service.submit_line(&proof_request(3).to_line(), &tx);
    let cached = rx.recv_timeout(Duration::from_secs(60)).unwrap();
    let restats = service.join();
    let mut sent = lines.clone();
    sent.sort();
    replayed.sort();
    assert_eq!(sent, replayed, "proof bytes survive replay unchanged");
    assert!(lines.contains(&cached), "cache re-serves replayed bytes");
    assert_eq!(restats.deduped, 1);
    assert_eq!(restats.corrupted, 0, "replay re-serves, never re-corrupts");
    std::fs::remove_dir_all(&dir).ok();
}
