//! Event-driven online scheduling driver.
//!
//! The driver runs an [`OnlinePolicy`] against a stream of jobs in exact
//! continuous time. At every *event* (job release, job completion, deadline,
//! or a policy-requested wake-up) the policy is asked which job each machine
//! should run until the next event; the driver advances time exactly,
//! accumulates the resulting [`Schedule`], pins jobs to their first machine,
//! and records deadline misses.
//!
//! Jobs can be added up front (replaying an [`Instance`]) or injected while
//! the simulation runs — the interaction model needed by the adaptive
//! lower-bound adversary of Lemma 2, which releases jobs *in reaction to* the
//! policy's observable assignments.

use std::collections::BTreeMap;

use mm_fault::{FaultInjector, FaultSite};
use mm_instance::{Instance, Job, JobId};
use mm_numeric::Rat;
use mm_trace::{NoopSink, TraceEvent, TraceSink};

use crate::{Schedule, Segment};

/// Static configuration of a simulation run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Number of machines available to the policy.
    pub machines: usize,
    /// Uniform machine speed (1 in the base model; `>1` for the
    /// speed-augmentation setting of Theorem 7).
    pub speed: Rat,
    /// If set, a policy decision that runs a job on a machine other than the
    /// one it first ran on aborts the simulation with
    /// [`SimError::MigrationForbidden`].
    pub forbid_migration: bool,
    /// Safety cap on the number of decision events.
    pub max_steps: usize,
}

impl SimConfig {
    /// Unit-speed migratory configuration with `machines` machines.
    pub fn migratory(machines: usize) -> Self {
        SimConfig {
            machines,
            speed: Rat::one(),
            forbid_migration: false,
            max_steps: 1_000_000,
        }
    }

    /// Unit-speed non-migratory configuration with `machines` machines.
    pub fn nonmigratory(machines: usize) -> Self {
        SimConfig {
            forbid_migration: true,
            ..SimConfig::migratory(machines)
        }
    }

    /// Sets the machine speed.
    pub fn with_speed(mut self, speed: Rat) -> Self {
        assert!(speed.is_positive(), "speed must be positive");
        self.speed = speed;
        self
    }

    /// Sets the decision-event safety cap (see [`SimError::StepLimitExceeded`]).
    pub fn with_max_steps(mut self, max_steps: usize) -> Self {
        assert!(max_steps > 0, "max_steps must be positive");
        self.max_steps = max_steps;
        self
    }
}

/// A released, unfinished job as seen by the policy.
#[derive(Debug, Clone)]
pub struct ActiveJob {
    /// The job's static data.
    pub job: Job,
    /// Remaining processing volume.
    pub remaining: Rat,
    /// Machine the job first ran on, if it has started (fixed forever in the
    /// non-migratory setting).
    pub pinned: Option<usize>,
}

impl ActiveJob {
    /// Remaining laxity at time `t`: slack before the job *must* run
    /// continuously (at unit speed) to meet its deadline.
    pub fn laxity_at(&self, t: &Rat, speed: &Rat) -> Rat {
        &self.job.deadline - t - &self.remaining / speed
    }
}

/// What the policy can observe when making a decision: the current time and
/// all released, unfinished jobs.
#[derive(Debug)]
pub struct SimState<'a> {
    /// Current time.
    pub time: &'a Rat,
    /// Number of machines.
    pub machines: usize,
    /// Machine speed.
    pub speed: &'a Rat,
    /// Released, unfinished jobs by id.
    pub active: &'a BTreeMap<JobId, ActiveJob>,
}

/// The policy's instruction for the time until the next event.
#[derive(Debug, Clone, Default)]
pub struct Decision {
    /// `(machine, job)` pairs to run now. Machines and jobs must each be
    /// distinct; omitted machines idle.
    pub run: Vec<(usize, JobId)>,
    /// Optional extra wake-up time (must be strictly in the future to have
    /// an effect); lets policies re-decide between natural events.
    pub wake_at: Option<Rat>,
}

impl Decision {
    /// The idle decision.
    pub fn idle() -> Self {
        Decision::default()
    }
}

/// An online scheduling policy.
///
/// `decide` is called at every event with the currently released, unfinished
/// jobs; the returned assignment holds until the next event. Policies learn
/// about a job exactly when it is released — never earlier.
pub trait OnlinePolicy {
    /// Chooses which job each machine runs until the next event.
    fn decide(&mut self, state: &SimState<'_>) -> Decision;

    /// Human-readable policy name for reports.
    fn name(&self) -> &'static str {
        "policy"
    }
}

impl<P: OnlinePolicy + ?Sized> OnlinePolicy for Box<P> {
    fn decide(&mut self, state: &SimState<'_>) -> Decision {
        (**self).decide(state)
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
}

impl<P: OnlinePolicy + ?Sized> OnlinePolicy for &mut P {
    fn decide(&mut self, state: &SimState<'_>) -> Decision {
        (**self).decide(state)
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
}

/// A hard simulation failure (all indicate policy bugs or rule violations,
/// not mere deadline misses — those are recorded in the outcome instead).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The decision referenced a machine index `≥ machines`.
    MachineOutOfRange {
        /// The offending machine index.
        machine: usize,
    },
    /// The decision used the same machine twice.
    DuplicateMachine {
        /// The machine assigned twice.
        machine: usize,
    },
    /// The decision ran the same job on two machines.
    DuplicateJob {
        /// The duplicated job.
        job: JobId,
    },
    /// The decision referenced a job that is not active.
    UnknownJob {
        /// The unknown job id.
        job: JobId,
    },
    /// A pinned job was moved although `forbid_migration` is set.
    MigrationForbidden {
        /// The job the policy tried to migrate.
        job: JobId,
        /// The machine it is pinned to.
        pinned: usize,
        /// The machine the policy requested.
        requested: usize,
    },
    /// `max_steps` was exceeded (runaway wake-up loop).
    StepLimitExceeded {
        /// Decision events executed (equals the configured budget).
        steps: usize,
        /// Simulation time when the budget ran out.
        time: Rat,
    },
}

impl core::fmt::Display for SimError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SimError::MachineOutOfRange { machine } => {
                write!(f, "machine {machine} out of range")
            }
            SimError::DuplicateMachine { machine } => {
                write!(f, "machine {machine} assigned twice")
            }
            SimError::DuplicateJob { job } => write!(f, "{job} assigned to two machines"),
            SimError::UnknownJob { job } => write!(f, "{job} is not active"),
            SimError::MigrationForbidden {
                job,
                pinned,
                requested,
            } => write!(
                f,
                "{job} is pinned to machine {pinned} but was sent to {requested}"
            ),
            SimError::StepLimitExceeded { steps, time } => {
                write!(
                    f,
                    "step limit of {steps} decision events exceeded at time {time}"
                )
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Result of a completed simulation.
#[derive(Debug)]
pub struct SimOutcome {
    /// The instance that was (incrementally) presented to the policy, with
    /// ids matching the schedule.
    pub instance: Instance,
    /// The produced schedule.
    pub schedule: Schedule,
    /// Jobs that missed their deadlines.
    pub misses: Vec<JobId>,
    /// Number of decision events.
    pub steps: usize,
}

impl SimOutcome {
    /// Whether every job met its deadline.
    pub fn feasible(&self) -> bool {
        self.misses.is_empty()
    }

    /// Number of machines the policy actually used.
    pub fn machines_used(&self) -> usize {
        self.schedule.machines_used()
    }
}

/// An in-progress simulation. See the module docs for the interaction model.
///
/// The sink parameter defaults to [`NoopSink`], whose `enabled()` is a
/// constant `false`: untraced simulations skip all event bookkeeping at
/// compile time. Pass a real sink (or `&mut` / `Option` of one) through
/// [`Simulation::with_sink`] to observe the run as typed [`TraceEvent`]s.
pub struct Simulation<P: OnlinePolicy, S: TraceSink = NoopSink> {
    policy: P,
    cfg: SimConfig,
    time: Rat,
    /// Future jobs, sorted by release descending (pop from the back).
    pending: Vec<Job>,
    active: BTreeMap<JobId, ActiveJob>,
    schedule: Schedule,
    misses: Vec<JobId>,
    all_jobs: Vec<Job>,
    steps: usize,
    sink: S,
    injector: FaultInjector,
    /// Trace bookkeeping (maintained only while the sink is enabled):
    /// machines that already received a segment, ...
    traced_opened: Vec<bool>,
    /// ... each job's distinct machines in first-use order, ...
    traced_job_machines: BTreeMap<JobId, Vec<usize>>,
    /// ... and each job's last segment as `(machine, end)`, to tell merging
    /// continuations from preemptions the way `Schedule::normalize` does.
    traced_last_run: BTreeMap<JobId, (usize, Rat)>,
}

impl<P: OnlinePolicy> Simulation<P> {
    /// Creates an empty, untraced simulation at time 0.
    pub fn new(cfg: SimConfig, policy: P) -> Self {
        Simulation::with_sink(cfg, policy, NoopSink)
    }

    /// Creates an untraced simulation preloaded with all jobs of `instance`
    /// (their ids are preserved).
    pub fn from_instance(cfg: SimConfig, policy: P, instance: &Instance) -> Self {
        Simulation::from_instance_with_sink(cfg, policy, instance, NoopSink)
    }
}

impl<P: OnlinePolicy, S: TraceSink> Simulation<P, S> {
    /// Creates an empty simulation at time 0 that reports to `sink`.
    pub fn with_sink(cfg: SimConfig, policy: P, sink: S) -> Self {
        assert!(cfg.speed.is_positive(), "speed must be positive");
        let machines = cfg.machines;
        Simulation {
            policy,
            cfg,
            time: Rat::zero(),
            pending: Vec::new(),
            active: BTreeMap::new(),
            schedule: Schedule::new(),
            misses: Vec::new(),
            all_jobs: Vec::new(),
            steps: 0,
            sink,
            injector: FaultInjector::disabled(),
            traced_opened: vec![false; machines],
            traced_job_machines: BTreeMap::new(),
            traced_last_run: BTreeMap::new(),
        }
    }

    /// Creates a simulation preloaded with all jobs of `instance` (ids
    /// preserved) that reports to `sink`.
    pub fn from_instance_with_sink(
        cfg: SimConfig,
        policy: P,
        instance: &Instance,
        sink: S,
    ) -> Self {
        let mut sim = Simulation::with_sink(cfg, policy, sink);
        for job in instance.iter() {
            sim.push_job(job.clone());
        }
        sim
    }

    /// Mutable access to the trace sink, letting embedding components (the
    /// adversary, custom drivers) emit their own events into the same trace.
    pub fn sink_mut(&mut self) -> &mut S {
        &mut self.sink
    }

    /// Arms deterministic fault injection: each decision step that assigns
    /// work registers one hit at [`FaultSite::MachineFailure`] and one at
    /// [`FaultSite::MachineSlowdown`], and a firing rule degrades that step
    /// (see [`Simulation::advance_once`] internals): a *failed* machine does
    /// no work until the next event; a *slowed* machine runs at half speed.
    /// Both are recorded as [`TraceEvent::FaultInjected`] and never produce a
    /// [`SimError`] — consequences surface as ordinary deadline misses.
    pub fn with_faults(mut self, injector: FaultInjector) -> Self {
        self.injector = injector;
        self
    }

    /// Read access to the fault injector's hit/fired counters.
    pub fn injector(&self) -> &FaultInjector {
        &self.injector
    }

    fn push_job(&mut self, job: Job) {
        assert!(
            job.release >= self.time,
            "cannot inject {} released at {} before current time {}",
            job.id,
            job.release,
            self.time
        );
        self.all_jobs.push(job.clone());
        self.pending.push(job);
        self.pending.sort_by(|a, b| b.release.cmp(&a.release));
    }

    /// Injects a new job with the next free id; release must be ≥ current
    /// time. Returns the assigned id.
    pub fn inject(&mut self, release: Rat, deadline: Rat, processing: Rat) -> JobId {
        let id = JobId(self.all_jobs.len() as u32);
        self.push_job(Job::new(id, release, deadline, processing));
        id
    }

    /// Current simulation time.
    pub fn time(&self) -> &Rat {
        &self.time
    }

    /// Machine a job is pinned to (first machine it ran on), if started.
    pub fn machine_of(&self, job: JobId) -> Option<usize> {
        self.active.get(&job).and_then(|a| a.pinned).or_else(|| {
            let ms = self.schedule.machines_of(job);
            ms.first().copied()
        })
    }

    /// Remaining processing of an active job (0 if finished, `None` if the
    /// job was never injected or already missed).
    pub fn remaining(&self, job: JobId) -> Option<Rat> {
        if let Some(a) = self.active.get(&job) {
            return Some(a.remaining.clone());
        }
        if self.misses.contains(&job) {
            return None;
        }
        if self
            .all_jobs
            .iter()
            .any(|j| j.id == job && j.release <= self.time)
        {
            return Some(Rat::zero());
        }
        None
    }

    /// Whether a job is finished.
    pub fn is_finished(&self, job: JobId) -> bool {
        self.remaining(job).is_some_and(|r| r.is_zero())
    }

    /// Jobs that have missed their deadline so far.
    pub fn misses(&self) -> &[JobId] {
        &self.misses
    }

    /// Released unfinished jobs.
    pub fn active(&self) -> &BTreeMap<JobId, ActiveJob> {
        &self.active
    }

    /// Read access to the schedule built so far.
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// All jobs injected so far (released or still pending), in injection
    /// (= id) order.
    pub fn all_jobs(&self) -> &[Job] {
        &self.all_jobs
    }

    fn release_due(&mut self) {
        while let Some(last) = self.pending.last() {
            if last.release <= self.time {
                let job = self.pending.pop().unwrap();
                debug_assert!(job.release == self.time || self.time == Rat::zero());
                if self.sink.enabled() {
                    self.sink.record(&TraceEvent::JobReleased {
                        job: job.id.0,
                        time: job.release.clone(),
                    });
                }
                self.active.insert(
                    job.id,
                    ActiveJob {
                        remaining: job.processing.clone(),
                        job,
                        pinned: None,
                    },
                );
            } else {
                break;
            }
        }
    }

    fn collect_misses(&mut self) {
        let due: Vec<(JobId, Rat)> = self
            .active
            .iter()
            .filter(|(_, a)| a.job.deadline <= self.time && !a.remaining.is_zero())
            .map(|(id, a)| (*id, a.job.deadline.clone()))
            .collect();
        for (id, deadline) in due {
            self.active.remove(&id);
            if self.sink.enabled() {
                self.sink.record(&TraceEvent::DeadlineMissed {
                    job: id.0,
                    time: deadline,
                });
            }
            self.misses.push(id);
        }
    }

    /// Trace bookkeeping for one freshly pushed segment. Emission rules
    /// mirror the schedule's derived stats exactly: `MachineOpened` fires at
    /// each machine's first segment, `Migrated` when a job first touches
    /// each machine beyond its first, and `Preempted` when a segment does
    /// not merge with the job's previous one (different machine, or a gap).
    fn trace_segment(&mut self, machine: usize, job: JobId, start: &Rat, end: &Rat) {
        if !self.traced_opened[machine] {
            self.traced_opened[machine] = true;
            self.sink.record(&TraceEvent::MachineOpened {
                machine,
                time: start.clone(),
            });
        }
        let machines = self.traced_job_machines.entry(job).or_default();
        if machines.is_empty() {
            machines.push(machine);
            self.sink.record(&TraceEvent::JobStarted {
                job: job.0,
                machine,
                time: start.clone(),
            });
        } else if !machines.contains(&machine) {
            machines.push(machine);
            let from = self.traced_last_run[&job].0;
            self.sink.record(&TraceEvent::Migrated {
                job: job.0,
                from,
                to: machine,
                time: start.clone(),
            });
        }
        if let Some((prev_machine, prev_end)) = self.traced_last_run.get(&job) {
            if *prev_machine != machine || prev_end != start {
                self.sink.record(&TraceEvent::Preempted {
                    job: job.0,
                    machine,
                    time: start.clone(),
                });
            }
        }
        self.traced_last_run.insert(job, (machine, end.clone()));
    }

    /// Advances through one decision event, stopping at `limit` if given.
    /// Returns `Ok(true)` if more work remains (before the limit).
    fn advance_once(&mut self, limit: Option<&Rat>) -> Result<bool, SimError> {
        self.release_due();
        self.collect_misses();
        if self.active.is_empty() && self.pending.is_empty() {
            return Ok(false);
        }
        if self.steps >= self.cfg.max_steps {
            if self.sink.enabled() {
                self.sink.record(&TraceEvent::StepLimitExceeded {
                    steps: self.steps as u64,
                    time: self.time.clone(),
                });
            }
            return Err(SimError::StepLimitExceeded {
                steps: self.steps,
                time: self.time.clone(),
            });
        }
        self.steps += 1;

        // If nothing is released yet, fast-forward to the next release.
        if self.active.is_empty() {
            let next_release = self.pending.last().unwrap().release.clone();
            match limit {
                Some(l) if *l < next_release => {
                    self.time = l.clone();
                    return Ok(false);
                }
                _ => {
                    self.time = next_release;
                    return Ok(true);
                }
            }
        }

        // Ask the policy.
        let decision = {
            let state = SimState {
                time: &self.time,
                machines: self.cfg.machines,
                speed: &self.cfg.speed,
                active: &self.active,
            };
            self.policy.decide(&state)
        };

        // Validate the decision.
        let mut used_machines = vec![false; self.cfg.machines];
        let mut used_jobs: Vec<JobId> = Vec::with_capacity(decision.run.len());
        for &(machine, job) in &decision.run {
            if machine >= self.cfg.machines {
                return Err(SimError::MachineOutOfRange { machine });
            }
            if used_machines[machine] {
                return Err(SimError::DuplicateMachine { machine });
            }
            used_machines[machine] = true;
            if used_jobs.contains(&job) {
                return Err(SimError::DuplicateJob { job });
            }
            used_jobs.push(job);
            let Some(a) = self.active.get(&job) else {
                return Err(SimError::UnknownJob { job });
            };
            if self.cfg.forbid_migration {
                if let Some(pinned) = a.pinned {
                    if pinned != machine {
                        return Err(SimError::MigrationForbidden {
                            job,
                            pinned,
                            requested: machine,
                        });
                    }
                }
            }
        }

        // Deterministic fault injection. The plan is consulted once per site
        // on every step that assigns work, so firing depends only on the hit
        // count — never on the clock or any RNG. A failed machine idles until
        // the next event; a slowed machine runs at half speed. Neither is an
        // error: consequences surface as ordinary deadline misses.
        let mut failed_machine: Option<usize> = None;
        let mut slowed_machine: Option<usize> = None;
        if self.injector.is_active() && !decision.run.is_empty() {
            if self.injector.fire(FaultSite::MachineFailure) {
                failed_machine = Some(decision.run[0].0);
                if self.sink.enabled() {
                    self.sink.record(&TraceEvent::FaultInjected {
                        site: FaultSite::MachineFailure.tag(),
                        count: self.injector.fired(FaultSite::MachineFailure),
                    });
                }
            }
            if self.injector.fire(FaultSite::MachineSlowdown) {
                if let Some(&(machine, _)) = decision
                    .run
                    .iter()
                    .find(|&&(m, _)| Some(m) != failed_machine)
                {
                    slowed_machine = Some(machine);
                    if self.sink.enabled() {
                        self.sink.record(&TraceEvent::FaultInjected {
                            site: FaultSite::MachineSlowdown.tag(),
                            count: self.injector.fired(FaultSite::MachineSlowdown),
                        });
                    }
                }
            }
        }
        let half_speed = &self.cfg.speed / &Rat::from(2u64);

        // Next event time.
        let mut next: Option<Rat> = limit.cloned();
        let consider = |t: Rat, next: &mut Option<Rat>| {
            if t > self.time {
                match next {
                    Some(cur) if *cur <= t => {}
                    _ => *next = Some(t),
                }
            }
        };
        if let Some(p) = self.pending.last() {
            consider(p.release.clone(), &mut next);
        }
        for (_, a) in self.active.iter() {
            consider(a.job.deadline.clone(), &mut next);
        }
        for &(machine, job) in &decision.run {
            if failed_machine == Some(machine) {
                continue;
            }
            let speed = if slowed_machine == Some(machine) {
                &half_speed
            } else {
                &self.cfg.speed
            };
            let a = &self.active[&job];
            consider(&self.time + &a.remaining / speed, &mut next);
        }
        if let Some(w) = &decision.wake_at {
            consider(w.clone(), &mut next);
        }
        let next_time = next.expect("active jobs guarantee a future event");

        // Advance: run the chosen jobs, cut segments at next_time.
        let dt = &next_time - &self.time;
        debug_assert!(dt.is_positive());
        for &(machine, job) in &decision.run {
            if failed_machine == Some(machine) {
                // Failed machine: no segment, the job stays active.
                continue;
            }
            let speed = if slowed_machine == Some(machine) {
                half_speed.clone()
            } else {
                self.cfg.speed.clone()
            };
            let a = self.active.get_mut(&job).unwrap();
            let mut end = next_time.clone();
            let mut dv = &dt * &speed;
            if dv >= a.remaining {
                // completes strictly before next_time
                dv = a.remaining.clone();
                end = &self.time + &dv / &speed;
            }
            a.remaining = &a.remaining - &dv;
            let completed = a.remaining.is_zero();
            if a.pinned.is_none() {
                a.pinned = Some(machine);
            }
            if self.sink.enabled() {
                let start = self.time.clone();
                self.trace_segment(machine, job, &start, &end);
                if completed {
                    self.sink.record(&TraceEvent::Completed {
                        job: job.0,
                        time: end.clone(),
                    });
                }
            }
            self.schedule.push(Segment {
                machine,
                interval: mm_instance::Interval::new(self.time.clone(), end),
                job,
                speed,
            });
        }
        // Remove completed jobs.
        let done: Vec<JobId> = self
            .active
            .iter()
            .filter(|(_, a)| a.remaining.is_zero())
            .map(|(id, _)| *id)
            .collect();
        for id in done {
            self.active.remove(&id);
        }
        self.time = next_time;
        match limit {
            Some(l) => Ok(self.time < *l || self.has_work_at_limit(l)),
            None => Ok(true),
        }
    }

    fn has_work_at_limit(&self, limit: &Rat) -> bool {
        // run_until(l) should keep processing events that occur exactly at l?
        // No: we stop once time reaches l so the caller can inspect/inject.
        let _ = limit;
        false
    }

    /// Runs until `t`, leaving the simulation at exactly time `t` (events at
    /// `t` itself are *not* processed, so the caller can inject jobs released
    /// at `t` first).
    pub fn run_until(&mut self, t: &Rat) -> Result<(), SimError> {
        assert!(*t >= self.time, "cannot run backwards");
        while self.time < *t {
            if !self.advance_once(Some(t))? {
                break;
            }
        }
        if self.time < *t {
            self.time = t.clone();
        }
        Ok(())
    }

    /// Runs until no pending or active jobs remain.
    pub fn run_to_completion(&mut self) -> Result<(), SimError> {
        while self.advance_once(None)? {}
        Ok(())
    }

    /// Finalizes the simulation, returning the outcome. Any still-unfinished
    /// jobs are counted as misses.
    pub fn finish(mut self) -> Result<SimOutcome, SimError> {
        self.run_to_completion()?;
        Ok(SimOutcome {
            instance: Instance::from_jobs_with_ids(self.all_jobs),
            schedule: self.schedule,
            misses: self.misses,
            steps: self.steps,
        })
    }

    /// The policy's name.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }
}

/// Convenience: replay a full instance against a policy and return the
/// outcome.
pub fn run_policy<P: OnlinePolicy>(
    instance: &Instance,
    policy: P,
    cfg: SimConfig,
) -> Result<SimOutcome, SimError> {
    Simulation::from_instance(cfg, policy, instance).finish()
}

/// Like [`run_policy`], but reports every simulation event to `sink`.
/// Pass `&mut sink` to keep ownership (a `&mut S` is itself a sink).
pub fn run_policy_traced<P: OnlinePolicy, S: TraceSink>(
    instance: &Instance,
    policy: P,
    cfg: SimConfig,
    sink: S,
) -> Result<SimOutcome, SimError> {
    Simulation::from_instance_with_sink(cfg, policy, instance, sink).finish()
}
