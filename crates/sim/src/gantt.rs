//! ASCII Gantt rendering of schedules, for examples and debugging.

use mm_numeric::Rat;

use crate::Schedule;

/// Renders the schedule as one ASCII lane per machine, quantizing time into
/// `width` columns between the earliest segment start and the latest end.
/// Each cell shows the last digit of the job id running there (`.` = idle).
pub fn render_gantt(schedule: &mut Schedule, width: usize) -> String {
    schedule.normalize();
    let segs = schedule.raw_segments().to_vec();
    if segs.is_empty() {
        return String::from("(empty schedule)\n");
    }
    let width = width.max(10);
    let start = segs.iter().map(|s| s.interval.start.clone()).min().unwrap();
    let end = segs.iter().map(|s| s.interval.end.clone()).max().unwrap();
    let span = &end - &start;
    if !span.is_positive() {
        return String::from("(zero-length schedule)\n");
    }
    let machines = schedule.machine_span();
    let mut lanes = vec![vec!['.'; width]; machines];
    for seg in &segs {
        // Map [seg.start, seg.end) onto columns.
        let from = (&(&seg.interval.start - &start) * Rat::from(width as u64) / &span)
            .floor()
            .to_u64()
            .unwrap_or(0) as usize;
        let to = (&(&seg.interval.end - &start) * Rat::from(width as u64) / &span)
            .ceil()
            .to_u64()
            .unwrap_or(0) as usize;
        let glyph = char::from_digit(seg.job.0 % 10, 10).unwrap_or('#');
        for cell in lanes[seg.machine]
            .iter_mut()
            .take(to.min(width))
            .skip(from.min(width))
        {
            *cell = glyph;
        }
    }
    let mut out = String::new();
    out.push_str(&format!("time {start} .. {end}\n"));
    for (m, lane) in lanes.iter().enumerate() {
        out.push_str(&format!("M{m:>2} |{}|\n", lane.iter().collect::<String>()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_instance::JobId;

    fn rat(v: i64) -> Rat {
        Rat::from(v)
    }

    #[test]
    fn empty_schedule() {
        let mut s = Schedule::new();
        assert_eq!(render_gantt(&mut s, 40), "(empty schedule)\n");
    }

    #[test]
    fn lanes_and_glyphs() {
        let mut s = Schedule::new();
        s.push_unit(0, JobId(1), rat(0), rat(5));
        s.push_unit(1, JobId(2), rat(5), rat(10));
        let g = render_gantt(&mut s, 10);
        let lines: Vec<&str> = g.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[1].contains("11111"));
        assert!(lines[1].contains("....."));
        assert!(lines[2].ends_with("22222|"));
    }

    #[test]
    fn fractional_times_quantize_without_panic() {
        let mut s = Schedule::new();
        s.push_unit(0, JobId(3), Rat::ratio(1, 7), Rat::ratio(5, 7));
        let g = render_gantt(&mut s, 21);
        assert!(g.contains('3'));
        assert!(g.starts_with("time 1/7 .. 5/7"));
    }
}
