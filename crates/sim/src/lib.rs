//! Exact continuous-time scheduling simulation for `machmin`.
//!
//! Three pieces:
//!
//! * [`Schedule`] / [`Segment`] — the exact representation of who runs where
//!   and when (at which speed);
//! * [`verify`] — an independent feasibility checker implementing the
//!   definition from Section 2 of the paper (window containment, one job per
//!   machine, no self-parallelism, exact volumes, optional non-migration /
//!   non-preemption);
//! * [`Simulation`] — an event-driven driver running any [`OnlinePolicy`]
//!   in exact rational time, with support for *adaptive* job injection so
//!   lower-bound adversaries can react to the policy's visible decisions.
//!
//! # Example: a trivial single-machine policy
//!
//! ```
//! use mm_instance::Instance;
//! use mm_numeric::Rat;
//! use mm_sim::{run_policy, Decision, OnlinePolicy, SimConfig, SimState, VerifyOptions};
//!
//! /// Runs the active job with the earliest deadline on machine 0.
//! struct Edf1;
//! impl OnlinePolicy for Edf1 {
//!     fn decide(&mut self, state: &SimState<'_>) -> Decision {
//!         let job = state
//!             .active
//!             .values()
//!             .min_by(|a, b| a.job.deadline.cmp(&b.job.deadline))
//!             .map(|a| a.job.id);
//!         Decision { run: job.into_iter().map(|j| (0, j)).collect(), wake_at: None }
//!     }
//! }
//!
//! let inst = Instance::from_ints([(0, 2, 1), (1, 4, 2)]);
//! let mut outcome = run_policy(&inst, Edf1, SimConfig::nonmigratory(1)).unwrap();
//! assert!(outcome.feasible());
//! mm_sim::verify(&outcome.instance, &mut outcome.schedule, &VerifyOptions::nonmigratory())
//!     .unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod driver;
mod gantt;
mod replay;
mod schedule;
mod verify;

pub use driver::{
    run_policy, run_policy_traced, ActiveJob, Decision, OnlinePolicy, SimConfig, SimError,
    SimOutcome, SimState, Simulation,
};
pub use gantt::render_gantt;
pub use replay::{Arrival, ArrivalSource};
pub use schedule::{Schedule, Segment};
pub use verify::{verify, ScheduleError, ScheduleStats, VerifyOptions};
