//! Arrival-driven request replay: turn an [`Instance`] into a paced request
//! stream for the service layer.
//!
//! Online machine minimization is a streaming problem — jobs become visible
//! at their release dates, and the algorithm must answer about the jobs seen
//! so far. [`ArrivalSource`] makes that concrete for `machmin serve`: it
//! groups an instance's jobs by release date and emits one [`Arrival`] per
//! distinct release, each carrying a wall-clock offset (instance time scaled
//! by a caller-chosen unit) and the *prefix instance* of everything released
//! up to that point. A load generator replays the arrivals by sleeping to
//! each offset and issuing a solve/probe request over the prefix.

use std::time::Duration;

use mm_instance::{Instance, JobId};
use mm_numeric::Rat;

/// One release event of a replayed instance.
#[derive(Debug, Clone)]
pub struct Arrival {
    /// Wall-clock offset from the start of the replay.
    pub offset: Duration,
    /// Release date in instance time (exact).
    pub release: Rat,
    /// Ids (in the source instance) of the jobs released at this instant.
    pub released: Vec<JobId>,
    /// All jobs released so far, rebuilt as a standalone instance. Job ids
    /// are re-assigned densely by the instance builder, so this is a valid
    /// instance in its own right (what an online algorithm sees at this
    /// time).
    pub prefix: Instance,
}

/// A paced request schedule derived from an instance's release dates.
#[derive(Debug, Clone)]
pub struct ArrivalSource {
    arrivals: Vec<Arrival>,
}

impl ArrivalSource {
    /// Builds the replay schedule: arrivals sorted by release date, one per
    /// distinct release, paced at `unit` of wall-clock per unit of instance
    /// time. Offsets are measured from the earliest release (the first
    /// arrival always has offset zero), so instances that start late do not
    /// stall the replay.
    pub fn new(instance: &Instance, unit: Duration) -> Self {
        let mut order: Vec<&mm_instance::Job> = instance.iter().collect();
        order.sort_by(|a, b| a.release.cmp(&b.release).then(a.id.cmp(&b.id)));
        let origin = order.first().map(|job| job.release.clone());

        let mut arrivals: Vec<Arrival> = Vec::new();
        let mut seen: Vec<mm_instance::Job> = Vec::new();
        let mut i = 0;
        while i < order.len() {
            let release = order[i].release.clone();
            let mut released = Vec::new();
            while i < order.len() && order[i].release == release {
                released.push(order[i].id);
                seen.push(order[i].clone());
                i += 1;
            }
            let elapsed = &release - origin.as_ref().expect("non-empty order");
            arrivals.push(Arrival {
                offset: scale(&elapsed, unit),
                release,
                released,
                prefix: Instance::from_jobs(seen.iter().cloned()),
            });
        }
        ArrivalSource { arrivals }
    }

    /// The arrivals in replay order.
    pub fn arrivals(&self) -> &[Arrival] {
        &self.arrivals
    }

    /// Number of distinct release instants.
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// Whether the source instance had no jobs.
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }

    /// Total wall-clock span of the replay (offset of the last arrival).
    pub fn span(&self) -> Duration {
        self.arrivals.last().map_or(Duration::ZERO, |a| a.offset)
    }
}

/// `elapsed * unit`, computed in nanoseconds with saturation. Release dates
/// are exact rationals; replay pacing only needs wall-clock resolution, so a
/// round through `f64` is fine here (and the only place the simulator ever
/// leaves exact arithmetic).
fn scale(elapsed: &Rat, unit: Duration) -> Duration {
    let units = elapsed.to_f64().max(0.0);
    let nanos = units * unit.as_nanos() as f64;
    if !nanos.is_finite() || nanos >= u64::MAX as f64 {
        Duration::from_nanos(u64::MAX)
    } else {
        Duration::from_nanos(nanos as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_by_release_and_paces_offsets() {
        let inst = Instance::from_ints([(0, 10, 1), (0, 4, 2), (2, 6, 1), (5, 9, 2)]);
        let src = ArrivalSource::new(&inst, Duration::from_millis(10));
        assert_eq!(src.len(), 3);
        let a = src.arrivals();
        assert_eq!(a[0].offset, Duration::ZERO);
        assert_eq!(a[0].released.len(), 2);
        assert_eq!(a[0].prefix.len(), 2);
        assert_eq!(a[1].offset, Duration::from_millis(20));
        assert_eq!(a[1].prefix.len(), 3);
        assert_eq!(a[2].offset, Duration::from_millis(50));
        assert_eq!(a[2].prefix.len(), 4);
        assert_eq!(src.span(), Duration::from_millis(50));
    }

    #[test]
    fn late_start_is_rebased_to_zero() {
        let inst = Instance::from_ints([(100, 104, 2), (101, 105, 1)]);
        let src = ArrivalSource::new(&inst, Duration::from_millis(1));
        assert_eq!(src.arrivals()[0].offset, Duration::ZERO);
        assert_eq!(src.arrivals()[1].offset, Duration::from_millis(1));
    }

    #[test]
    fn prefixes_are_valid_instances() {
        let inst = Instance::from_ints([(0, 8, 3), (1, 5, 2), (3, 7, 1)]);
        let src = ArrivalSource::new(&inst, Duration::ZERO);
        for arrival in src.arrivals() {
            assert!(arrival.prefix.validate().is_ok());
        }
        assert_eq!(src.span(), Duration::ZERO);
    }

    #[test]
    fn empty_instance_yields_no_arrivals() {
        let src = ArrivalSource::new(&Instance::empty(), Duration::from_secs(1));
        assert!(src.is_empty());
        assert_eq!(src.span(), Duration::ZERO);
    }
}
