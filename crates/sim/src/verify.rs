//! Independent schedule verification.
//!
//! Every schedule produced anywhere in the workspace — by online policies,
//! offline solvers, or transformations — is validated by [`verify`] against
//! the instance it claims to schedule. The checks implement the feasibility
//! definition of Section 2 of the paper verbatim:
//!
//! 1. each job is processed for exactly `p_j` units within `[r_j, d_j)`;
//! 2. each machine processes at most one job at a time;
//! 3. no job runs on two machines simultaneously;
//! 4. (optional) no job ever migrates between machines;
//! 5. (optional) no job is ever preempted.

use mm_instance::{Instance, Interval, JobId};
use mm_numeric::Rat;

use crate::{Schedule, Segment};

/// What to require beyond plain feasibility.
#[derive(Debug, Clone, Default)]
pub struct VerifyOptions {
    /// Reject schedules where any job uses more than one machine.
    pub require_nonmigratory: bool,
    /// Reject schedules where any job is preempted.
    pub require_nonpreemptive: bool,
    /// Maximum machine speed assumed available; segments faster than this
    /// are rejected. `None` means speed 1 (the unit-speed setting).
    pub speed_limit: Option<Rat>,
    /// Accept partial schedules: jobs may be processed *less* than `p_j`
    /// (never more). Used to structurally validate overloaded runs whose
    /// misses are analyzed separately.
    pub allow_partial: bool,
}

impl VerifyOptions {
    /// Plain migratory preemptive feasibility at unit speed.
    pub fn migratory() -> Self {
        VerifyOptions::default()
    }

    /// Non-migratory preemptive feasibility at unit speed.
    pub fn nonmigratory() -> Self {
        VerifyOptions {
            require_nonmigratory: true,
            ..Default::default()
        }
    }

    /// Non-preemptive (hence non-migratory) feasibility at unit speed.
    pub fn nonpreemptive() -> Self {
        VerifyOptions {
            require_nonmigratory: true,
            require_nonpreemptive: true,
            ..Default::default()
        }
    }

    /// Allows machine speed up to `s` (speed-augmentation setting).
    pub fn with_speed(mut self, s: Rat) -> Self {
        self.speed_limit = Some(s);
        self
    }

    /// Accepts under-processed jobs (see [`VerifyOptions::allow_partial`]).
    pub fn partial(mut self) -> Self {
        self.allow_partial = true;
        self
    }
}

/// A feasibility violation found by [`verify`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// Two segments overlap on one machine.
    MachineOverlap {
        /// The machine where the overlap occurs.
        machine: usize,
        /// First overlapping segment's job.
        first: JobId,
        /// Second overlapping segment's job.
        second: JobId,
        /// Start of the overlap.
        at: Rat,
    },
    /// A job runs on two machines at the same time.
    ParallelSelf {
        /// The job running in parallel with itself.
        job: JobId,
        /// Start of the overlap.
        at: Rat,
    },
    /// A segment lies (partially) outside the job's window.
    OutsideWindow {
        /// The offending job.
        job: JobId,
        /// The offending segment interval.
        segment: Interval,
    },
    /// Total processed volume differs from `p_j`.
    WrongVolume {
        /// The job with wrong total volume.
        job: JobId,
        /// Volume the schedule delivers.
        processed: Rat,
        /// Volume the instance requires.
        required: Rat,
    },
    /// A job appears in the schedule but not in the instance.
    UnknownJob {
        /// The unknown id.
        job: JobId,
    },
    /// Migration found although `require_nonmigratory` was set.
    Migration {
        /// The migrating job.
        job: JobId,
        /// The machines it touches.
        machines: Vec<usize>,
    },
    /// Preemption found although `require_nonpreemptive` was set.
    Preemption {
        /// The preempted job.
        job: JobId,
    },
    /// A segment exceeds the allowed machine speed.
    Overspeed {
        /// The offending job.
        job: JobId,
        /// The segment's speed.
        speed: Rat,
    },
}

impl core::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ScheduleError::MachineOverlap {
                machine,
                first,
                second,
                at,
            } => write!(
                f,
                "machine {machine} runs {first} and {second} simultaneously at t={at}"
            ),
            ScheduleError::ParallelSelf { job, at } => {
                write!(f, "{job} runs on two machines at t={at}")
            }
            ScheduleError::OutsideWindow { job, segment } => {
                write!(f, "{job} runs outside its window during {segment}")
            }
            ScheduleError::WrongVolume {
                job,
                processed,
                required,
            } => {
                write!(f, "{job} processed {processed}, requires {required}")
            }
            ScheduleError::UnknownJob { job } => write!(f, "unknown job {job}"),
            ScheduleError::Migration { job, machines } => {
                write!(f, "{job} migrates across machines {machines:?}")
            }
            ScheduleError::Preemption { job } => write!(f, "{job} is preempted"),
            ScheduleError::Overspeed { job, speed } => {
                write!(f, "{job} runs at disallowed speed {speed}")
            }
        }
    }
}

/// Summary statistics of a verified schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleStats {
    /// Distinct machines with at least one segment.
    pub machines_used: usize,
    /// Total migrations (distinct machines per job − 1, summed).
    pub migrations: usize,
    /// Total preemptions (maximal runs per job − 1, summed).
    pub preemptions: usize,
    /// Number of maximal segments.
    pub segments: usize,
}

/// Verifies `schedule` against `instance`. Returns statistics on success or
/// the complete list of violations.
pub fn verify(
    instance: &Instance,
    schedule: &mut Schedule,
    opts: &VerifyOptions,
) -> Result<ScheduleStats, Vec<ScheduleError>> {
    schedule.normalize();
    let mut errors = Vec::new();
    let speed_cap = opts.speed_limit.clone().unwrap_or_else(Rat::one);

    // Known jobs and window / volume checks.
    let n = instance.len() as u32;
    for seg in schedule.raw_segments() {
        if seg.job.0 >= n {
            errors.push(ScheduleError::UnknownJob { job: seg.job });
            continue;
        }
        let job = instance.job(seg.job);
        if !job.window().contains_interval(&seg.interval) {
            errors.push(ScheduleError::OutsideWindow {
                job: seg.job,
                segment: seg.interval.clone(),
            });
        }
        if seg.speed > speed_cap {
            errors.push(ScheduleError::Overspeed {
                job: seg.job,
                speed: seg.speed.clone(),
            });
        }
    }

    for job in instance.iter() {
        let processed = schedule.processed(job.id);
        let ok = if opts.allow_partial {
            processed <= job.processing
        } else {
            processed == job.processing
        };
        if !ok {
            errors.push(ScheduleError::WrongVolume {
                job: job.id,
                processed,
                required: job.processing.clone(),
            });
        }
    }

    // Per-machine overlap: segments are sorted by (machine, start).
    let segs: Vec<Segment> = schedule.raw_segments().to_vec();
    for pair in segs.windows(2) {
        let (a, b) = (&pair[0], &pair[1]);
        if a.machine == b.machine && b.interval.start < a.interval.end {
            errors.push(ScheduleError::MachineOverlap {
                machine: a.machine,
                first: a.job,
                second: b.job,
                at: b.interval.start.clone(),
            });
        }
    }

    // Per-job self-parallelism across machines.
    let mut by_job: std::collections::BTreeMap<JobId, Vec<&Segment>> = Default::default();
    for s in &segs {
        by_job.entry(s.job).or_default().push(s);
    }
    for (job, mut list) in by_job.clone() {
        list.sort_by(|a, b| a.interval.start.cmp(&b.interval.start));
        for pair in list.windows(2) {
            if pair[1].interval.start < pair[0].interval.end {
                errors.push(ScheduleError::ParallelSelf {
                    job,
                    at: pair[1].interval.start.clone(),
                });
            }
        }
    }

    // Migration / preemption requirements.
    if opts.require_nonmigratory {
        for (job, list) in &by_job {
            let mut ms: Vec<usize> = list.iter().map(|s| s.machine).collect();
            ms.sort_unstable();
            ms.dedup();
            if ms.len() > 1 {
                errors.push(ScheduleError::Migration {
                    job: *job,
                    machines: ms,
                });
            }
        }
    }
    if opts.require_nonpreemptive {
        for (job, list) in &by_job {
            // After normalization a non-preempted job is exactly one segment.
            if list.len() > 1 {
                errors.push(ScheduleError::Preemption { job: *job });
            }
        }
    }

    if errors.is_empty() {
        Ok(ScheduleStats {
            machines_used: schedule.machines_used(),
            migrations: schedule.migrations(),
            preemptions: schedule.preemptions(),
            segments: schedule.raw_segments().len(),
        })
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_instance::Instance;

    fn rat(v: i64) -> Rat {
        Rat::from(v)
    }

    /// j0: (0,4,2), j1: (1,5,2)
    fn two_jobs() -> Instance {
        Instance::from_ints([(0, 4, 2), (1, 5, 2)])
    }

    #[test]
    fn accepts_valid_schedule() {
        let inst = two_jobs();
        let mut s = Schedule::new();
        s.push_unit(0, JobId(0), rat(0), rat(2));
        s.push_unit(0, JobId(1), rat(2), rat(4));
        let stats = verify(&inst, &mut s, &VerifyOptions::nonpreemptive()).unwrap();
        assert_eq!(stats.machines_used, 1);
        assert_eq!(stats.migrations, 0);
        assert_eq!(stats.preemptions, 0);
    }

    #[test]
    fn rejects_machine_overlap() {
        let inst = two_jobs();
        let mut s = Schedule::new();
        s.push_unit(0, JobId(0), rat(0), rat(2));
        s.push_unit(0, JobId(1), rat(1), rat(3));
        let errs = verify(&inst, &mut s, &VerifyOptions::migratory()).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, ScheduleError::MachineOverlap { machine: 0, .. })));
    }

    #[test]
    fn rejects_self_parallelism() {
        let inst = Instance::from_ints([(0, 4, 4)]);
        let mut s = Schedule::new();
        s.push_unit(0, JobId(0), rat(0), rat(2));
        s.push_unit(1, JobId(0), rat(1), rat(3));
        let errs = verify(&inst, &mut s, &VerifyOptions::migratory()).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, ScheduleError::ParallelSelf { .. })));
    }

    #[test]
    fn rejects_outside_window() {
        let inst = two_jobs();
        let mut s = Schedule::new();
        s.push_unit(0, JobId(0), rat(3), rat(5)); // deadline is 4
        s.push_unit(1, JobId(1), rat(1), rat(3));
        let errs = verify(&inst, &mut s, &VerifyOptions::migratory()).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, ScheduleError::OutsideWindow { .. })));
    }

    #[test]
    fn rejects_wrong_volume() {
        let inst = two_jobs();
        let mut s = Schedule::new();
        s.push_unit(0, JobId(0), rat(0), rat(1)); // needs 2
        s.push_unit(1, JobId(1), rat(1), rat(3));
        let errs = verify(&inst, &mut s, &VerifyOptions::migratory()).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, ScheduleError::WrongVolume { job: JobId(0), .. })));
    }

    #[test]
    fn rejects_unknown_job() {
        let inst = two_jobs();
        let mut s = Schedule::new();
        s.push_unit(0, JobId(0), rat(0), rat(2));
        s.push_unit(1, JobId(1), rat(1), rat(3));
        s.push_unit(2, JobId(9), rat(0), rat(1));
        let errs = verify(&inst, &mut s, &VerifyOptions::migratory()).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, ScheduleError::UnknownJob { job: JobId(9) })));
    }

    #[test]
    fn migration_flag() {
        let inst = Instance::from_ints([(0, 4, 2)]);
        let mut s = Schedule::new();
        s.push_unit(0, JobId(0), rat(0), rat(1));
        s.push_unit(1, JobId(0), rat(1), rat(2));
        assert!(verify(&inst, &mut s, &VerifyOptions::migratory()).is_ok());
        let errs = verify(&inst, &mut s, &VerifyOptions::nonmigratory()).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, ScheduleError::Migration { .. })));
    }

    #[test]
    fn preemption_flag() {
        let inst = Instance::from_ints([(0, 6, 2), (1, 3, 2)]);
        let mut s = Schedule::new();
        // j0 preempted by j1
        s.push_unit(0, JobId(0), rat(0), rat(1));
        s.push_unit(0, JobId(1), rat(1), rat(3));
        s.push_unit(0, JobId(0), rat(3), rat(4));
        assert!(verify(&inst, &mut s, &VerifyOptions::nonmigratory()).is_ok());
        let errs = verify(&inst, &mut s, &VerifyOptions::nonpreemptive()).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, ScheduleError::Preemption { job: JobId(0) })));
    }

    #[test]
    fn speed_limit_enforced() {
        let inst = Instance::from_ints([(0, 4, 4)]);
        let mut s = Schedule::new();
        s.push(crate::Segment {
            machine: 0,
            interval: mm_instance::Interval::ints(0, 2),
            job: JobId(0),
            speed: Rat::from(2i64),
        });
        // At unit speed this is overspeed...
        let errs = verify(&inst, &mut s, &VerifyOptions::migratory()).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, ScheduleError::Overspeed { .. })));
        // ...but fine when speed 2 is allowed.
        assert!(verify(
            &inst,
            &mut s,
            &VerifyOptions::migratory().with_speed(Rat::from(2i64))
        )
        .is_ok());
    }

    #[test]
    fn error_display_is_informative() {
        let e = ScheduleError::WrongVolume {
            job: JobId(3),
            processed: rat(1),
            required: rat(2),
        };
        assert_eq!(e.to_string(), "j3 processed 1, requires 2");
    }
}
