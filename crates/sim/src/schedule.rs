//! Exact schedule representation.
//!
//! A [`Schedule`] is a finite set of [`Segment`]s: "machine `i` runs job `j`
//! during `[s, e)` at speed `σ`". All analysis in the workspace — machine
//! counts, migration/preemption statistics, feasibility verification — is
//! computed from this one representation, so algorithms and verifiers cannot
//! drift apart.

use std::collections::BTreeMap;

use mm_instance::{Interval, JobId};
use mm_numeric::Rat;

/// A maximal piece of uninterrupted processing of one job on one machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// Machine index (0-based).
    pub machine: usize,
    /// The half-open execution interval.
    pub interval: Interval,
    /// The job being processed.
    pub job: JobId,
    /// The machine speed during this segment (volume = length × speed).
    pub speed: Rat,
}

impl Segment {
    /// Processing volume delivered by this segment.
    pub fn volume(&self) -> Rat {
        self.interval.length() * &self.speed
    }
}

/// A (partial) schedule on identical parallel machines.
#[derive(Debug, Clone, Default)]
pub struct Schedule {
    segments: Vec<Segment>,
    normalized: bool,
}

impl Schedule {
    /// The empty schedule.
    pub fn new() -> Self {
        Schedule {
            segments: Vec::new(),
            normalized: true,
        }
    }

    /// Appends a segment. Zero-length segments are ignored.
    pub fn push(&mut self, seg: Segment) {
        if seg.interval.is_empty() {
            return;
        }
        assert!(seg.speed.is_positive(), "segment speed must be positive");
        self.segments.push(seg);
        self.normalized = false;
    }

    /// Convenience: append `job` on `machine` during `[start, end)` at speed 1.
    pub fn push_unit(&mut self, machine: usize, job: JobId, start: Rat, end: Rat) {
        self.push(Segment {
            machine,
            interval: Interval::new(start, end),
            job,
            speed: Rat::one(),
        });
    }

    /// All segments (normalized: sorted by machine then start, adjacent
    /// same-job segments merged).
    pub fn segments(&mut self) -> &[Segment] {
        self.normalize();
        &self.segments
    }

    /// Read-only access without normalization.
    pub fn raw_segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Sorts segments and merges touching same-machine same-job same-speed
    /// runs into maximal segments.
    pub fn normalize(&mut self) {
        if self.normalized {
            return;
        }
        self.segments.sort_by(|a, b| {
            a.machine
                .cmp(&b.machine)
                .then_with(|| a.interval.start.cmp(&b.interval.start))
        });
        let mut out: Vec<Segment> = Vec::with_capacity(self.segments.len());
        for seg in self.segments.drain(..) {
            match out.last_mut() {
                Some(last)
                    if last.machine == seg.machine
                        && last.job == seg.job
                        && last.speed == seg.speed
                        && last.interval.end == seg.interval.start =>
                {
                    last.interval.end = seg.interval.end;
                }
                _ => out.push(seg),
            }
        }
        self.segments = out;
        self.normalized = true;
    }

    /// Total processing volume delivered to `job`.
    pub fn processed(&self, job: JobId) -> Rat {
        let mut t = Rat::zero();
        for s in &self.segments {
            if s.job == job {
                t += s.volume();
            }
        }
        t
    }

    /// The set of machines that ever process `job`, in ascending order.
    pub fn machines_of(&self, job: JobId) -> Vec<usize> {
        let mut ms: Vec<usize> = self
            .segments
            .iter()
            .filter(|s| s.job == job)
            .map(|s| s.machine)
            .collect();
        ms.sort_unstable();
        ms.dedup();
        ms
    }

    /// Number of distinct machines with at least one segment.
    pub fn machines_used(&self) -> usize {
        let mut ms: Vec<usize> = self.segments.iter().map(|s| s.machine).collect();
        ms.sort_unstable();
        ms.dedup();
        ms.len()
    }

    /// Highest machine index used plus one (0 if empty).
    pub fn machine_span(&self) -> usize {
        self.segments
            .iter()
            .map(|s| s.machine + 1)
            .max()
            .unwrap_or(0)
    }

    /// Number of migrations: for each job, (distinct machines − 1), summed.
    pub fn migrations(&mut self) -> usize {
        self.normalize();
        let mut by_job: BTreeMap<JobId, Vec<usize>> = BTreeMap::new();
        for s in &self.segments {
            by_job.entry(s.job).or_default().push(s.machine);
        }
        by_job
            .values_mut()
            .map(|ms| {
                ms.sort_unstable();
                ms.dedup();
                ms.len().saturating_sub(1)
            })
            .sum()
    }

    /// Number of preemptions: for each job, (maximal segments − 1), summed,
    /// where back-to-back segments on different machines also count (they
    /// interrupt the run on the original machine).
    pub fn preemptions(&mut self) -> usize {
        self.normalize();
        let mut by_job: BTreeMap<JobId, usize> = BTreeMap::new();
        for s in &self.segments {
            *by_job.entry(s.job).or_insert(0) += 1;
        }
        by_job.values().map(|c| c.saturating_sub(1)).sum()
    }

    /// Whether no job ever runs on two distinct machines.
    pub fn is_nonmigratory(&mut self) -> bool {
        self.migrations() == 0
    }

    /// All segments of one machine, normalized and sorted by start time.
    pub fn machine_segments(&mut self, machine: usize) -> Vec<Segment> {
        self.normalize();
        self.segments
            .iter()
            .filter(|s| s.machine == machine)
            .cloned()
            .collect()
    }

    /// Number of segments (after normalization).
    pub fn len(&mut self) -> usize {
        self.normalize();
        self.segments.len()
    }

    /// Whether the schedule has no segments.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// The latest segment end time, if any.
    pub fn makespan(&self) -> Option<Rat> {
        self.segments.iter().map(|s| s.interval.end.clone()).max()
    }

    /// Total busy time of one machine.
    pub fn busy_time(&self, machine: usize) -> Rat {
        let mut t = Rat::zero();
        for s in &self.segments {
            if s.machine == machine {
                t += s.interval.length();
            }
        }
        t
    }

    /// Mean utilization of the used machines over `[start, end)`: total busy
    /// time divided by `machines_used · (end − start)`. Returns `None` for an
    /// empty schedule or an empty horizon.
    pub fn utilization(&self, start: &Rat, end: &Rat) -> Option<Rat> {
        let horizon = end - start;
        let used = self.machines_used();
        if used == 0 || !horizon.is_positive() {
            return None;
        }
        let mut busy = Rat::zero();
        for s in &self.segments {
            busy += s.interval.length();
        }
        Some(busy / (Rat::from(used as u64) * horizon))
    }

    /// Renumbers machines so that used machines are `0..machines_used()`,
    /// preserving relative order. Returns the mapping old → new.
    pub fn compact_machines(&mut self) -> BTreeMap<usize, usize> {
        let mut used: Vec<usize> = self.segments.iter().map(|s| s.machine).collect();
        used.sort_unstable();
        used.dedup();
        let map: BTreeMap<usize, usize> = used
            .into_iter()
            .enumerate()
            .map(|(new, old)| (old, new))
            .collect();
        for s in &mut self.segments {
            s.machine = map[&s.machine];
        }
        self.normalized = false;
        map
    }

    /// Shifts every segment of `job` onto `machine` (used by offline
    /// transformations). The caller is responsible for re-verifying.
    pub fn reassign_job(&mut self, job: JobId, machine: usize) {
        for s in &mut self.segments {
            if s.job == job {
                s.machine = machine;
            }
        }
        self.normalized = false;
    }

    /// Merges another schedule whose machines are renumbered with `offset`.
    pub fn merge_with_offset(&mut self, other: &Schedule, offset: usize) {
        for s in &other.segments {
            self.segments.push(Segment {
                machine: s.machine + offset,
                interval: s.interval.clone(),
                job: s.job,
                speed: s.speed.clone(),
            });
        }
        self.normalized = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rat(v: i64) -> Rat {
        Rat::from(v)
    }

    #[test]
    fn push_and_volume() {
        let mut s = Schedule::new();
        s.push_unit(0, JobId(1), rat(0), rat(3));
        s.push_unit(0, JobId(1), rat(5), rat(6));
        assert_eq!(s.processed(JobId(1)), rat(4));
        assert_eq!(s.processed(JobId(2)), Rat::zero());
        assert_eq!(s.machines_used(), 1);
    }

    #[test]
    fn zero_length_ignored() {
        let mut s = Schedule::new();
        s.push_unit(0, JobId(1), rat(2), rat(2));
        assert!(s.is_empty());
    }

    #[test]
    fn normalization_merges_touching_runs() {
        let mut s = Schedule::new();
        s.push_unit(0, JobId(1), rat(0), rat(1));
        s.push_unit(0, JobId(1), rat(1), rat(2));
        s.push_unit(0, JobId(2), rat(2), rat(3));
        s.push_unit(0, JobId(1), rat(3), rat(4));
        assert_eq!(s.len(), 3);
        assert_eq!(s.preemptions(), 1); // job 1 split in two runs
    }

    #[test]
    fn speed_affects_volume() {
        let mut s = Schedule::new();
        s.push(Segment {
            machine: 0,
            interval: Interval::ints(0, 4),
            job: JobId(1),
            speed: Rat::ratio(3, 2),
        });
        assert_eq!(s.processed(JobId(1)), rat(6));
    }

    #[test]
    fn different_speeds_do_not_merge() {
        let mut s = Schedule::new();
        s.push(Segment {
            machine: 0,
            interval: Interval::ints(0, 1),
            job: JobId(1),
            speed: Rat::one(),
        });
        s.push(Segment {
            machine: 0,
            interval: Interval::ints(1, 2),
            job: JobId(1),
            speed: Rat::from(2i64),
        });
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn migration_counting() {
        let mut s = Schedule::new();
        s.push_unit(0, JobId(1), rat(0), rat(1));
        s.push_unit(1, JobId(1), rat(1), rat(2));
        s.push_unit(0, JobId(2), rat(1), rat(2));
        assert_eq!(s.migrations(), 1);
        assert!(!s.is_nonmigratory());
        assert_eq!(s.machines_of(JobId(1)), vec![0, 1]);
        assert_eq!(s.machines_of(JobId(2)), vec![0]);
    }

    #[test]
    fn machine_span_vs_used() {
        let mut s = Schedule::new();
        s.push_unit(5, JobId(1), rat(0), rat(1));
        assert_eq!(s.machines_used(), 1);
        assert_eq!(s.machine_span(), 6);
        let map = s.compact_machines();
        assert_eq!(map[&5], 0);
        assert_eq!(s.machine_span(), 1);
    }

    #[test]
    fn reassign_and_merge() {
        let mut a = Schedule::new();
        a.push_unit(0, JobId(1), rat(0), rat(1));
        let mut b = Schedule::new();
        b.push_unit(0, JobId(2), rat(0), rat(1));
        a.merge_with_offset(&b, 3);
        assert_eq!(a.machines_of(JobId(2)), vec![3]);
        a.reassign_job(JobId(2), 1);
        assert_eq!(a.machines_of(JobId(2)), vec![1]);
    }

    #[test]
    fn busy_time_and_utilization() {
        let mut s = Schedule::new();
        s.push_unit(0, JobId(1), rat(0), rat(4));
        s.push_unit(1, JobId(2), rat(2), rat(4));
        assert_eq!(s.busy_time(0), rat(4));
        assert_eq!(s.busy_time(1), rat(2));
        assert_eq!(s.busy_time(7), Rat::zero());
        // 6 busy units over 2 machines × 4 horizon = 3/4
        assert_eq!(s.utilization(&rat(0), &rat(4)), Some(Rat::ratio(3, 4)));
        assert_eq!(s.utilization(&rat(0), &rat(0)), None);
        assert_eq!(Schedule::new().utilization(&rat(0), &rat(4)), None);
    }

    #[test]
    fn makespan() {
        let mut s = Schedule::new();
        assert_eq!(s.makespan(), None);
        s.push_unit(0, JobId(1), rat(0), rat(4));
        s.push_unit(1, JobId(2), rat(2), rat(7));
        assert_eq!(s.makespan(), Some(rat(7)));
    }
}
