//! Behavioural tests for the online driver: event ordering, exact time
//! accounting, pinning, migration enforcement, deadline misses, and adaptive
//! injection.

use std::collections::BTreeMap;

use mm_instance::{Instance, JobId};
use mm_numeric::Rat;
use mm_sim::{
    run_policy, Decision, OnlinePolicy, SimConfig, SimError, SimState, Simulation, VerifyOptions,
};

fn rat(v: i64) -> Rat {
    Rat::from(v)
}

/// Multi-machine EDF: runs the `machines` active jobs with earliest
/// deadlines, machine `i` gets the `i`-th earliest. Migratory.
struct EdfTest;

impl OnlinePolicy for EdfTest {
    fn decide(&mut self, state: &SimState<'_>) -> Decision {
        let mut jobs: Vec<_> = state.active.values().collect();
        jobs.sort_by(|a, b| {
            a.job
                .deadline
                .cmp(&b.job.deadline)
                .then(a.job.id.cmp(&b.job.id))
        });
        Decision {
            run: jobs
                .iter()
                .take(state.machines)
                .enumerate()
                .map(|(m, a)| (m, a.job.id))
                .collect(),
            wake_at: None,
        }
    }
    fn name(&self) -> &'static str {
        "edf-test"
    }
}

/// Non-migratory first-fit: assigns each new job to the lowest machine with
/// no currently-assigned unfinished job, then always runs assigned jobs.
struct PinnedFirstFit {
    assignment: BTreeMap<JobId, usize>,
}

impl PinnedFirstFit {
    fn new() -> Self {
        PinnedFirstFit {
            assignment: BTreeMap::new(),
        }
    }
}

impl OnlinePolicy for PinnedFirstFit {
    fn decide(&mut self, state: &SimState<'_>) -> Decision {
        self.assignment
            .retain(|id, _| state.active.contains_key(id));
        for a in state.active.values() {
            if !self.assignment.contains_key(&a.job.id) {
                let used: Vec<usize> = self.assignment.values().copied().collect();
                let machine = (0..state.machines).find(|m| !used.contains(m)).unwrap_or(0);
                self.assignment.insert(a.job.id, machine);
            }
        }
        Decision {
            run: self.assignment.iter().map(|(j, m)| (*m, *j)).collect(),
            wake_at: None,
        }
    }
}

#[test]
fn single_job_runs_exactly() {
    let inst = Instance::from_ints([(1, 5, 3)]);
    let mut out = run_policy(&inst, EdfTest, SimConfig::migratory(1)).unwrap();
    assert!(out.feasible());
    let segs = out.schedule.segments();
    assert_eq!(segs.len(), 1);
    assert_eq!(segs[0].interval.start, rat(1));
    assert_eq!(segs[0].interval.end, rat(4));
}

#[test]
fn two_jobs_one_machine_edf_order() {
    // j0 (0,10,3), j1 (1,4,2): EDF must preempt j0 for j1.
    let inst = Instance::from_ints([(0, 10, 3), (1, 4, 2)]);
    let mut out = run_policy(&inst, EdfTest, SimConfig::migratory(1)).unwrap();
    assert!(out.feasible());
    mm_sim::verify(
        &out.instance,
        &mut out.schedule,
        &VerifyOptions::migratory(),
    )
    .unwrap();
    assert_eq!(out.schedule.preemptions(), 1);
}

#[test]
fn parallel_machines_used() {
    let inst = Instance::from_ints([(0, 2, 2), (0, 2, 2), (0, 2, 2)]);
    let mut out = run_policy(&inst, EdfTest, SimConfig::migratory(3)).unwrap();
    assert!(out.feasible());
    assert_eq!(out.machines_used(), 3);
    mm_sim::verify(
        &out.instance,
        &mut out.schedule,
        &VerifyOptions::migratory(),
    )
    .unwrap();
}

#[test]
fn overload_records_miss() {
    // Two full-window jobs, one machine: exactly one must miss.
    let inst = Instance::from_ints([(0, 2, 2), (0, 2, 2)]);
    let out = run_policy(&inst, EdfTest, SimConfig::migratory(1)).unwrap();
    assert_eq!(out.misses.len(), 1);
    assert!(!out.feasible());
}

#[test]
fn deadline_miss_partial_progress() {
    // j0 needs 4 in [0,4) but j1 (0,2,2) has an earlier deadline and takes
    // the machine first: j0 can only get 2 units and misses.
    let inst = Instance::from_ints([(0, 4, 4), (0, 2, 2)]);
    let out = run_policy(&inst, EdfTest, SimConfig::migratory(1)).unwrap();
    assert_eq!(out.misses.len(), 1);
    // The missing job is the long one (by canonical order: (0,4,4) has the
    // larger deadline, so it is j0).
    assert_eq!(out.instance.job(out.misses[0]).processing, rat(4));
}

#[test]
fn speed_augmentation_halves_time() {
    let inst = Instance::from_ints([(0, 4, 4)]);
    let cfg = SimConfig::migratory(1).with_speed(rat(2));
    let mut out = run_policy(&inst, EdfTest, cfg).unwrap();
    assert!(out.feasible());
    let segs = out.schedule.segments();
    assert_eq!(segs.len(), 1);
    assert_eq!(segs[0].interval.end, rat(2)); // 4 units at speed 2
                                              // Verification must allow speed 2.
    mm_sim::verify(
        &out.instance,
        &mut out.schedule,
        &VerifyOptions::migratory().with_speed(rat(2)),
    )
    .unwrap();
}

#[test]
fn migration_forbidden_is_enforced() {
    /// Deliberately bounces the only job between machines 0 and 1.
    struct Bouncer {
        flip: bool,
    }
    impl OnlinePolicy for Bouncer {
        fn decide(&mut self, state: &SimState<'_>) -> Decision {
            self.flip = !self.flip;
            let m = if self.flip { 0 } else { 1 };
            let run = state.active.keys().take(1).map(|j| (m, *j)).collect();
            // wake up midway so the second decision happens before completion
            Decision {
                run,
                wake_at: Some(state.time + Rat::one()),
            }
        }
    }
    let inst = Instance::from_ints([(0, 10, 5)]);
    let err = run_policy(&inst, Bouncer { flip: false }, SimConfig::nonmigratory(2)).unwrap_err();
    assert!(matches!(err, SimError::MigrationForbidden { .. }));
    // Same policy is fine when migration is allowed.
    let out = run_policy(&inst, Bouncer { flip: false }, SimConfig::migratory(2)).unwrap();
    assert!(out.feasible());
}

#[test]
fn pinned_first_fit_is_nonmigratory() {
    let inst = Instance::from_ints([(0, 4, 2), (0, 4, 2), (2, 8, 3), (3, 9, 2)]);
    let mut out = run_policy(&inst, PinnedFirstFit::new(), SimConfig::nonmigratory(4)).unwrap();
    assert!(out.feasible());
    mm_sim::verify(
        &out.instance,
        &mut out.schedule,
        &VerifyOptions::nonmigratory(),
    )
    .unwrap();
}

#[test]
fn invalid_decisions_are_rejected() {
    struct BadMachine;
    impl OnlinePolicy for BadMachine {
        fn decide(&mut self, state: &SimState<'_>) -> Decision {
            Decision {
                run: state.active.keys().map(|j| (99, *j)).collect(),
                wake_at: None,
            }
        }
    }
    let inst = Instance::from_ints([(0, 2, 1)]);
    let err = run_policy(&inst, BadMachine, SimConfig::migratory(2)).unwrap_err();
    assert!(matches!(err, SimError::MachineOutOfRange { machine: 99 }));

    struct DoubleBook;
    impl OnlinePolicy for DoubleBook {
        fn decide(&mut self, state: &SimState<'_>) -> Decision {
            let j = *state.active.keys().next().unwrap();
            Decision {
                run: vec![(0, j), (1, j)],
                wake_at: None,
            }
        }
    }
    let err = run_policy(&inst, DoubleBook, SimConfig::migratory(2)).unwrap_err();
    assert!(matches!(err, SimError::DuplicateJob { .. }));

    struct SameMachineTwice;
    impl OnlinePolicy for SameMachineTwice {
        fn decide(&mut self, _state: &SimState<'_>) -> Decision {
            Decision {
                run: vec![(0, JobId(0)), (0, JobId(1))],
                wake_at: None,
            }
        }
    }
    let inst2 = Instance::from_ints([(0, 2, 1), (0, 2, 1)]);
    let err = run_policy(&inst2, SameMachineTwice, SimConfig::migratory(2)).unwrap_err();
    assert!(matches!(err, SimError::DuplicateMachine { machine: 0 }));

    struct GhostJob;
    impl OnlinePolicy for GhostJob {
        fn decide(&mut self, _state: &SimState<'_>) -> Decision {
            Decision {
                run: vec![(0, JobId(77))],
                wake_at: None,
            }
        }
    }
    let err = run_policy(&inst, GhostJob, SimConfig::migratory(2)).unwrap_err();
    assert!(matches!(err, SimError::UnknownJob { job: JobId(77) }));
}

#[test]
fn idle_policy_misses_everything() {
    struct Lazy;
    impl OnlinePolicy for Lazy {
        fn decide(&mut self, _state: &SimState<'_>) -> Decision {
            Decision::idle()
        }
    }
    let inst = Instance::from_ints([(0, 2, 1), (1, 3, 1)]);
    let out = run_policy(&inst, Lazy, SimConfig::migratory(2)).unwrap();
    assert_eq!(out.misses.len(), 2);
}

#[test]
fn wake_at_reinvokes_policy() {
    /// Counts invocations; finishes the job but asks for a wake-up at t+1/2.
    struct Waker {
        calls: std::rc::Rc<std::cell::Cell<usize>>,
    }
    impl OnlinePolicy for Waker {
        fn decide(&mut self, state: &SimState<'_>) -> Decision {
            self.calls.set(self.calls.get() + 1);
            Decision {
                run: state.active.keys().take(1).map(|j| (0, *j)).collect(),
                wake_at: Some(state.time + Rat::half()),
            }
        }
    }
    let calls = std::rc::Rc::new(std::cell::Cell::new(0));
    let inst = Instance::from_ints([(0, 4, 2)]);
    let out = run_policy(
        &inst,
        Waker {
            calls: calls.clone(),
        },
        SimConfig::migratory(1),
    )
    .unwrap();
    assert!(out.feasible());
    // job of length 2 with wake-ups every 1/2: 4 running decisions
    assert_eq!(calls.get(), 4);
}

#[test]
fn step_limit_guards_runaway_wakeups() {
    struct Spinner;
    impl OnlinePolicy for Spinner {
        fn decide(&mut self, state: &SimState<'_>) -> Decision {
            // Never runs anything; wakes up in halving steps so the deadline
            // is approached but decision count explodes.
            let quarter = Rat::ratio(1, 4);
            let gap = (Rat::from(2i64) - state.time) * quarter;
            Decision {
                run: vec![],
                wake_at: Some(state.time + gap),
            }
        }
    }
    let inst = Instance::from_ints([(0, 2, 1)]);
    let mut cfg = SimConfig::migratory(1);
    cfg.max_steps = 100;
    let err = run_policy(&inst, Spinner, cfg).unwrap_err();
    // The error reports how far the run got before the budget ran out.
    assert!(matches!(
        err,
        SimError::StepLimitExceeded { steps: 100, .. }
    ));
}

#[test]
fn adaptive_injection_reacts_to_policy() {
    // The "adversary" watches where the first job is pinned and injects a
    // second job; the pinned machine must be observable at inspection time.
    let cfg = SimConfig::nonmigratory(2);
    let mut sim = Simulation::new(cfg, PinnedFirstFit::new());
    let j0 = sim.inject(rat(0), rat(10), rat(6));
    sim.run_until(&rat(2)).unwrap();
    let m0 = sim.machine_of(j0).expect("j0 must have started");
    // Inject a conflicting job released *now*.
    let j1 = sim.inject(rat(2), rat(6), rat(3));
    sim.run_until(&rat(3)).unwrap();
    let m1 = sim.machine_of(j1).expect("j1 must have started");
    assert_ne!(m0, m1, "first-fit must use the free machine");
    let out = sim.finish().unwrap();
    assert!(out.feasible());
    assert_eq!(out.instance.len(), 2);
}

#[test]
fn run_until_stops_exactly_and_preserves_state() {
    let cfg = SimConfig::migratory(1);
    let mut sim = Simulation::new(cfg, EdfTest);
    sim.inject(rat(0), rat(10), rat(4));
    sim.run_until(&Rat::ratio(5, 2)).unwrap();
    assert_eq!(sim.time(), &Rat::ratio(5, 2));
    // 5/2 units processed, 3/2 remaining
    assert_eq!(sim.remaining(JobId(0)), Some(Rat::ratio(3, 2)));
    sim.run_until(&rat(4)).unwrap();
    assert!(sim.is_finished(JobId(0)));
}

#[test]
fn instance_ids_match_schedule_ids() {
    // Inject jobs out of canonical order; the outcome instance must resolve
    // ids to the right jobs.
    let cfg = SimConfig::migratory(3);
    let mut sim = Simulation::new(cfg, EdfTest);
    let a = sim.inject(rat(0), rat(5), rat(1)); // earlier deadline
    let b = sim.inject(rat(0), rat(9), rat(1)); // later deadline, same release
    let out = sim.finish().unwrap();
    assert_eq!(out.instance.job(a).deadline, rat(5));
    assert_eq!(out.instance.job(b).deadline, rat(9));
    assert!(out.feasible());
    let _ = (a, b);
}

#[test]
fn fractional_times_are_exact() {
    // Windows with denominator 7; completion times must be exact.
    let inst = Instance::from_triples([(Rat::ratio(1, 7), Rat::ratio(6, 7), Rat::ratio(2, 7))]);
    let mut out = run_policy(&inst, EdfTest, SimConfig::migratory(1)).unwrap();
    assert!(out.feasible());
    let segs = out.schedule.segments();
    assert_eq!(segs[0].interval.start, Rat::ratio(1, 7));
    assert_eq!(segs[0].interval.end, Rat::ratio(3, 7));
}

#[test]
fn machine_failure_fault_drops_work_deterministically() {
    use mm_fault::{FaultInjector, FaultPlan, FaultSite};
    // One machine, one job that exactly fits its window: any dropped step
    // turns into a deadline miss.
    let run = |plan: FaultPlan| {
        let cfg = SimConfig::migratory(1);
        let mut sim = Simulation::new(cfg, EdfTest).with_faults(FaultInjector::new(plan));
        sim.inject(rat(0), rat(4), rat(4));
        let out = sim.finish().unwrap();
        (out.misses.len(), out.steps)
    };
    let clean = run(FaultPlan::none());
    assert_eq!(clean.0, 0);
    let faulty = run(FaultPlan::once(FaultSite::MachineFailure, 1));
    assert_eq!(faulty.0, 1, "a failed step on a tight job forces a miss");
    // Determinism: identical plans give identical outcomes.
    assert_eq!(faulty, run(FaultPlan::once(FaultSite::MachineFailure, 1)));
}

#[test]
fn machine_slowdown_fault_halves_speed_and_verifies() {
    use mm_fault::{FaultInjector, FaultPlan, FaultSite};
    // A loose window tolerates the slow segment; the schedule stays valid
    // under the default speed *cap* of 1.
    let cfg = SimConfig::migratory(1);
    let mut sim = Simulation::new(cfg, EdfTest).with_faults(FaultInjector::new(FaultPlan::once(
        FaultSite::MachineSlowdown,
        1,
    )));
    sim.inject(rat(0), rat(10), rat(2));
    let mut out = sim.finish().unwrap();
    assert!(out.feasible());
    let slow = out
        .schedule
        .segments()
        .iter()
        .filter(|s| s.speed == Rat::ratio(1, 2))
        .count();
    assert!(
        slow >= 1,
        "the slowdown fault must leave a half-speed segment"
    );
    mm_sim::verify(&out.instance, &mut out.schedule, &VerifyOptions::default()).unwrap();
}

#[test]
fn with_max_steps_is_honored_with_trace_event() {
    use mm_trace::{TraceEvent, VecSink};
    // A wake-up-loop policy that never finishes its job.
    struct Spinner;
    impl OnlinePolicy for Spinner {
        fn decide(&mut self, state: &SimState<'_>) -> Decision {
            Decision {
                run: vec![],
                wake_at: Some(state.time + &Rat::ratio(1, 1000)),
            }
        }
    }
    let cfg = SimConfig::migratory(1).with_max_steps(10);
    let mut sink = VecSink::new();
    let mut sim = Simulation::with_sink(cfg, Spinner, &mut sink);
    sim.inject(rat(0), rat(1_000_000), rat(1));
    let err = sim.finish().expect_err("step limit must trip");
    assert!(matches!(err, SimError::StepLimitExceeded { steps: 10, .. }));
    assert_eq!(
        sink.count(|e| matches!(e, TraceEvent::StepLimitExceeded { .. })),
        1
    );
}
