//! Property tests of the driver itself: a "chaos" policy making arbitrary
//! (but rule-abiding) decisions must always produce schedules the
//! independent verifier accepts structurally — window containment, no
//! overlaps, never over-processing, and non-migration when pinned.

use mm_instance::{Instance, JobId};
use mm_numeric::Rat;
use mm_sim::{run_policy, verify, Decision, OnlinePolicy, SimConfig, SimState, VerifyOptions};
use proptest::prelude::*;

/// Deterministic pseudo-random policy: every decision picks an arbitrary
/// subset of active jobs for an arbitrary subset of machines, respecting
/// pinning constraints. The chosen jobs depend on the internal counter, so
/// the schedule preempts and idles erratically.
struct Chaos {
    counter: u64,
    salt: u64,
    pins: std::collections::BTreeMap<JobId, usize>,
}

impl Chaos {
    fn new(salt: u64) -> Self {
        Chaos {
            counter: 0,
            salt,
            pins: Default::default(),
        }
    }

    fn coin(&mut self) -> u64 {
        self.counter = self
            .counter
            .wrapping_mul(6364136223846793005)
            .wrapping_add(self.salt | 1);
        self.counter >> 33
    }
}

impl OnlinePolicy for Chaos {
    fn decide(&mut self, state: &SimState<'_>) -> Decision {
        let mut run = Vec::new();
        let mut used = vec![false; state.machines];
        for a in state.active.values() {
            if self.coin().is_multiple_of(3) {
                continue; // randomly idle this job
            }
            let pin = self.pins.get(&a.job.id).copied();
            let machine = match pin {
                Some(m) => m,
                None => (self.coin() as usize) % state.machines,
            };
            if machine < state.machines && !used[machine] {
                used[machine] = true;
                self.pins.insert(a.job.id, machine);
                run.push((machine, a.job.id));
            }
        }
        // Occasionally request a wake-up to exercise mid-flight decisions.
        let wake = if self.coin().is_multiple_of(4) {
            Some(state.time + Rat::ratio(1, 3))
        } else {
            None
        };
        Decision { run, wake_at: wake }
    }

    fn name(&self) -> &'static str {
        "chaos"
    }
}

fn arb_instance() -> impl Strategy<Value = Instance> {
    let job = (0i64..20, 1i64..10, 1i64..8).prop_map(|(r, w, p)| (r, r + w, p.min(w)));
    proptest::collection::vec(job, 1..15).prop_map(Instance::from_ints)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn chaos_schedules_are_structurally_sound(inst in arb_instance(), salt in any::<u64>(), machines in 1usize..5) {
        let out = run_policy(&inst, Chaos::new(salt), SimConfig::nonmigratory(machines))
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        let mut sched = out.schedule;
        // Structural verification: partial volumes allowed (chaos misses),
        // but everything else must hold, including non-migration.
        let opts = VerifyOptions::nonmigratory().partial();
        verify(&out.instance, &mut sched, &opts)
            .map_err(|e| TestCaseError::fail(format!("{e:?}")))?;
        // Conservation: processed + missed-remainder accounts for all volume.
        for job in out.instance.iter() {
            let processed = sched.processed(job.id);
            prop_assert!(processed <= job.processing);
            if !out.misses.contains(&job.id) {
                prop_assert_eq!(&processed, &job.processing, "{} not missed but incomplete", job.id);
            }
        }
    }

    #[test]
    fn simulation_time_is_monotone_and_bounded(inst in arb_instance(), salt in any::<u64>()) {
        let out = run_policy(&inst, Chaos::new(salt), SimConfig::migratory(3))
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        // The driver never runs past the last deadline plus nothing — every
        // segment ends by the global deadline horizon.
        let horizon = out.instance.max_deadline().unwrap();
        if let Some(mk) = out.schedule.makespan() {
            prop_assert!(mk <= horizon);
        }
        // Steps stay bounded well below the safety cap.
        prop_assert!(out.steps < 100_000);
    }
}

mod faults {
    //! Fault-injection properties: a seeded [`FaultPlan`] never panics the
    //! driver, never breaks structural soundness, and replays bit-identically
    //! — plus the step cap is honored on every path.

    use super::{arb_instance, Chaos};
    use mm_fault::{FaultInjector, FaultPlan, FaultSite};
    use mm_sim::{run_policy, verify, SimConfig, SimError, Simulation, VerifyOptions};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Machine failures and slowdowns leave the run clean: no panic, a
        /// structurally verifiable schedule, and identical outcomes (and
        /// fired-fault counters) across two replays of the same seeds.
        #[test]
        fn faulty_runs_are_sound_and_deterministic(
            inst in arb_instance(),
            salt in any::<u64>(),
            fseed in any::<u64>(),
            machines in 1usize..4,
        ) {
            let run = || {
                let mut sim = Simulation::from_instance(
                    SimConfig::nonmigratory(machines),
                    Chaos::new(salt),
                    &inst,
                )
                .with_faults(FaultInjector::new(FaultPlan::chaos(fseed)));
                sim.run_to_completion()
                    .map_err(|e| TestCaseError::fail(e.to_string()))?;
                let failures = sim.injector().fired(FaultSite::MachineFailure);
                let slowdowns = sim.injector().fired(FaultSite::MachineSlowdown);
                let out = sim
                    .finish()
                    .map_err(|e| TestCaseError::fail(e.to_string()))?;
                Ok::<_, TestCaseError>((out, failures, slowdowns))
            };
            let (a, failures_a, slowdowns_a) = run()?;
            let (b, failures_b, slowdowns_b) = run()?;
            prop_assert_eq!(failures_a, failures_b);
            prop_assert_eq!(slowdowns_a, slowdowns_b);
            prop_assert_eq!(a.steps, b.steps);
            prop_assert_eq!(&a.misses, &b.misses);
            // Dropped and slowed work can only lose volume, never invent it:
            // the schedule still verifies structurally (partial volumes OK).
            let mut sched = a.schedule;
            let opts = VerifyOptions::nonmigratory().partial();
            verify(&a.instance, &mut sched, &opts)
                .map_err(|e| TestCaseError::fail(format!("{e:?}")))?;
            for job in a.instance.iter() {
                prop_assert!(sched.processed(job.id) <= job.processing);
            }
        }

        /// Every driver path honors `max_steps`: the run either finishes
        /// within the cap or reports `StepLimitExceeded` at exactly the cap —
        /// it never spins past it and never panics.
        #[test]
        fn step_limit_is_always_honored(
            inst in arb_instance(),
            salt in any::<u64>(),
            cap in 1usize..40,
        ) {
            let cfg = SimConfig::migratory(2).with_max_steps(cap);
            match run_policy(&inst, Chaos::new(salt), cfg) {
                Ok(out) => prop_assert!(out.steps <= cap),
                Err(SimError::StepLimitExceeded { steps, .. }) => prop_assert_eq!(steps, cap),
                Err(e) => return Err(TestCaseError::fail(e.to_string())),
            }
        }
    }
}
