//! Trace invariants: the event stream emitted by the driver must agree with
//! the facts the independent verifier extracts from the finished schedule —
//! machines opened, migrations, preemptions — and with the simulation
//! outcome (misses, completions), on both hand-built and property-generated
//! instances.

use mm_instance::{Instance, JobId};
use mm_numeric::Rat;
use mm_sim::{
    run_policy_traced, verify, Decision, OnlinePolicy, SimConfig, SimState, VerifyOptions,
};
use mm_trace::{MetricsSink, TeeSink, TraceEvent, VecSink};
use proptest::prelude::*;

/// Deterministic pseudo-random policy. With `pin: true` it never moves a job
/// off the machine that first ran it (legal under `forbid_migration`); with
/// `pin: false` it scatters jobs across machines to force migrations.
struct Scatter {
    counter: u64,
    salt: u64,
    pin: bool,
    pins: std::collections::BTreeMap<JobId, usize>,
}

impl Scatter {
    fn new(salt: u64, pin: bool) -> Self {
        Scatter {
            counter: 0,
            salt,
            pin,
            pins: Default::default(),
        }
    }

    fn coin(&mut self) -> u64 {
        self.counter = self
            .counter
            .wrapping_mul(6364136223846793005)
            .wrapping_add(self.salt | 1);
        self.counter >> 33
    }
}

impl OnlinePolicy for Scatter {
    fn decide(&mut self, state: &SimState<'_>) -> Decision {
        let mut run = Vec::new();
        let mut used = vec![false; state.machines];
        for a in state.active.values() {
            if self.coin().is_multiple_of(5) {
                continue; // randomly idle this job
            }
            let candidate = (self.coin() as usize) % state.machines;
            let machine = if self.pin {
                *self.pins.entry(a.job.id).or_insert(candidate)
            } else {
                candidate
            };
            if machine < state.machines && !used[machine] {
                used[machine] = true;
                run.push((machine, a.job.id));
            }
        }
        Decision { run, wake_at: None }
    }

    fn name(&self) -> &'static str {
        "scatter"
    }
}

fn run_traced(
    inst: &Instance,
    cfg: SimConfig,
    pin: bool,
    salt: u64,
) -> (mm_sim::SimOutcome, VecSink, MetricsSink) {
    let mut events = VecSink::new();
    let mut metrics = MetricsSink::new();
    let out = run_policy_traced(
        inst,
        Scatter::new(salt, pin),
        cfg,
        TeeSink(&mut events, &mut metrics),
    )
    .expect("sim error");
    (out, events, metrics)
}

#[test]
fn forbid_migration_means_zero_migrated_events() {
    let inst = Instance::from_ints([(0, 8, 3), (0, 6, 2), (1, 9, 4), (2, 10, 3), (3, 12, 2)]);
    for salt in 0..8 {
        let (out, events, metrics) = run_traced(&inst, SimConfig::nonmigratory(3), true, salt);
        assert_eq!(
            events.count(|e| matches!(e, TraceEvent::Migrated { .. })),
            0,
            "salt {salt}"
        );
        assert_eq!(metrics.metrics.migrations, 0);
        let mut sched = out.schedule;
        let stats = verify(
            &out.instance,
            &mut sched,
            &VerifyOptions::nonmigratory().partial(),
        )
        .expect("structurally sound");
        assert_eq!(stats.migrations, 0);
    }
}

#[test]
fn machine_opened_count_equals_machines_used() {
    let inst = Instance::from_ints([(0, 4, 2), (0, 4, 2), (0, 4, 2), (2, 8, 3), (4, 9, 2)]);
    for salt in 0..8 {
        let (out, events, metrics) = run_traced(&inst, SimConfig::migratory(4), false, salt);
        let opened = events.count(|e| matches!(e, TraceEvent::MachineOpened { .. }));
        assert_eq!(opened, out.machines_used(), "salt {salt}");
        assert_eq!(
            metrics.metrics.machines_opened as usize,
            out.machines_used()
        );
    }
}

#[test]
fn scattering_policy_migrations_match_verifier() {
    // Three full-window jobs on two machines: EDF-like sharing forces real
    // migrations, which the trace and the verifier must count identically.
    let inst = Instance::from_ints([(0, 6, 4), (0, 6, 4), (0, 8, 5), (1, 9, 3)]);
    let mut saw_migration = false;
    for salt in 0..16 {
        let (out, events, metrics) = run_traced(&inst, SimConfig::migratory(3), false, salt);
        let mut sched = out.schedule;
        let stats = verify(
            &out.instance,
            &mut sched,
            &VerifyOptions::migratory().partial(),
        )
        .expect("structurally sound");
        assert_eq!(
            metrics.metrics.migrations as usize, stats.migrations,
            "salt {salt}"
        );
        assert_eq!(
            events.count(|e| matches!(e, TraceEvent::Migrated { .. })),
            stats.migrations,
            "salt {salt}"
        );
        saw_migration |= stats.migrations > 0;
    }
    assert!(
        saw_migration,
        "test instance never migrated — not exercising the invariant"
    );
}

/// A policy that idles forever but keeps requesting wake-ups: every decision
/// event burns a step with no progress, so any step cap is exhausted.
struct WakeLoop;

impl OnlinePolicy for WakeLoop {
    fn decide(&mut self, state: &SimState<'_>) -> Decision {
        Decision {
            run: Vec::new(),
            wake_at: Some(state.time + Rat::ratio(1, 8)),
        }
    }

    fn name(&self) -> &'static str {
        "wake-loop"
    }
}

#[test]
fn step_limit_event_accompanies_the_error() {
    let inst = Instance::from_ints([(0, 50, 10), (0, 50, 10), (0, 50, 10)]);
    let mut cfg = SimConfig::migratory(1);
    cfg.max_steps = 4;
    let mut events = VecSink::new();
    let err = run_policy_traced(&inst, WakeLoop, cfg, &mut events)
        .expect_err("must exhaust the step cap");
    assert!(
        matches!(err, mm_sim::SimError::StepLimitExceeded { steps: 4, .. }),
        "{err}"
    );
    assert_eq!(
        events.count(|e| matches!(e, TraceEvent::StepLimitExceeded { .. })),
        1
    );
    let msg = err.to_string();
    assert!(msg.contains("step limit"), "{msg}");
    assert!(msg.contains('4'), "{msg}");
}

fn arb_instance() -> impl Strategy<Value = Instance> {
    let job = (0i64..20, 1i64..10, 1i64..8).prop_map(|(r, w, p)| (r, r + w, p.min(w)));
    proptest::collection::vec(job, 1..12).prop_map(Instance::from_ints)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn trace_counters_match_schedule_facts(
        inst in arb_instance(),
        salt in any::<u64>(),
        machines in 1usize..4,
        pin in any::<bool>(),
    ) {
        let cfg = if pin {
            SimConfig::nonmigratory(machines)
        } else {
            SimConfig::migratory(machines)
        };
        let opts = if pin {
            VerifyOptions::nonmigratory().partial()
        } else {
            VerifyOptions::migratory().partial()
        };
        let (out, events, metrics) = run_traced(&inst, cfg, pin, salt);
        let m = &metrics.metrics;

        // Release / completion accounting against the simulation outcome.
        prop_assert_eq!(m.jobs_released as usize, out.instance.len());
        prop_assert_eq!(m.deadline_misses as usize, out.misses.len());
        prop_assert_eq!(
            (m.completions + m.deadline_misses) as usize,
            out.instance.len(),
            "every job either completes or misses exactly once"
        );

        // Schedule-fact accounting against the independent verifier.
        let mut sched = out.schedule;
        let stats = verify(&out.instance, &mut sched, &opts)
            .map_err(|e| TestCaseError::fail(format!("{e:?}")))?;
        prop_assert_eq!(m.machines_opened as usize, stats.machines_used);
        prop_assert_eq!(m.migrations as usize, stats.migrations);
        prop_assert_eq!(m.preemptions as usize, stats.preemptions);

        // The event stream and the aggregated counters agree.
        prop_assert_eq!(
            events.count(|e| matches!(e, TraceEvent::MachineOpened { .. })) as u64,
            m.machines_opened
        );
        prop_assert_eq!(
            events.count(|e| matches!(e, TraceEvent::Preempted { .. })) as u64,
            m.preemptions
        );

        // Histograms are consistent with their scalar totals.
        prop_assert_eq!(m.preemptions_per_job.iter().sum::<u64>(), m.preemptions);
        prop_assert!(m.events_per_machine.len() >= stats.machines_used);
    }
}
