//! Job and instance model for online machine minimization.
//!
//! This crate defines the problem data of Chen–Megow–Schewior (SPAA'16):
//! preemptable jobs `j = (r_j, d_j, p_j)` to be scheduled inside their time
//! windows `[r_j, d_j)` on identical machines. It provides:
//!
//! * [`Job`], [`JobId`], [`Instance`] — the core model with the paper's
//!   derived quantities (laxity `ℓ_j`, latest assignment time `a_j`, earliest
//!   finish time `f_j`, α-loose/tight classification, contributions
//!   `C(j, I)` from Theorem 1);
//! * [`Interval`] / [`IntervalSet`] — half-open intervals and finite disjoint
//!   unions, the objects Theorem 1 quantifies over;
//! * structural classification ([`Instance::is_agreeable`],
//!   [`Instance::is_laminar`]) of the special cases from Sections 5 and 6;
//! * the window/processing transforms of Lemmas 3 and 4
//!   ([`Instance::shrink_windows_left`], [`Instance::shrink_windows_right`],
//!   [`Instance::scale_processing`]) and the affine embedding used by the
//!   lower-bound adversary;
//! * deterministic, seeded workload [`generators`].
//!
//! # Example
//!
//! ```
//! use mm_instance::{Instance, StructureClass};
//! use mm_numeric::Rat;
//!
//! let inst = Instance::from_ints([(0, 10, 4), (1, 5, 2), (6, 9, 1)]);
//! assert!(inst.is_laminar());
//! assert_eq!(inst.classify(), StructureClass::Laminar);
//! assert!(inst.jobs()[0].is_loose(&Rat::ratio(1, 2)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generators;
mod instance;
mod interval;
pub mod io;
mod job;

pub use instance::{Instance, StructureClass, ValidationReport};
pub use interval::{Interval, IntervalSet};
pub use job::{Job, JobDefect, JobId};
