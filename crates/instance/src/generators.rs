//! Workload generators.
//!
//! Each generator is deterministic given its seed and produces instances that
//! are feasible by construction (`0 < p_j ≤ d_j − r_j`). The families mirror
//! the instance classes studied in the paper: general, α-loose, α-tight,
//! agreeable (Section 6), laminar (Section 5), plus the adversarial-flavoured
//! deterministic families used as baselines for the experiments.
//!
//! Every generator routes its triples through
//! [`Instance::sanitize_triples`], so even a pathological configuration
//! (e.g. a zero-length window produced by extreme parameters) degrades to a
//! smaller valid instance instead of panicking.

use mm_numeric::Rat;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::Instance;

/// Configuration for the general-purpose uniform generator.
#[derive(Debug, Clone)]
pub struct UniformCfg {
    /// Number of jobs.
    pub n: usize,
    /// Releases are drawn uniformly from `{0, …, horizon−1}`.
    pub horizon: i64,
    /// Window lengths are drawn uniformly from `{min_window, …, max_window}`.
    pub min_window: i64,
    /// See `min_window`.
    pub max_window: i64,
}

impl Default for UniformCfg {
    fn default() -> Self {
        UniformCfg {
            n: 50,
            horizon: 100,
            min_window: 1,
            max_window: 20,
        }
    }
}

/// General instances: uniform releases, uniform window lengths, processing
/// uniform in `[1, window]`.
pub fn uniform(cfg: &UniformCfg, seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let triples = (0..cfg.n).map(|_| {
        let r = rng.gen_range(0..cfg.horizon);
        let w = rng.gen_range(cfg.min_window..=cfg.max_window);
        let p = rng.gen_range(1..=w);
        (Rat::from(r), Rat::from(r + w), Rat::from(p))
    });
    Instance::sanitize_triples(triples.collect::<Vec<_>>()).0
}

/// α-loose instances: every job satisfies `p_j ≤ α (d_j − r_j)`.
///
/// `alpha` is given as a rational; windows are chosen so that `⌊α·w⌋ ≥ 1`.
pub fn loose(cfg: &UniformCfg, alpha: &Rat, seed: u64) -> Instance {
    assert!(alpha.is_positive() && *alpha < Rat::one(), "alpha ∈ (0,1)");
    let mut rng = StdRng::seed_from_u64(seed);
    let triples = (0..cfg.n)
        .map(|_| {
            let r = rng.gen_range(0..cfg.horizon);
            // Ensure the loose budget α·w admits at least one unit of work.
            let min_w = cfg
                .min_window
                .max(alpha.recip().ceil().to_i64().expect("alpha too small"));
            let w = rng.gen_range(min_w..=cfg.max_window.max(min_w));
            let budget = (alpha * Rat::from(w)).floor().to_i64().unwrap().max(1);
            let p = rng.gen_range(1..=budget);
            (Rat::from(r), Rat::from(r + w), Rat::from(p))
        })
        .collect::<Vec<_>>();
    Instance::sanitize_triples(triples).0
}

/// α-tight instances: every job satisfies `p_j > α (d_j − r_j)`.
pub fn tight(cfg: &UniformCfg, alpha: &Rat, seed: u64) -> Instance {
    assert!(alpha.is_positive() && *alpha < Rat::one(), "alpha ∈ (0,1)");
    let mut rng = StdRng::seed_from_u64(seed);
    let triples = (0..cfg.n)
        .map(|_| {
            let r = rng.gen_range(0..cfg.horizon);
            let w = rng.gen_range(cfg.min_window.max(1)..=cfg.max_window);
            // p uniform in (α·w, w]: strictly tight, still feasible.
            let lo = (alpha * Rat::from(w)).floor().to_i64().unwrap() + 1;
            let p = rng.gen_range(lo.min(w)..=w).max(1);
            (Rat::from(r), Rat::from(r + w), Rat::from(p))
        })
        .collect::<Vec<_>>();
    Instance::sanitize_triples(triples).0
}

/// Configuration for the agreeable generator.
#[derive(Debug, Clone)]
pub struct AgreeableCfg {
    /// Number of jobs.
    pub n: usize,
    /// Mean gap between consecutive releases.
    pub release_gap: i64,
    /// Minimum and maximum window length.
    pub min_window: i64,
    /// See `min_window`.
    pub max_window: i64,
    /// If set, all jobs get this identical processing time (the Theorem 15
    /// setting); otherwise processing is uniform in `[1, window]`.
    pub unit_processing: Option<i64>,
}

impl Default for AgreeableCfg {
    fn default() -> Self {
        AgreeableCfg {
            n: 50,
            release_gap: 2,
            min_window: 4,
            max_window: 20,
            unit_processing: None,
        }
    }
}

/// Agreeable instances: releases are non-decreasing and deadlines follow the
/// same order (`r_j < r_{j'}` ⟹ `d_j ≤ d_{j'}`).
pub fn agreeable(cfg: &AgreeableCfg, seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut triples = Vec::with_capacity(cfg.n);
    let mut r = 0i64;
    let mut last_d = 0i64;
    for _ in 0..cfg.n {
        r += rng.gen_range(0..=cfg.release_gap);
        let w = rng.gen_range(cfg.min_window..=cfg.max_window);
        // Force the deadline to respect agreeability w.r.t. earlier jobs.
        let d = (r + w).max(last_d);
        last_d = d;
        let window = d - r;
        let p = match cfg.unit_processing {
            Some(p) => p.min(window).max(1),
            None => rng.gen_range(1..=window),
        };
        triples.push((Rat::from(r), Rat::from(d), Rat::from(p)));
    }
    Instance::sanitize_triples(triples).0
}

/// Configuration for the laminar generator.
#[derive(Debug, Clone)]
pub struct LaminarCfg {
    /// Recursion depth of the nesting tree.
    pub depth: usize,
    /// Children per node.
    pub branching: usize,
    /// Length of the root window.
    pub root_length: i64,
    /// Upper bound on `p_j / |I(j)|` as a rational in (0, 1].
    pub max_fill: Rat,
}

impl Default for LaminarCfg {
    fn default() -> Self {
        LaminarCfg {
            depth: 4,
            branching: 3,
            root_length: 3i64.pow(6),
            max_fill: Rat::ratio(9, 10),
        }
    }
}

/// Laminar instances: a recursive nesting tree. Every node owns a window; a
/// node's children get disjoint sub-windows, so any two overlapping windows
/// are nested.
pub fn laminar(cfg: &LaminarCfg, seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut triples = Vec::new();
    fn rec(
        rng: &mut StdRng,
        out: &mut Vec<(Rat, Rat, Rat)>,
        start: Rat,
        end: Rat,
        depth: usize,
        branching: usize,
        max_fill: &Rat,
    ) {
        let len = &end - &start;
        if !len.is_positive() {
            return;
        }
        // One job per node; fill factor uniform in (0, max_fill].
        let fill_num = rng.gen_range(1..=1000i64);
        let fill = Rat::ratio(fill_num, 1000) * max_fill.clone();
        let p = &len * &fill;
        if p.is_positive() {
            out.push((start.clone(), end.clone(), p));
        }
        if depth == 0 {
            return;
        }
        // Children occupy disjoint equal slices separated by small gaps.
        let k = branching.max(1);
        let slice = &len / Rat::from((2 * k) as i64);
        for c in 0..k {
            let s = &start + Rat::from((2 * c) as i64) * &slice;
            let e = &s + &slice;
            rec(rng, out, s, e, depth - 1, branching, max_fill);
        }
    }
    rec(
        &mut rng,
        &mut triples,
        Rat::zero(),
        Rat::from(cfg.root_length),
        cfg.depth,
        cfg.branching,
        &cfg.max_fill,
    );
    Instance::sanitize_triples(triples).0
}

/// A *hard* laminar family in the spirit of Phillips et al. [10, Thm 2.13]
/// (referenced in Section 5.1 as defeating the greedy min-candidate rule):
/// a deep chain of nested jobs whose laxities shrink geometrically, overlaid
/// with bursts of small jobs that must share the chain jobs' machines.
pub fn laminar_hard_chain(levels: usize, burst: usize) -> Instance {
    // Level i: window [0, 4^(levels-i)), processing chosen so the laxity is
    // one quarter of the window. Bursts at each level: `burst` short jobs
    // inside the level's exclusive region.
    let mut triples = Vec::new();
    for i in 0..levels {
        let window = Rat::from(4i64.pow((levels - i) as u32));
        let p = &window * Rat::ratio(3, 4);
        triples.push((Rat::zero(), window.clone(), p));
        // Burst jobs live in [window/2, window), which the next level does
        // not cover (next window is window/4).
        let burst_start = &window * Rat::half();
        let slot = (&window - &burst_start) / Rat::from((burst.max(1)) as i64);
        for b in 0..burst {
            let s = &burst_start + Rat::from(b as i64) * &slot;
            let e = &s + &slot;
            let p = (&e - &s) * Rat::ratio(9, 10);
            triples.push((s, e, p));
        }
    }
    Instance::sanitize_triples(triples).0
}

/// Deterministic “EDF trap” family (baseline experiment E10, exposing the
/// laxity-blindness of EDF that Phillips et al. exploit in their lower
/// bounds): each phase releases
///
/// * `tracks` zero-laxity *long* jobs with window `[t, t+10)` and `p = 10`
///   (late deadline, **no** slack), and
/// * `shorts` high-laxity *short* jobs with window `[t, t+3)` and `p = 1`
///   (early deadline, plenty of slack).
///
/// EDF prioritizes the shorts (earlier deadline) and starves the longs, so
/// it needs `tracks + shorts` machines; the optimum — and LLF, which runs
/// the zero-laxity longs first — needs only `tracks + ⌈shorts/3⌉`.
pub fn edf_trap(tracks: usize, shorts: usize, phases: usize) -> Instance {
    let mut triples = Vec::new();
    for phase in 0..phases.max(1) {
        let t = Rat::from((12 * phase) as i64);
        for _ in 0..tracks {
            triples.push((t.clone(), &t + Rat::from(10i64), Rat::from(10i64)));
        }
        for _ in 0..shorts {
            triples.push((t.clone(), &t + Rat::from(3i64), Rat::one()));
        }
    }
    Instance::sanitize_triples(triples).0
}

/// A periodic hard-real-time task, for [`periodic`].
#[derive(Debug, Clone)]
pub struct PeriodicTask {
    /// Activation period.
    pub period: i64,
    /// Worst-case execution time (the job processing time), `≤ deadline`.
    pub wcet: i64,
    /// Relative deadline from each activation, `≤ period` (constrained
    /// deadlines) or `> period` (arbitrary deadlines) both allowed.
    pub deadline: i64,
    /// Initial phase offset.
    pub phase: i64,
}

impl PeriodicTask {
    /// Utilization `wcet / period`.
    pub fn utilization(&self) -> Rat {
        Rat::ratio(self.wcet, self.period)
    }
}

/// Expands periodic tasks into the job instance over `[0, horizon)`: task
/// `τ` releases a job at `phase + k·period` for every activation whose
/// window fits the horizon. With `jitter > 0`, each release is delayed by a
/// uniform amount in `{0, …, jitter}` (deadlines stay absolute, so laxity
/// shrinks — the classic release-jitter model).
pub fn periodic(tasks: &[PeriodicTask], horizon: i64, jitter: i64, seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut triples = Vec::new();
    for t in tasks {
        assert!(t.period > 0 && t.wcet > 0 && t.wcet <= t.deadline);
        let mut release = t.phase;
        while release + t.deadline <= horizon {
            let j = if jitter > 0 {
                rng.gen_range(0..=jitter)
            } else {
                0
            };
            let d = release + t.deadline;
            let r = (release + j).min(d - t.wcet); // jitter never kills feasibility
            triples.push((Rat::from(r), Rat::from(d), Rat::from(t.wcet)));
            release += t.period;
        }
    }
    Instance::sanitize_triples(triples).0
}

/// Total utilization `Σ wcet/period` of a task set — a lower bound on the
/// machine count of any schedule of a long-enough horizon.
pub fn total_utilization(tasks: &[PeriodicTask]) -> Rat {
    let mut u = Rat::zero();
    for t in tasks {
        u += t.utilization();
    }
    u
}

/// Mixed-granularity workload with controlled processing-time ratio `Δ`:
/// half the jobs are unit jobs with 3-unit windows, half are `Δ`-length jobs
/// with `3Δ`-unit windows (all 1/3-loose). Used by the non-preemptive
/// baseline experiment (E13), where machine usage is studied as a function
/// of `Δ`.
pub fn delta_mix(n: usize, delta: i64, seed: u64) -> Instance {
    assert!(delta >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let horizon = 3 * delta * (n as i64) / 4;
    let triples = (0..n)
        .map(|i| {
            let r = rng.gen_range(0..horizon.max(1));
            if i % 2 == 0 {
                (Rat::from(r), Rat::from(r + 3), Rat::one())
            } else {
                (Rat::from(r), Rat::from(r + 3 * delta), Rat::from(delta))
            }
        })
        .collect::<Vec<_>>();
    Instance::sanitize_triples(triples).0
}

/// Batched workload with a target parallelism: `m` waves of overlapping jobs
/// so the optimum is close to a chosen `m` (used by sweep experiments to
/// control the x-axis).
pub fn parallel_waves(m: usize, waves: usize, seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut triples = Vec::new();
    for w in 0..waves {
        let base = (w as i64) * 10;
        for _ in 0..m {
            let jitter: i64 = rng.gen_range(0..3);
            let r = base + jitter;
            let len: i64 = rng.gen_range(6..=10);
            let p = rng.gen_range(4..=len.min(8));
            triples.push((Rat::from(r), Rat::from(r + len), Rat::from(p)));
        }
    }
    Instance::sanitize_triples(triples).0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_is_feasible_and_deterministic() {
        let cfg = UniformCfg::default();
        let a = uniform(&cfg, 7);
        let b = uniform(&cfg, 7);
        let c = uniform(&cfg, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), cfg.n);
        // feasibility is enforced by Job::new; also check positive laxity optional
        for j in a.iter() {
            assert!(j.processing <= j.window_length());
        }
    }

    #[test]
    fn loose_respects_alpha() {
        let alpha = Rat::ratio(1, 3);
        let inst = loose(
            &UniformCfg {
                n: 200,
                ..Default::default()
            },
            &alpha,
            42,
        );
        assert!(inst.all_loose(&alpha));
        assert_eq!(inst.len(), 200);
    }

    #[test]
    fn tight_respects_alpha() {
        let alpha = Rat::ratio(1, 2);
        let inst = tight(
            &UniformCfg {
                n: 200,
                ..Default::default()
            },
            &alpha,
            42,
        );
        for j in inst.iter() {
            assert!(j.is_tight(&alpha), "{j} should be tight");
        }
    }

    #[test]
    fn agreeable_is_agreeable() {
        for seed in 0..5 {
            let inst = agreeable(&AgreeableCfg::default(), seed);
            assert!(inst.is_agreeable(), "seed {seed}");
            assert_eq!(inst.len(), 50);
        }
    }

    #[test]
    fn agreeable_unit_processing() {
        let cfg = AgreeableCfg {
            unit_processing: Some(3),
            min_window: 5,
            ..Default::default()
        };
        let inst = agreeable(&cfg, 1);
        assert!(inst.is_agreeable());
        for j in inst.iter() {
            assert_eq!(j.processing, Rat::from(3i64));
        }
    }

    #[test]
    fn laminar_is_laminar() {
        for seed in 0..5 {
            let inst = laminar(&LaminarCfg::default(), seed);
            assert!(inst.is_laminar(), "seed {seed}");
            assert!(inst.len() > 10);
        }
    }

    #[test]
    fn laminar_hard_chain_is_laminar() {
        let inst = laminar_hard_chain(5, 3);
        assert!(inst.is_laminar());
        assert_eq!(inst.len(), 5 + 5 * 3);
    }

    #[test]
    fn edf_trap_structure() {
        let inst = edf_trap(3, 6, 2);
        assert_eq!(inst.len(), 2 * (3 + 6));
        assert_eq!(inst.delta().unwrap(), Rat::from(10i64));
        // long jobs have zero laxity, shorts have laxity 2
        let zero_lax = inst.iter().filter(|j| j.laxity().is_zero()).count();
        assert_eq!(zero_lax, 6);
        let lax2 = inst
            .iter()
            .filter(|j| j.laxity() == Rat::from(2i64))
            .count();
        assert_eq!(lax2, 12);
    }

    #[test]
    fn periodic_expansion() {
        let tasks = vec![
            PeriodicTask {
                period: 4,
                wcet: 2,
                deadline: 4,
                phase: 0,
            },
            PeriodicTask {
                period: 8,
                wcet: 3,
                deadline: 6,
                phase: 1,
            },
        ];
        let inst = periodic(&tasks, 17, 0, 0);
        // task 1: releases 0,4,8,12 (deadline ≤ 17 ⇒ release+4 ≤ 17): 0,4,8,12 → 4 jobs... release 13? 13+4=17 ≤ 17 ✓ → 0,4,8,12 gives d=4,8,12,16; release 16 → d=20 ✗. So 4 jobs.
        // task 2: releases 1,9 (d=7,15); release 17 ✗. 2 jobs.
        assert_eq!(inst.len(), 6);
        assert_eq!(total_utilization(&tasks), Rat::ratio(7, 8));
        // deterministic without jitter
        assert_eq!(inst, periodic(&tasks, 17, 0, 99));
    }

    #[test]
    fn periodic_jitter_keeps_feasibility() {
        let tasks = vec![PeriodicTask {
            period: 5,
            wcet: 3,
            deadline: 5,
            phase: 0,
        }];
        let inst = periodic(&tasks, 50, 4, 7);
        for j in inst.iter() {
            assert!(j.processing <= j.window_length());
        }
        assert_eq!(inst.len(), 10);
    }

    #[test]
    fn harmonic_tasks_are_agreeable_without_jitter() {
        // Same relative deadline & period across tasks ⇒ agreeable releases.
        let tasks = vec![
            PeriodicTask {
                period: 6,
                wcet: 2,
                deadline: 6,
                phase: 0,
            },
            PeriodicTask {
                period: 6,
                wcet: 3,
                deadline: 6,
                phase: 2,
            },
        ];
        let inst = periodic(&tasks, 40, 0, 0);
        assert!(inst.is_agreeable());
    }

    #[test]
    fn delta_mix_controls_delta() {
        for d in [1i64, 4, 16] {
            let inst = delta_mix(20, d, 3);
            assert_eq!(inst.delta().unwrap(), Rat::from(d));
            assert!(inst.all_loose(&Rat::ratio(1, 3)));
        }
    }

    #[test]
    fn parallel_waves_shape() {
        let inst = parallel_waves(4, 3, 9);
        assert_eq!(inst.len(), 12);
        assert!(inst.volume_lower_bound() >= 2);
    }
}
