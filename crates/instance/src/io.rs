//! Instance (de)serialization.
//!
//! Instances round-trip through JSON with exact rational coordinates encoded
//! as `"num/den"` strings, so adversarial instances (whose denominators
//! overflow any float or fixed-width integer) survive storage losslessly.
//!
//! The document shape is
//!
//! ```json
//! {
//!   "jobs": [
//!     {"id": 0, "release": "0", "deadline": "4", "processing": "3/2"}
//!   ]
//! }
//! ```
//!
//! with ids forming a permutation of `0..n`.

use std::io::{Read, Write};
use std::path::Path;

use mm_json::Json;
use mm_numeric::Rat;

use crate::{Instance, Job, JobId};

/// Serialization error.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// JSON (de)serialization failure.
    Json(String),
    /// A structurally parsable record that does not describe a valid job.
    /// `record` is the 1-based position: the array index + 1 for JSON
    /// documents, the line number for JSONL.
    Record {
        /// 1-based record position.
        record: usize,
        /// What is wrong with it.
        message: String,
    },
}

impl core::fmt::Display for IoError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::Json(e) => write!(f, "json error: {e}"),
            IoError::Record { record, message } => {
                write!(f, "record {record}: {message}")
            }
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

impl From<mm_json::ParseError> for IoError {
    fn from(e: mm_json::ParseError) -> Self {
        IoError::Json(e.to_string())
    }
}

fn bad(message: impl Into<String>) -> IoError {
    IoError::Json(message.into())
}

/// Serializes an instance to pretty JSON.
pub fn to_json(instance: &Instance) -> Result<String, IoError> {
    let jobs: Vec<Json> = instance
        .jobs()
        .iter()
        .map(|j| {
            Json::obj([
                ("id", Json::Int(j.id.0 as i64)),
                ("release", Json::str(j.release.to_string())),
                ("deadline", Json::str(j.deadline.to_string())),
                ("processing", Json::str(j.processing.to_string())),
            ])
        })
        .collect();
    Ok(Json::obj([("jobs", Json::Arr(jobs))]).to_pretty())
}

fn record_err(record: usize, message: impl Into<String>) -> IoError {
    IoError::Record {
        record,
        message: message.into(),
    }
}

fn rat_field(obj: &Json, key: &str, record: usize) -> Result<Rat, IoError> {
    let text = obj
        .get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| record_err(record, format!("missing string field \"{key}\"")))?;
    text.parse().map_err(|e| {
        record_err(
            record,
            format!("invalid rational \"{text}\" for \"{key}\": {e}"),
        )
    })
}

/// Parses one job record at 1-based position `record`, registering its id in
/// `seen` (of length `n`, the expected job count). Degenerate triples are
/// [`IoError::Record`]s, never panics.
fn job_from_entry(
    entry: &Json,
    record: usize,
    n: usize,
    seen: &mut [bool],
) -> Result<Job, IoError> {
    let id = entry
        .get("id")
        .and_then(Json::as_i64)
        .ok_or_else(|| record_err(record, "missing integer field \"id\""))?;
    let id = usize::try_from(id)
        .ok()
        .filter(|&id| id < n)
        .ok_or_else(|| record_err(record, format!("id {id} outside 0..{n}")))?;
    if seen[id] {
        return Err(record_err(record, format!("duplicate job id {id}")));
    }
    seen[id] = true;
    Job::try_new(
        JobId(id as u32),
        rat_field(entry, "release", record)?,
        rat_field(entry, "deadline", record)?,
        rat_field(entry, "processing", record)?,
    )
    .map_err(|(defect, job)| {
        record_err(
            record,
            format!(
                "degenerate job (r={}, d={}, p={}): {defect}",
                job.release, job.deadline, job.processing
            ),
        )
    })
}

/// Deserializes an instance from JSON.
pub fn from_json(json: &str) -> Result<Instance, IoError> {
    let doc = mm_json::parse(json)?;
    let entries = doc
        .get("jobs")
        .ok_or_else(|| bad("missing \"jobs\" field"))?
        .as_arr()
        .ok_or_else(|| bad("\"jobs\" must be an array"))?;
    let n = entries.len();
    let mut jobs = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    for (i, entry) in entries.iter().enumerate() {
        jobs.push(job_from_entry(entry, i + 1, n, &mut seen)?);
    }
    Ok(Instance::from_jobs_with_ids(jobs))
}

/// Serializes an instance as JSONL: one compact job object per line, in id
/// order. The streaming-friendly format for large generated workloads.
pub fn to_jsonl(instance: &Instance) -> String {
    let mut out = String::new();
    for j in instance.jobs() {
        out.push_str(
            &Json::obj([
                ("id", Json::Int(j.id.0 as i64)),
                ("release", Json::str(j.release.to_string())),
                ("deadline", Json::str(j.deadline.to_string())),
                ("processing", Json::str(j.processing.to_string())),
            ])
            .to_compact(),
        );
        out.push('\n');
    }
    out
}

/// Deserializes an instance from JSONL (one job object per line; blank lines
/// are skipped). Errors carry the offending 1-based line number as the
/// record position; malformed input never panics.
pub fn from_jsonl(text: &str) -> Result<Instance, IoError> {
    let records: Vec<(usize, &str)> = text
        .lines()
        .enumerate()
        .map(|(i, line)| (i + 1, line.trim()))
        .filter(|(_, line)| !line.is_empty())
        .collect();
    let n = records.len();
    let mut jobs = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    for (line_no, line) in records {
        let entry = mm_json::parse(line)
            .map_err(|e| record_err(line_no, format!("malformed JSON: {e}")))?;
        jobs.push(job_from_entry(&entry, line_no, n, &mut seen)?);
    }
    Ok(Instance::from_jobs_with_ids(jobs))
}

/// Writes an instance to a JSON file.
pub fn save<P: AsRef<Path>>(instance: &Instance, path: P) -> Result<(), IoError> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(to_json(instance)?.as_bytes())?;
    Ok(())
}

/// Reads an instance from a JSON file.
pub fn load<P: AsRef<Path>>(path: P) -> Result<Instance, IoError> {
    let mut s = String::new();
    std::fs::File::open(path)?.read_to_string(&mut s)?;
    from_json(&s)
}

/// Writes an instance to a JSONL file (see [`to_jsonl`]).
pub fn save_jsonl<P: AsRef<Path>>(instance: &Instance, path: P) -> Result<(), IoError> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(to_jsonl(instance).as_bytes())?;
    Ok(())
}

/// Reads an instance from a JSONL file (see [`from_jsonl`]).
pub fn load_jsonl<P: AsRef<Path>>(path: P) -> Result<Instance, IoError> {
    let mut s = String::new();
    std::fs::File::open(path)?.read_to_string(&mut s)?;
    from_jsonl(&s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_numeric::Rat;

    #[test]
    fn json_roundtrip_integers() {
        let inst = Instance::from_ints([(0, 4, 2), (1, 5, 3)]);
        let json = to_json(&inst).unwrap();
        let back = from_json(&json).unwrap();
        assert_eq!(inst, back);
    }

    #[test]
    fn json_roundtrip_deep_rationals() {
        // Coordinates like the Lemma 2 adversary produces.
        let mut r = Rat::ratio(1, 3);
        for p in [7i64, 11, 13, 17, 19, 23] {
            r = r * Rat::ratio(p - 2, p);
        }
        let d = &r + Rat::ratio(1, 1_000_003);
        let p = (&d - &r) * Rat::half();
        let inst = Instance::from_triples([(r, d, p)]);
        let back = from_json(&to_json(&inst).unwrap()).unwrap();
        assert_eq!(inst, back);
    }

    #[test]
    fn file_roundtrip() {
        let inst = Instance::from_ints([(0, 10, 4), (2, 6, 4)]);
        let dir = std::env::temp_dir().join("machmin_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("inst.json");
        save(&inst, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(inst, back);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(from_json("{not json").is_err());
        assert!(from_json("{\"jobs\": 3}").is_err());
    }

    #[test]
    fn bad_ids_are_errors_not_panics() {
        // Duplicate id.
        let dup = r#"{"jobs": [
            {"id": 0, "release": "0", "deadline": "2", "processing": "1"},
            {"id": 0, "release": "1", "deadline": "3", "processing": "1"}
        ]}"#;
        assert!(from_json(dup).is_err());
        // Id out of range.
        let oob = r#"{"jobs": [
            {"id": 5, "release": "0", "deadline": "2", "processing": "1"}
        ]}"#;
        assert!(from_json(oob).is_err());
        // Non-rational coordinate.
        let nonrat = r#"{"jobs": [
            {"id": 0, "release": "zero", "deadline": "2", "processing": "1"}
        ]}"#;
        assert!(from_json(nonrat).is_err());
    }

    #[test]
    fn degenerate_jobs_are_record_errors_not_panics() {
        // p = 0, d <= r, p > d - r: each must surface as IoError::Record
        // with the right 1-based position.
        for (record_json, expect) in [
            (
                r#"{"id": 0, "release": "0", "deadline": "2", "processing": "0"}"#,
                "positive",
            ),
            (
                r#"{"id": 0, "release": "3", "deadline": "2", "processing": "1"}"#,
                "empty window",
            ),
            (
                r#"{"id": 0, "release": "0", "deadline": "2", "processing": "5"}"#,
                "exceeds",
            ),
        ] {
            let doc = format!(r#"{{"jobs": [{record_json}]}}"#);
            match from_json(&doc) {
                Err(IoError::Record { record: 1, message }) => {
                    assert!(message.contains(expect), "{message:?} missing {expect:?}");
                }
                other => panic!("expected Record error, got {other:?}"),
            }
        }
    }

    #[test]
    fn jsonl_roundtrip_and_line_context() {
        let inst = Instance::from_ints([(0, 4, 2), (1, 5, 3), (2, 8, 1)]);
        let text = to_jsonl(&inst);
        assert_eq!(text.lines().count(), 3);
        assert_eq!(from_jsonl(&text).unwrap(), inst);
        // Blank lines are fine.
        let spaced = text.replace('\n', "\n\n");
        assert_eq!(from_jsonl(&spaced).unwrap(), inst);
        // A malformed middle line reports its 1-based line number.
        let mut lines: Vec<&str> = text.lines().collect();
        lines[1] = "{broken";
        match from_jsonl(&lines.join("\n")) {
            Err(IoError::Record { record: 2, .. }) => {}
            other => panic!("expected line-2 Record error, got {other:?}"),
        }
        // A degenerate job on line 3 likewise.
        let degenerate = [
            r#"{"id": 0, "release": "0", "deadline": "2", "processing": "1"}"#,
            r#"{"id": 1, "release": "0", "deadline": "2", "processing": "1"}"#,
            r#"{"id": 2, "release": "9", "deadline": "2", "processing": "1"}"#,
        ]
        .join("\n");
        match from_jsonl(&degenerate) {
            Err(IoError::Record { record: 3, .. }) => {}
            other => panic!("expected line-3 Record error, got {other:?}"),
        }
    }

    #[test]
    fn jsonl_file_roundtrip() {
        let inst = Instance::from_ints([(0, 10, 4), (2, 6, 4)]);
        let dir = std::env::temp_dir().join("machmin_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("inst.jsonl");
        save_jsonl(&inst, &path).unwrap();
        assert_eq!(load_jsonl(&path).unwrap(), inst);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn preserves_arrival_order_ids() {
        // Ids deliberately disagree with canonical (release-sorted) order.
        let jobs = [
            Job::new(
                JobId(1),
                Rat::ratio(0, 1),
                Rat::ratio(4, 1),
                Rat::ratio(1, 1),
            ),
            Job::new(
                JobId(0),
                Rat::ratio(2, 1),
                Rat::ratio(6, 1),
                Rat::ratio(1, 1),
            ),
        ];
        let inst = Instance::from_jobs_with_ids(jobs);
        let back = from_json(&to_json(&inst).unwrap()).unwrap();
        assert_eq!(inst, back);
    }
}
