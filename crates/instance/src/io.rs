//! Instance (de)serialization.
//!
//! Instances round-trip through JSON with exact rational coordinates encoded
//! as `"num/den"` strings, so adversarial instances (whose denominators
//! overflow any float or fixed-width integer) survive storage losslessly.

use std::io::{Read, Write};
use std::path::Path;

use crate::Instance;

/// Serialization error.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// JSON (de)serialization failure.
    Json(serde_json::Error),
}

impl core::fmt::Display for IoError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::Json(e) => write!(f, "json error: {e}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

impl From<serde_json::Error> for IoError {
    fn from(e: serde_json::Error) -> Self {
        IoError::Json(e)
    }
}

/// Serializes an instance to pretty JSON.
pub fn to_json(instance: &Instance) -> Result<String, IoError> {
    Ok(serde_json::to_string_pretty(instance)?)
}

/// Deserializes an instance from JSON.
pub fn from_json(json: &str) -> Result<Instance, IoError> {
    Ok(serde_json::from_str(json)?)
}

/// Writes an instance to a JSON file.
pub fn save<P: AsRef<Path>>(instance: &Instance, path: P) -> Result<(), IoError> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(to_json(instance)?.as_bytes())?;
    Ok(())
}

/// Reads an instance from a JSON file.
pub fn load<P: AsRef<Path>>(path: P) -> Result<Instance, IoError> {
    let mut s = String::new();
    std::fs::File::open(path)?.read_to_string(&mut s)?;
    from_json(&s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_numeric::Rat;

    #[test]
    fn json_roundtrip_integers() {
        let inst = Instance::from_ints([(0, 4, 2), (1, 5, 3)]);
        let json = to_json(&inst).unwrap();
        let back = from_json(&json).unwrap();
        assert_eq!(inst, back);
    }

    #[test]
    fn json_roundtrip_deep_rationals() {
        // Coordinates like the Lemma 2 adversary produces.
        let mut r = Rat::ratio(1, 3);
        for p in [7i64, 11, 13, 17, 19, 23] {
            r = r * Rat::ratio(p - 2, p);
        }
        let d = &r + Rat::ratio(1, 1_000_003);
        let p = (&d - &r) * Rat::half();
        let inst = Instance::from_triples([(r, d, p)]);
        let back = from_json(&to_json(&inst).unwrap()).unwrap();
        assert_eq!(inst, back);
    }

    #[test]
    fn file_roundtrip() {
        let inst = Instance::from_ints([(0, 10, 4), (2, 6, 4)]);
        let dir = std::env::temp_dir().join("machmin_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("inst.json");
        save(&inst, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(inst, back);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(from_json("{not json").is_err());
        assert!(from_json("{\"jobs\": 3}").is_err());
    }
}
