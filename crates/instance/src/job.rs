//! Jobs with release dates, deadlines and processing times.

use core::fmt;
use mm_numeric::Rat;

use crate::Interval;

/// Identifier of a job within an [`crate::Instance`].
///
/// Ids are dense indices assigned in release order by the instance builder
/// (ties broken by non-increasing deadline, matching the indexing convention
/// of Section 5 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u32);

impl JobId {
    /// The id as an index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "j{}", self.0)
    }
}

/// A preemptable job `j = (r_j, d_j, p_j)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Job {
    /// The job's identifier.
    pub id: JobId,
    /// Release date `r_j`: earliest time processing may start.
    pub release: Rat,
    /// Deadline `d_j`: processing must finish strictly within `[r_j, d_j)`.
    pub deadline: Rat,
    /// Processing requirement `p_j > 0`.
    pub processing: Rat,
}

/// Why a job triple is degenerate (rejected by [`Job::try_new`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobDefect {
    /// `p_j ≤ 0`: the job demands no (or negative) processing.
    NonPositiveProcessing,
    /// `d_j ≤ r_j`: the window is empty or inverted.
    EmptyWindow,
    /// `p_j > d_j − r_j`: the job cannot fit its own window.
    OverlongProcessing,
}

impl fmt::Display for JobDefect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobDefect::NonPositiveProcessing => write!(f, "processing must be positive"),
            JobDefect::EmptyWindow => write!(f, "empty window (d <= r)"),
            JobDefect::OverlongProcessing => {
                write!(f, "processing exceeds the window (p > d - r)")
            }
        }
    }
}

impl std::error::Error for JobDefect {}

impl Job {
    /// Builds a job, panicking unless `0 < p_j ≤ d_j − r_j`. Use
    /// [`Job::try_new`] on untrusted input.
    pub fn new(id: JobId, release: Rat, deadline: Rat, processing: Rat) -> Self {
        match Job::try_new(id, release, deadline, processing) {
            Ok(job) => job,
            Err((defect @ JobDefect::NonPositiveProcessing, job)) => {
                panic!("job {}: {defect}", job.id)
            }
            Err((_, job)) => panic!(
                "job {}: infeasible window (p={}, window={})",
                job.id,
                job.processing,
                &job.deadline - &job.release
            ),
        }
    }

    /// Builds a job, returning the defect (plus the unchecked job, for error
    /// reporting) when the triple is degenerate: `p_j ≤ 0`, `d_j ≤ r_j`, or
    /// `p_j > d_j − r_j`. Never panics.
    #[allow(clippy::result_large_err)]
    pub fn try_new(
        id: JobId,
        release: Rat,
        deadline: Rat,
        processing: Rat,
    ) -> Result<Self, (JobDefect, Job)> {
        let job = Job {
            id,
            release,
            deadline,
            processing,
        };
        match job.defect() {
            None => Ok(job),
            Some(defect) => Err((defect, job)),
        }
    }

    /// The defect of this job's triple, if any (see [`JobDefect`]).
    pub fn defect(&self) -> Option<JobDefect> {
        if !self.processing.is_positive() {
            Some(JobDefect::NonPositiveProcessing)
        } else if self.deadline <= self.release {
            Some(JobDefect::EmptyWindow)
        } else if self.processing > &self.deadline - &self.release {
            Some(JobDefect::OverlongProcessing)
        } else {
            None
        }
    }

    /// The processing interval (time window) `I(j) = [r_j, d_j)`.
    pub fn window(&self) -> Interval {
        Interval::new(self.release.clone(), self.deadline.clone())
    }

    /// Window length `d_j − r_j`.
    pub fn window_length(&self) -> Rat {
        &self.deadline - &self.release
    }

    /// Laxity `ℓ_j = d_j − r_j − p_j ≥ 0`.
    pub fn laxity(&self) -> Rat {
        &self.deadline - &self.release - &self.processing
    }

    /// `a_j = r_j + ℓ_j`: the latest time at which the job must have been
    /// started (assigned to a machine) in any feasible schedule.
    pub fn assign_by(&self) -> Rat {
        &self.release + &self.laxity()
    }

    /// `f_j = d_j − ℓ_j`: the earliest time the job can be finished.
    pub fn finish_earliest(&self) -> Rat {
        &self.deadline - &self.laxity()
    }

    /// Whether the job is α-loose: `p_j ≤ α · (d_j − r_j)`.
    pub fn is_loose(&self, alpha: &Rat) -> bool {
        self.processing <= alpha * self.window_length()
    }

    /// Whether the job is α-tight (not α-loose).
    pub fn is_tight(&self, alpha: &Rat) -> bool {
        !self.is_loose(alpha)
    }

    /// Contribution `C(j, I) = max{0, |I ∩ I(j)| − ℓ_j}`: the least amount of
    /// processing `j` receives inside the union `I` in *any* feasible
    /// schedule (Theorem 1).
    pub fn contribution(&self, union: &crate::IntervalSet) -> Rat {
        let inside = union.overlap_length(&self.window());
        let slack = &inside - &self.laxity();
        if slack.is_positive() {
            slack
        } else {
            Rat::zero()
        }
    }

    /// Whether `j` covers the time point `t` (i.e. `t ∈ I(j)`).
    pub fn covers(&self, t: &Rat) -> bool {
        self.window().contains(t)
    }
}

impl fmt::Display for Job {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}(r={}, d={}, p={})",
            self.id, self.release, self.deadline, self.processing
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IntervalSet;

    fn job(r: i64, d: i64, p: i64) -> Job {
        Job::new(JobId(0), Rat::from(r), Rat::from(d), Rat::from(p))
    }

    #[test]
    fn derived_quantities() {
        let j = job(2, 10, 3);
        assert_eq!(j.window_length(), Rat::from(8i64));
        assert_eq!(j.laxity(), Rat::from(5i64));
        assert_eq!(j.assign_by(), Rat::from(7i64));
        assert_eq!(j.finish_earliest(), Rat::from(5i64));
        assert!(j.covers(&Rat::from(2i64)));
        assert!(j.covers(&Rat::from(9i64)));
        assert!(!j.covers(&Rat::from(10i64)));
    }

    #[test]
    fn zero_laxity_job() {
        let j = job(0, 4, 4);
        assert_eq!(j.laxity(), Rat::zero());
        assert_eq!(j.assign_by(), Rat::zero());
        assert_eq!(j.finish_earliest(), Rat::from(4i64));
    }

    #[test]
    #[should_panic(expected = "processing must be positive")]
    fn zero_processing_rejected() {
        let _ = job(0, 4, 0);
    }

    #[test]
    #[should_panic(expected = "infeasible window")]
    fn overlong_processing_rejected() {
        let _ = job(0, 4, 5);
    }

    #[test]
    fn try_new_reports_defects_without_panicking() {
        let t = |r: i64, d: i64, p: i64| {
            Job::try_new(JobId(0), Rat::from(r), Rat::from(d), Rat::from(p))
                .map_err(|(defect, _)| defect)
        };
        assert!(t(0, 4, 2).is_ok());
        assert_eq!(t(0, 4, 0), Err(JobDefect::NonPositiveProcessing));
        assert_eq!(t(0, 4, -1), Err(JobDefect::NonPositiveProcessing));
        assert_eq!(t(4, 4, 1), Err(JobDefect::EmptyWindow));
        assert_eq!(t(5, 4, 1), Err(JobDefect::EmptyWindow));
        assert_eq!(t(0, 4, 5), Err(JobDefect::OverlongProcessing));
        // Boundary: zero laxity is fine.
        assert!(t(0, 4, 4).is_ok());
    }

    #[test]
    fn looseness() {
        let j = job(0, 10, 3);
        assert!(j.is_loose(&Rat::ratio(3, 10)));
        assert!(j.is_loose(&Rat::ratio(1, 2)));
        assert!(j.is_tight(&Rat::ratio(1, 4)));
        // boundary: p = α·|I(j)| counts as loose
        assert!(!j.is_loose(&Rat::ratio(29, 100)));
    }

    #[test]
    fn contribution_matches_theorem1_definition() {
        // j covers [0,10), laxity 5.
        let j = job(0, 10, 5);
        // union covering [0,10) entirely: contribution = 10 - 5 = 5 = p_j.
        let full = IntervalSet::from_intervals([Interval::ints(0, 10)]);
        assert_eq!(j.contribution(&full), Rat::from(5i64));
        // union covering 6 units: contribution = 1.
        let six = IntervalSet::from_intervals([Interval::ints(0, 3), Interval::ints(5, 8)]);
        assert_eq!(j.contribution(&six), Rat::from(1i64));
        // union covering ≤ laxity: contribution = 0.
        let small = IntervalSet::from_intervals([Interval::ints(0, 5)]);
        assert_eq!(j.contribution(&small), Rat::zero());
        // disjoint union: 0.
        let off = IntervalSet::from_intervals([Interval::ints(20, 30)]);
        assert_eq!(j.contribution(&off), Rat::zero());
    }
}
