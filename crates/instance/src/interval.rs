//! Half-open time intervals `[start, end)` and finite disjoint unions.
//!
//! The paper's Theorem 1 characterizes the optimal machine count through
//! *finite unions of intervals* `I` and job contributions `C(j, I)`;
//! [`IntervalSet`] is that object, kept sorted, disjoint and gap-separated.

use core::fmt;
use mm_numeric::Rat;

/// A half-open interval `[start, end)` on the rational time line.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Interval {
    /// Inclusive left endpoint.
    pub start: Rat,
    /// Exclusive right endpoint.
    pub end: Rat,
}

impl Interval {
    /// Builds `[start, end)`. Panics if `end < start`.
    pub fn new(start: Rat, end: Rat) -> Self {
        assert!(start <= end, "interval with negative length");
        Interval { start, end }
    }

    /// Builds an interval from integer endpoints.
    pub fn ints(start: i64, end: i64) -> Self {
        Interval::new(Rat::from(start), Rat::from(end))
    }

    /// The length `end − start`.
    pub fn length(&self) -> Rat {
        &self.end - &self.start
    }

    /// Whether the interval contains no points.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Whether `t ∈ [start, end)`.
    pub fn contains(&self, t: &Rat) -> bool {
        *t >= self.start && *t < self.end
    }

    /// Intersection with `other`, or `None` if they are disjoint (touching
    /// intervals produce an empty intersection, reported as `None`).
    pub fn intersect(&self, other: &Interval) -> Option<Interval> {
        let s = self.start.clone().max(other.start.clone());
        let e = self.end.clone().min(other.end.clone());
        if s < e {
            Some(Interval { start: s, end: e })
        } else {
            None
        }
    }

    /// Whether `other` is fully contained in `self`.
    pub fn contains_interval(&self, other: &Interval) -> bool {
        self.start <= other.start && other.end <= self.end
    }

    /// Whether the two intervals overlap in a set of positive measure.
    pub fn overlaps(&self, other: &Interval) -> bool {
        self.start < other.end && other.start < self.end
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

/// A finite union of disjoint half-open intervals, sorted by start, with
/// positive gaps between consecutive members (adjacent intervals are merged).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct IntervalSet {
    parts: Vec<Interval>,
}

impl IntervalSet {
    /// The empty union.
    pub fn empty() -> Self {
        IntervalSet { parts: Vec::new() }
    }

    /// A union consisting of a single interval (empty if the interval is).
    pub fn single(iv: Interval) -> Self {
        let mut s = IntervalSet::empty();
        s.insert(iv);
        s
    }

    /// Builds from arbitrary (possibly overlapping, unsorted) intervals.
    pub fn from_intervals<I: IntoIterator<Item = Interval>>(ivs: I) -> Self {
        let mut s = IntervalSet::empty();
        for iv in ivs {
            s.insert(iv);
        }
        s
    }

    /// The member intervals, sorted and disjoint.
    pub fn parts(&self) -> &[Interval] {
        &self.parts
    }

    /// Whether the union has measure zero.
    pub fn is_empty(&self) -> bool {
        self.parts.is_empty()
    }

    /// Total length `|I|`.
    pub fn length(&self) -> Rat {
        let mut total = Rat::zero();
        for p in &self.parts {
            total += p.length();
        }
        total
    }

    /// Whether `t` lies in the union.
    pub fn contains(&self, t: &Rat) -> bool {
        self.parts.iter().any(|p| p.contains(t))
    }

    /// Inserts an interval, merging overlapping and touching members.
    pub fn insert(&mut self, iv: Interval) {
        if iv.is_empty() {
            return;
        }
        self.parts.push(iv);
        self.parts.sort_by(|a, b| a.start.cmp(&b.start));
        self.normalize();
    }

    fn normalize(&mut self) {
        let mut out: Vec<Interval> = Vec::with_capacity(self.parts.len());
        for p in self.parts.drain(..) {
            if p.is_empty() {
                continue;
            }
            match out.last_mut() {
                Some(last) if p.start <= last.end => {
                    if p.end > last.end {
                        last.end = p.end;
                    }
                }
                _ => out.push(p),
            }
        }
        self.parts = out;
    }

    /// Set union.
    pub fn union(&self, other: &IntervalSet) -> IntervalSet {
        let mut s = self.clone();
        for p in &other.parts {
            s.insert(p.clone());
        }
        s
    }

    /// Set intersection.
    pub fn intersection(&self, other: &IntervalSet) -> IntervalSet {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.parts.len() && j < other.parts.len() {
            if let Some(iv) = self.parts[i].intersect(&other.parts[j]) {
                out.push(iv);
            }
            if self.parts[i].end <= other.parts[j].end {
                i += 1;
            } else {
                j += 1;
            }
        }
        IntervalSet { parts: out }
    }

    /// Length of the intersection with a single interval — `|I ∩ [s,e)|`.
    pub fn overlap_length(&self, iv: &Interval) -> Rat {
        let mut total = Rat::zero();
        for p in &self.parts {
            if let Some(x) = p.intersect(iv) {
                total += x.length();
            }
        }
        total
    }
}

impl fmt::Display for IntervalSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.parts.is_empty() {
            return write!(f, "∅");
        }
        for (i, p) in self.parts.iter().enumerate() {
            if i > 0 {
                write!(f, " ∪ ")?;
            }
            write!(f, "{p}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(a: i64, b: i64) -> Interval {
        Interval::ints(a, b)
    }

    #[test]
    fn interval_basics() {
        let i = iv(2, 5);
        assert_eq!(i.length(), Rat::from(3i64));
        assert!(i.contains(&Rat::from(2i64)));
        assert!(i.contains(&Rat::from(4i64)));
        assert!(!i.contains(&Rat::from(5i64)));
        assert!(!iv(3, 3).contains(&Rat::from(3i64)));
        assert!(iv(3, 3).is_empty());
    }

    #[test]
    #[should_panic(expected = "negative length")]
    fn reversed_interval_panics() {
        let _ = iv(5, 2);
    }

    #[test]
    fn intersect_cases() {
        assert_eq!(iv(0, 4).intersect(&iv(2, 6)), Some(iv(2, 4)));
        assert_eq!(iv(0, 2).intersect(&iv(2, 4)), None); // touching
        assert_eq!(iv(0, 1).intersect(&iv(3, 4)), None);
        assert_eq!(iv(0, 10).intersect(&iv(3, 4)), Some(iv(3, 4)));
    }

    #[test]
    fn containment_and_overlap() {
        assert!(iv(0, 10).contains_interval(&iv(3, 4)));
        assert!(iv(0, 10).contains_interval(&iv(0, 10)));
        assert!(!iv(1, 10).contains_interval(&iv(0, 4)));
        assert!(iv(0, 4).overlaps(&iv(3, 8)));
        assert!(!iv(0, 4).overlaps(&iv(4, 8)));
    }

    #[test]
    fn set_insert_merges() {
        let mut s = IntervalSet::empty();
        s.insert(iv(0, 2));
        s.insert(iv(4, 6));
        s.insert(iv(1, 5)); // bridges the gap
        assert_eq!(s.parts(), &[iv(0, 6)]);
        assert_eq!(s.length(), Rat::from(6i64));
    }

    #[test]
    fn set_insert_touching_merges() {
        let s = IntervalSet::from_intervals([iv(0, 2), iv(2, 4)]);
        assert_eq!(s.parts(), &[iv(0, 4)]);
    }

    #[test]
    fn set_keeps_gaps() {
        let s = IntervalSet::from_intervals([iv(5, 6), iv(0, 2), iv(3, 4)]);
        assert_eq!(s.parts(), &[iv(0, 2), iv(3, 4), iv(5, 6)]);
        assert_eq!(s.length(), Rat::from(4i64));
        assert!(s.contains(&Rat::from(3i64)));
        assert!(!s.contains(&Rat::from(2i64)));
    }

    #[test]
    fn set_union_intersection() {
        let a = IntervalSet::from_intervals([iv(0, 3), iv(6, 9)]);
        let b = IntervalSet::from_intervals([iv(2, 7)]);
        assert_eq!(a.union(&b).parts(), &[iv(0, 9)]);
        assert_eq!(a.intersection(&b).parts(), &[iv(2, 3), iv(6, 7)]);
        assert_eq!(a.intersection(&IntervalSet::empty()), IntervalSet::empty());
    }

    #[test]
    fn overlap_length() {
        let a = IntervalSet::from_intervals([iv(0, 3), iv(6, 9)]);
        assert_eq!(a.overlap_length(&iv(2, 8)), Rat::from(3i64)); // [2,3) + [6,8)
        assert_eq!(a.overlap_length(&iv(3, 6)), Rat::zero());
    }

    #[test]
    fn empty_inserts_ignored() {
        let mut s = IntervalSet::empty();
        s.insert(iv(1, 1));
        assert!(s.is_empty());
        assert_eq!(s.length(), Rat::zero());
    }
}
