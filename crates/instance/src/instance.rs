//! Instances: finite sets of jobs, their structural classification, and the
//! window/processing transforms used by Lemmas 3 and 4 of the paper.

use core::fmt;
use mm_numeric::Rat;

use crate::{Interval, IntervalSet, Job, JobDefect, JobId};

/// Typed report of degenerate jobs found by [`Instance::validate`] or
/// dropped/normalized by [`Instance::sanitize_triples`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ValidationReport {
    /// `(record, defect)` pairs — `record` is the 0-based position in the
    /// input (for [`Instance::validate`], the [`JobId`] index).
    pub defects: Vec<(usize, JobDefect)>,
    /// Jobs dropped outright by sanitization (unsalvageable: `p_j ≤ 0` or
    /// `d_j ≤ r_j`).
    pub dropped: usize,
    /// Jobs normalized by sanitization (`p_j` clamped to the window length).
    pub clamped: usize,
}

impl ValidationReport {
    /// Whether every job was valid.
    pub fn is_ok(&self) -> bool {
        self.defects.is_empty()
    }
}

impl fmt::Display for ValidationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_ok() {
            return write!(f, "all jobs valid");
        }
        write!(
            f,
            "{} degenerate job(s) ({} dropped, {} clamped):",
            self.defects.len(),
            self.dropped,
            self.clamped
        )?;
        for (record, defect) in &self.defects {
            write!(f, " [{record}: {defect}]")?;
        }
        Ok(())
    }
}

/// An instance of the machine-minimization problem: a finite set of jobs.
///
/// Jobs are stored indexed by [`JobId`] in the paper's canonical order:
/// non-decreasing release date, ties broken by non-increasing deadline
/// (the indexing convention assumed in Section 5).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Instance {
    /// Jobs in canonical order.
    jobs: Vec<Job>,
    /// Position of each id in `jobs`: `jobs[by_id[id]]` has that id. Ids are
    /// dense (`0..n`) but need not coincide with canonical positions when the
    /// instance was built with [`Instance::from_jobs_with_ids`] (e.g. by the
    /// online driver, which ids jobs in arrival order).
    by_id: Vec<u32>,
}

/// Structural class of an instance (Section 1: agreeable and laminar are the
/// two complementary special cases studied by the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StructureClass {
    /// Any two overlapping windows are nested: laminar (Section 5).
    Laminar,
    /// `r_j < r_j'` implies `d_j ≤ d_j'`: agreeable (Section 6).
    Agreeable,
    /// Both laminar and agreeable (e.g. pairwise disjoint windows).
    Both,
    /// Neither.
    General,
}

impl Instance {
    /// Builds an instance from raw `(release, deadline, processing)` triples,
    /// assigning ids in canonical order.
    pub fn from_triples<I>(triples: I) -> Self
    where
        I: IntoIterator<Item = (Rat, Rat, Rat)>,
    {
        let mut raw: Vec<(Rat, Rat, Rat)> = triples.into_iter().collect();
        raw.sort_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)));
        let jobs: Vec<Job> = raw
            .into_iter()
            .enumerate()
            .map(|(i, (r, d, p))| Job::new(JobId(i as u32), r, d, p))
            .collect();
        let by_id = (0..jobs.len() as u32).collect();
        Instance { jobs, by_id }
    }

    /// Builds an instance from jobs that already carry meaningful ids (dense,
    /// unique, `0..n`), preserving those ids while storing jobs in canonical
    /// order. Used by the online driver, which ids jobs in arrival order.
    ///
    /// # Panics
    /// Panics if the ids are not a permutation of `0..n`.
    pub fn from_jobs_with_ids<I: IntoIterator<Item = Job>>(jobs: I) -> Self {
        let mut jobs: Vec<Job> = jobs.into_iter().collect();
        jobs.sort_by(|a, b| {
            a.release
                .cmp(&b.release)
                .then_with(|| b.deadline.cmp(&a.deadline))
                .then_with(|| a.id.cmp(&b.id))
        });
        let n = jobs.len();
        let mut by_id = vec![u32::MAX; n];
        for (pos, j) in jobs.iter().enumerate() {
            let slot = by_id
                .get_mut(j.id.index())
                .unwrap_or_else(|| panic!("job id {} out of range 0..{n}", j.id));
            assert_eq!(*slot, u32::MAX, "duplicate job id {}", j.id);
            *slot = pos as u32;
        }
        Instance { jobs, by_id }
    }

    /// Builds an instance from integer triples (test convenience).
    pub fn from_ints<I>(triples: I) -> Self
    where
        I: IntoIterator<Item = (i64, i64, i64)>,
    {
        Instance::from_triples(
            triples
                .into_iter()
                .map(|(r, d, p)| (Rat::from(r), Rat::from(d), Rat::from(p))),
        )
    }

    /// Builds from pre-constructed jobs; re-sorts and re-ids canonically.
    pub fn from_jobs<I: IntoIterator<Item = Job>>(jobs: I) -> Self {
        Instance::from_triples(
            jobs.into_iter()
                .map(|j| (j.release, j.deadline, j.processing)),
        )
    }

    /// The empty instance.
    pub fn empty() -> Self {
        Instance {
            jobs: Vec::new(),
            by_id: Vec::new(),
        }
    }

    /// Re-checks every job's triple (see [`JobDefect`]). Instances built
    /// through the panicking constructors are always valid; this is the
    /// panic-free gate for CLI entry points and any future unchecked
    /// construction path. Records are reported by [`JobId`] index.
    pub fn validate(&self) -> ValidationReport {
        let mut report = ValidationReport::default();
        for job in &self.jobs {
            if let Some(defect) = job.defect() {
                report.defects.push((job.id.index(), defect));
            }
        }
        report
    }

    /// Builds an instance from untrusted triples, normalizing degenerate
    /// jobs instead of panicking: an overlong `p_j` is clamped to the window
    /// length `d_j − r_j`; jobs with `p_j ≤ 0` or `d_j ≤ r_j` are dropped.
    /// The report records every intervention by input position.
    pub fn sanitize_triples<I>(triples: I) -> (Self, ValidationReport)
    where
        I: IntoIterator<Item = (Rat, Rat, Rat)>,
    {
        let mut report = ValidationReport::default();
        let mut kept: Vec<(Rat, Rat, Rat)> = Vec::new();
        for (i, (r, d, p)) in triples.into_iter().enumerate() {
            let window = &d - &r;
            if !p.is_positive() {
                report.defects.push((i, JobDefect::NonPositiveProcessing));
                report.dropped += 1;
            } else if !window.is_positive() {
                report.defects.push((i, JobDefect::EmptyWindow));
                report.dropped += 1;
            } else if p > window {
                report.defects.push((i, JobDefect::OverlongProcessing));
                report.clamped += 1;
                kept.push((r, d, window));
            } else {
                kept.push((r, d, p));
            }
        }
        (Instance::from_triples(kept), report)
    }

    /// Number of jobs `n`.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the instance has no jobs.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// The jobs in canonical (release-date) order.
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// Job lookup by id.
    pub fn job(&self, id: JobId) -> &Job {
        &self.jobs[self.by_id[id.index()] as usize]
    }

    /// Iterator over jobs.
    pub fn iter(&self) -> core::slice::Iter<'_, Job> {
        self.jobs.iter()
    }

    /// Total processing volume `Σ p_j`.
    pub fn total_processing(&self) -> Rat {
        let mut t = Rat::zero();
        for j in &self.jobs {
            t += &j.processing;
        }
        t
    }

    /// Earliest release date, or `None` if empty.
    pub fn min_release(&self) -> Option<Rat> {
        self.jobs.first().map(|j| j.release.clone())
    }

    /// Latest deadline, or `None` if empty.
    pub fn max_deadline(&self) -> Option<Rat> {
        self.jobs.iter().map(|j| j.deadline.clone()).max()
    }

    /// `Δ`: ratio of the largest to smallest processing time.
    pub fn delta(&self) -> Option<Rat> {
        let max = self.jobs.iter().map(|j| &j.processing).max()?;
        let min = self.jobs.iter().map(|j| &j.processing).min()?;
        Some(max / min)
    }

    /// All distinct release dates and deadlines, sorted ascending. These are
    /// the *event points*; between consecutive events the set of available
    /// jobs is constant, which is what the flow formulation exploits.
    pub fn event_points(&self) -> Vec<Rat> {
        let mut pts: Vec<Rat> = Vec::with_capacity(2 * self.jobs.len());
        for j in &self.jobs {
            pts.push(j.release.clone());
            pts.push(j.deadline.clone());
        }
        pts.sort();
        pts.dedup();
        pts
    }

    /// Union of all job windows `I(S)`.
    pub fn window_union(&self) -> IntervalSet {
        IntervalSet::from_intervals(self.jobs.iter().map(|j| j.window()))
    }

    /// Contribution of the whole instance to a union `I` (Theorem 1):
    /// `C(S, I) = Σ_j C(j, I)`.
    pub fn contribution(&self, union: &IntervalSet) -> Rat {
        let mut t = Rat::zero();
        for j in &self.jobs {
            t += j.contribution(union);
        }
        t
    }

    /// Whether the instance is agreeable: `r_j < r_{j'}` implies
    /// `d_j ≤ d_{j'}` for all pairs.
    pub fn is_agreeable(&self) -> bool {
        // Jobs are sorted by (release asc, deadline desc). For every job, all
        // deadlines of strictly-earlier releases must be ≤ its deadline.
        let mut max_d_before: Option<Rat> = None;
        let mut i = 0;
        while i < self.jobs.len() {
            // group of equal releases
            let r = self.jobs[i].release.clone();
            let mut k = i;
            let mut group_max = self.jobs[i].deadline.clone();
            while k < self.jobs.len() && self.jobs[k].release == r {
                if let Some(prev) = &max_d_before {
                    if self.jobs[k].deadline < *prev {
                        return false;
                    }
                }
                if self.jobs[k].deadline > group_max {
                    group_max = self.jobs[k].deadline.clone();
                }
                k += 1;
            }
            max_d_before = Some(match max_d_before {
                Some(prev) => prev.max(group_max),
                None => group_max,
            });
            i = k;
        }
        true
    }

    /// Whether the instance is laminar: any two overlapping windows are
    /// nested.
    pub fn is_laminar(&self) -> bool {
        // Sweep in canonical order with a nesting stack.
        let mut stack: Vec<Interval> = Vec::new();
        for j in &self.jobs {
            let w = j.window();
            while let Some(top) = stack.last() {
                if top.end <= w.start {
                    stack.pop(); // disjoint, closed before w starts
                } else {
                    break;
                }
            }
            if let Some(top) = stack.last() {
                // overlapping: must be nested (w ⊆ top)
                if !top.contains_interval(&w) {
                    return false;
                }
            }
            stack.push(w);
        }
        true
    }

    /// Classifies the instance.
    pub fn classify(&self) -> StructureClass {
        match (self.is_laminar(), self.is_agreeable()) {
            (true, true) => StructureClass::Both,
            (true, false) => StructureClass::Laminar,
            (false, true) => StructureClass::Agreeable,
            (false, false) => StructureClass::General,
        }
    }

    /// Whether every job is α-loose.
    pub fn all_loose(&self, alpha: &Rat) -> bool {
        self.jobs.iter().all(|j| j.is_loose(alpha))
    }

    /// Splits into (α-loose, α-tight) sub-instances. Ids are reassigned
    /// within each part; the mapping back is by `(r, d, p)` value.
    pub fn split_loose_tight(&self, alpha: &Rat) -> (Instance, Instance) {
        let (loose, tight): (Vec<_>, Vec<_>) =
            self.jobs.iter().cloned().partition(|j| j.is_loose(alpha));
        (Instance::from_jobs(loose), Instance::from_jobs(tight))
    }

    // ---- transforms of Lemmas 3 & 4 ----

    /// `J^s`: every processing time multiplied by `s ≥ 1` (Lemma 4). Panics
    /// if some job would no longer fit its window.
    pub fn scale_processing(&self, s: &Rat) -> Instance {
        Instance::from_triples(
            self.jobs
                .iter()
                .map(|j| (j.release.clone(), j.deadline.clone(), &j.processing * s)),
        )
    }

    /// `J^{γ,0}` of Lemma 3: remove a `γ`-fraction of the laxity from the
    /// *right* of every window: `I(j^0) = [r_j, d_j − γ·ℓ_j)`.
    pub fn shrink_windows_right(&self, gamma: &Rat) -> Instance {
        assert!(
            !gamma.is_negative() && *gamma < Rat::one(),
            "gamma must lie in [0,1)"
        );
        Instance::from_triples(self.jobs.iter().map(|j| {
            (
                j.release.clone(),
                &j.deadline - gamma * j.laxity(),
                j.processing.clone(),
            )
        }))
    }

    /// `J^{0,γ}` of Lemma 3: remove a `γ`-fraction of the laxity from the
    /// *left* of every window: `I(j^γ) = [r_j + γ·ℓ_j, d_j)`.
    pub fn shrink_windows_left(&self, gamma: &Rat) -> Instance {
        assert!(
            !gamma.is_negative() && *gamma < Rat::one(),
            "gamma must lie in [0,1)"
        );
        Instance::from_triples(self.jobs.iter().map(|j| {
            (
                &j.release + gamma * j.laxity(),
                j.deadline.clone(),
                j.processing.clone(),
            )
        }))
    }

    /// The piece families `J_1, …, J_⌈s⌉` from the proof of Lemma 4.
    ///
    /// For each α-loose job `j` (with `α·s < 1`) define
    /// `δ_j = (1−αs)(d_j−r_j)/⌈s⌉ ∈ (0, ℓ_j/⌈s⌉]` and split the scaled job
    /// `j^s` into `⌈s⌉` consecutive pieces:
    /// piece `i < ⌈s⌉` has window `[r_j+(i−1)(p_j+δ_j), r_j+i(p_j+δ_j))` and
    /// processing `p_j`; the last piece has processing `(s−⌈s⌉+1)·p_j` and
    /// window ending at `r_j + s·p_j + ⌈s⌉·δ_j ≤ d_j`. Any feasible schedule
    /// of all the `J_i` yields a feasible schedule of `J^s` because the
    /// pieces of one job are disjoint and ordered, which is how the proof
    /// reduces `m(J^s)` to the `m(J_i)` and then, via Lemma 3, to `O(m(J))`.
    ///
    /// # Panics
    /// Panics unless `s ≥ 1`, `α ∈ (0,1)`, `α·s < 1`, and every job is
    /// α-loose.
    pub fn lemma4_pieces(&self, s: &Rat, alpha: &Rat) -> Vec<Instance> {
        assert!(*s >= Rat::one(), "s ≥ 1 required");
        assert!(alpha.is_positive() && *alpha < Rat::one(), "alpha ∈ (0,1)");
        assert!(alpha * s < Rat::one(), "need α·s < 1");
        assert!(self.all_loose(alpha), "Lemma 4 requires α-loose jobs");
        let ceil_s = s.ceil().to_u64().expect("s fits u64");
        let ceil_s_rat = Rat::from(ceil_s);
        let mut families: Vec<Vec<(Rat, Rat, Rat)>> =
            vec![Vec::with_capacity(self.len()); ceil_s as usize];
        for j in &self.jobs {
            let delta = (Rat::one() - alpha * s) * j.window_length() / &ceil_s_rat;
            debug_assert!(delta.is_positive());
            let step = &j.processing + &delta;
            for i in 0..ceil_s {
                let start = &j.release + Rat::from(i) * &step;
                let (end, proc) = if i + 1 < ceil_s {
                    (&start + &step, j.processing.clone())
                } else {
                    (
                        &j.release + s * &j.processing + &ceil_s_rat * &delta,
                        (s - &ceil_s_rat + Rat::one()) * &j.processing,
                    )
                };
                debug_assert!(end <= j.deadline, "piece escapes the window");
                families[i as usize].push((start, end, proc));
            }
        }
        families.into_iter().map(Instance::from_triples).collect()
    }

    /// Affine time transform `t ↦ offset + scale·(t − origin)` applied to all
    /// windows and processing times; used by the adversary to embed scaled
    /// copies of instances into small idle windows.
    pub fn affine(&self, origin: &Rat, offset: &Rat, scale: &Rat) -> Instance {
        assert!(scale.is_positive(), "affine scale must be positive");
        Instance::from_triples(self.jobs.iter().map(|j| {
            (
                offset + scale * (&j.release - origin),
                offset + scale * (&j.deadline - origin),
                scale * &j.processing,
            )
        }))
    }

    /// A trivial volume lower bound on the number of machines:
    /// `⌈ Σp_j / |I(S)| ⌉`.
    pub fn volume_lower_bound(&self) -> u64 {
        if self.is_empty() {
            return 0;
        }
        (self.total_processing() / self.window_union().length()).ceil_u64()
    }
}

impl fmt::Display for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "instance with {} jobs:", self.jobs.len())?;
        for j in &self.jobs {
            writeln!(f, "  {j}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_is_clean_on_constructed_instances() {
        assert!(Instance::empty().validate().is_ok());
        assert!(Instance::from_ints([(0, 4, 2), (1, 5, 3)])
            .validate()
            .is_ok());
    }

    #[test]
    fn sanitize_drops_and_clamps_degenerate_triples() {
        let r = |v: i64| Rat::from(v);
        let (inst, report) = Instance::sanitize_triples([
            (r(0), r(4), r(2)), // fine
            (r(0), r(4), r(0)), // dropped: p = 0
            (r(5), r(4), r(1)), // dropped: inverted window
            (r(0), r(3), r(7)), // clamped to p = 3
            (r(2), r(2), r(1)), // dropped: empty window
        ]);
        assert_eq!(inst.len(), 2);
        assert_eq!(report.dropped, 3);
        assert_eq!(report.clamped, 1);
        assert_eq!(report.defects.len(), 4);
        assert!(!report.is_ok());
        assert!(inst.validate().is_ok());
        // The clamped job became a zero-laxity job on [0,3).
        assert!(inst.iter().any(|j| j.processing == r(3)));
        assert_eq!(
            report.defects[1],
            (2, crate::JobDefect::EmptyWindow),
            "inverted window reported at input position 2"
        );
    }

    #[test]
    fn canonical_ordering() {
        let inst = Instance::from_ints([(5, 10, 1), (0, 8, 2), (0, 9, 1)]);
        let rs: Vec<i64> = inst.iter().map(|j| j.release.to_f64() as i64).collect();
        assert_eq!(rs, vec![0, 0, 5]);
        // equal releases: larger deadline first
        assert_eq!(inst.jobs()[0].deadline, Rat::from(9i64));
        assert_eq!(inst.jobs()[1].deadline, Rat::from(8i64));
        assert_eq!(inst.jobs()[0].id, JobId(0));
    }

    #[test]
    fn from_jobs_with_ids_preserves_ids() {
        // Arrival order differs from canonical order (same release, the
        // smaller deadline arrives first).
        let jobs = vec![
            Job::new(JobId(0), Rat::zero(), Rat::from(5i64), Rat::one()),
            Job::new(JobId(1), Rat::zero(), Rat::from(9i64), Rat::one()),
            Job::new(JobId(2), Rat::from(1i64), Rat::from(3i64), Rat::one()),
        ];
        let inst = Instance::from_jobs_with_ids(jobs);
        // canonical order: (0,9) then (0,5) then (1,3)
        assert_eq!(inst.jobs()[0].id, JobId(1));
        assert_eq!(inst.jobs()[1].id, JobId(0));
        assert_eq!(inst.jobs()[2].id, JobId(2));
        // lookup by id still works
        assert_eq!(inst.job(JobId(0)).deadline, Rat::from(5i64));
        assert_eq!(inst.job(JobId(1)).deadline, Rat::from(9i64));
        assert_eq!(inst.job(JobId(2)).release, Rat::from(1i64));
    }

    #[test]
    #[should_panic(expected = "duplicate job id")]
    fn from_jobs_with_ids_rejects_duplicates() {
        let jobs = vec![
            Job::new(JobId(0), Rat::zero(), Rat::from(5i64), Rat::one()),
            Job::new(JobId(0), Rat::zero(), Rat::from(9i64), Rat::one()),
        ];
        let _ = Instance::from_jobs_with_ids(jobs);
    }

    #[test]
    fn events_and_volume() {
        let inst = Instance::from_ints([(0, 4, 2), (2, 6, 2), (0, 4, 1)]);
        let evs = inst.event_points();
        assert_eq!(evs.len(), 4); // 0, 2, 4, 6
        assert_eq!(inst.total_processing(), Rat::from(5i64));
        assert_eq!(inst.window_union().length(), Rat::from(6i64));
        assert_eq!(inst.volume_lower_bound(), 1);
    }

    #[test]
    fn volume_bound_rounds_up() {
        // 7 units of work in a 2-unit union -> at least 4 machines.
        let inst = Instance::from_ints([(0, 2, 2), (0, 2, 2), (0, 2, 2), (0, 2, 1)]);
        assert_eq!(inst.volume_lower_bound(), 4);
    }

    #[test]
    fn agreeable_detection() {
        assert!(Instance::from_ints([(0, 4, 1), (1, 5, 1), (2, 6, 1)]).is_agreeable());
        // nested with distinct releases -> not agreeable
        assert!(!Instance::from_ints([(0, 10, 1), (1, 5, 1)]).is_agreeable());
        // equal releases with different deadlines are fine
        assert!(Instance::from_ints([(0, 10, 1), (0, 5, 1), (1, 11, 1)]).is_agreeable());
        // equal releases, later job must still dominate earlier releases
        assert!(!Instance::from_ints([(0, 10, 1), (1, 11, 1), (1, 9, 1)]).is_agreeable());
        assert!(Instance::empty().is_agreeable());
    }

    #[test]
    fn laminar_detection() {
        // properly nested
        assert!(Instance::from_ints([(0, 10, 1), (1, 5, 1), (2, 4, 1), (6, 9, 1)]).is_laminar());
        // crossing windows
        assert!(!Instance::from_ints([(0, 5, 1), (3, 8, 1)]).is_laminar());
        // disjoint windows are laminar
        assert!(Instance::from_ints([(0, 2, 1), (3, 5, 1)]).is_laminar());
        // identical windows are laminar (mutually contained)
        assert!(Instance::from_ints([(0, 5, 2), (0, 5, 3)]).is_laminar());
        assert!(Instance::empty().is_laminar());
    }

    #[test]
    fn classification() {
        assert_eq!(
            Instance::from_ints([(0, 2, 1), (3, 5, 1)]).classify(),
            StructureClass::Both
        );
        assert_eq!(
            Instance::from_ints([(0, 10, 1), (1, 5, 1)]).classify(),
            StructureClass::Laminar
        );
        assert_eq!(
            Instance::from_ints([(0, 4, 1), (1, 5, 1)]).classify(),
            StructureClass::Agreeable
        );
        assert_eq!(
            Instance::from_ints([(0, 5, 1), (3, 8, 1), (4, 6, 1)]).classify(),
            StructureClass::General
        );
    }

    #[test]
    fn loose_tight_split() {
        let inst = Instance::from_ints([(0, 10, 2), (0, 10, 9)]);
        let alpha = Rat::ratio(1, 2);
        assert!(!inst.all_loose(&alpha));
        let (loose, tight) = inst.split_loose_tight(&alpha);
        assert_eq!(loose.len(), 1);
        assert_eq!(tight.len(), 1);
        assert_eq!(loose.jobs()[0].processing, Rat::from(2i64));
        assert_eq!(tight.jobs()[0].processing, Rat::from(9i64));
    }

    #[test]
    fn scale_processing_lemma4() {
        let inst = Instance::from_ints([(0, 10, 2)]);
        let scaled = inst.scale_processing(&Rat::ratio(3, 1));
        assert_eq!(scaled.jobs()[0].processing, Rat::from(6i64));
        assert_eq!(scaled.jobs()[0].window(), inst.jobs()[0].window());
    }

    #[test]
    #[should_panic(expected = "infeasible window")]
    fn scale_processing_rejects_overflow() {
        let inst = Instance::from_ints([(0, 10, 6)]);
        let _ = inst.scale_processing(&Rat::from(2i64));
    }

    #[test]
    fn window_shrink_lemma3() {
        let inst = Instance::from_ints([(0, 10, 4)]); // laxity 6
        let gamma = Rat::ratio(1, 2);
        let right = inst.shrink_windows_right(&gamma);
        assert_eq!(right.jobs()[0].deadline, Rat::from(7i64)); // 10 - 3
        assert_eq!(right.jobs()[0].release, Rat::zero());
        let left = inst.shrink_windows_left(&gamma);
        assert_eq!(left.jobs()[0].release, Rat::from(3i64));
        assert_eq!(left.jobs()[0].deadline, Rat::from(10i64));
        // processing unchanged, still feasible
        assert_eq!(left.jobs()[0].processing, Rat::from(4i64));
    }

    #[test]
    fn lemma4_pieces_structure() {
        // One job (0, 12, 3), α = 1/3, s = 3/2 (αs = 1/2 < 1), ⌈s⌉ = 2.
        // δ = (1 − 1/2)·12/2 = 3; step = 6.
        let inst = Instance::from_ints([(0, 12, 3)]);
        let s = Rat::ratio(3, 2);
        let alpha = Rat::ratio(1, 3);
        let families = inst.lemma4_pieces(&s, &alpha);
        assert_eq!(families.len(), 2);
        let p1 = &families[0].jobs()[0];
        let p2 = &families[1].jobs()[0];
        // piece 1: [0, 6), processing 3
        assert_eq!(p1.release, Rat::zero());
        assert_eq!(p1.deadline, Rat::from(6i64));
        assert_eq!(p1.processing, Rat::from(3i64));
        // piece 2: [6, s·p + 2δ) = [6, 4.5 + 6 = 21/2), processing (s−1)p = 3/2
        assert_eq!(p2.release, Rat::from(6i64));
        assert_eq!(p2.deadline, Rat::ratio(21, 2));
        assert_eq!(p2.processing, Rat::ratio(3, 2));
        // total piece volume = s·p, windows inside I(j), ordered disjoint
        assert_eq!(
            &p1.processing + &p2.processing,
            &s * &inst.jobs()[0].processing
        );
        assert!(p2.deadline <= inst.jobs()[0].deadline);
        assert!(p1.deadline <= p2.release);
    }

    #[test]
    fn lemma4_pieces_integral_speed() {
        // s = 2 integral: both pieces carry full processing p.
        let inst = Instance::from_ints([(0, 20, 4)]);
        let families = inst.lemma4_pieces(&Rat::from(2i64), &Rat::ratio(1, 4));
        assert_eq!(families.len(), 2);
        for f in &families {
            assert_eq!(f.jobs()[0].processing, Rat::from(4i64));
        }
        // scaled instance J^s is exactly covered: 2·4 = 8 = s·p.
    }

    #[test]
    #[should_panic(expected = "α·s < 1")]
    fn lemma4_rejects_fast_speeds() {
        let inst = Instance::from_ints([(0, 12, 3)]);
        let _ = inst.lemma4_pieces(&Rat::from(4i64), &Rat::ratio(1, 3));
    }

    #[test]
    #[should_panic(expected = "requires α-loose")]
    fn lemma4_rejects_tight_jobs() {
        let inst = Instance::from_ints([(0, 4, 3)]);
        let _ = inst.lemma4_pieces(&Rat::ratio(3, 2), &Rat::ratio(1, 3));
    }

    #[test]
    fn affine_embedding() {
        let inst = Instance::from_ints([(0, 8, 4)]);
        // embed [0,8) into [100, 102): scale 1/4
        let emb = inst.affine(&Rat::zero(), &Rat::from(100i64), &Rat::ratio(1, 4));
        let j = &emb.jobs()[0];
        assert_eq!(j.release, Rat::from(100i64));
        assert_eq!(j.deadline, Rat::from(102i64));
        assert_eq!(j.processing, Rat::from(1i64));
        // laxity scales linearly
        assert_eq!(j.laxity(), Rat::from(1i64));
    }

    #[test]
    fn contribution_sums() {
        let inst = Instance::from_ints([(0, 4, 4), (0, 4, 2)]);
        let full = IntervalSet::from_intervals([Interval::ints(0, 4)]);
        // job 1 contributes 4 (laxity 0), job 2 contributes 4-2=2... wait:
        // job 2 has laxity 2 so contributes 4-2 = 2.
        assert_eq!(inst.contribution(&full), Rat::from(6i64));
    }

    #[test]
    fn delta_ratio() {
        let inst = Instance::from_ints([(0, 10, 1), (0, 10, 8)]);
        assert_eq!(inst.delta(), Some(Rat::from(8i64)));
        assert_eq!(Instance::empty().delta(), None);
    }
}
