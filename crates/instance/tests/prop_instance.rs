//! Property tests for the instance model: interval-set algebra, structural
//! classification invariance, transforms, and lossless serialization.

use mm_instance::generators::{agreeable, laminar, AgreeableCfg, LaminarCfg};
use mm_instance::{Instance, Interval, IntervalSet};
use mm_numeric::Rat;
use proptest::prelude::*;

fn arb_intervals() -> impl Strategy<Value = Vec<(i64, i64)>> {
    proptest::collection::vec((0i64..50, 1i64..12).prop_map(|(a, w)| (a, a + w)), 0..12)
}

fn set_of(v: &[(i64, i64)]) -> IntervalSet {
    IntervalSet::from_intervals(v.iter().map(|&(a, b)| Interval::ints(a, b)))
}

proptest! {
    /// Union is commutative, associative, idempotent; length is monotone.
    #[test]
    fn interval_set_union_laws(a in arb_intervals(), b in arb_intervals(), c in arb_intervals()) {
        let (sa, sb, sc) = (set_of(&a), set_of(&b), set_of(&c));
        prop_assert_eq!(sa.union(&sb), sb.union(&sa));
        prop_assert_eq!(sa.union(&sb).union(&sc), sa.union(&sb.union(&sc)));
        prop_assert_eq!(sa.union(&sa), sa.clone());
        prop_assert!(sa.union(&sb).length() >= sa.length());
        prop_assert!(sa.union(&sb).length() <= sa.length() + sb.length());
    }

    /// Intersection distributes with membership and length bounds.
    #[test]
    fn interval_set_intersection_laws(a in arb_intervals(), b in arb_intervals(), probe in 0i64..70) {
        let (sa, sb) = (set_of(&a), set_of(&b));
        let inter = sa.intersection(&sb);
        prop_assert_eq!(inter.clone(), sb.intersection(&sa));
        prop_assert!(inter.length() <= sa.length().min(sb.length()));
        let t = Rat::from(probe);
        prop_assert_eq!(inter.contains(&t), sa.contains(&t) && sb.contains(&t));
        // inclusion–exclusion on measure
        let u = sa.union(&sb);
        prop_assert_eq!(u.length() + inter.length(), sa.length() + sb.length());
    }

    /// Parts of a set are sorted, disjoint, and separated by positive gaps.
    #[test]
    fn interval_set_normal_form(a in arb_intervals()) {
        let s = set_of(&a);
        for w in s.parts().windows(2) {
            prop_assert!(w[0].end < w[1].start, "parts must be separated");
        }
        for p in s.parts() {
            prop_assert!(!p.is_empty());
        }
    }

    /// Canonicalization is idempotent: rebuilding an instance from its own
    /// jobs preserves it exactly.
    #[test]
    fn canonicalization_idempotent(jobs in proptest::collection::vec((0i64..20, 1i64..10, 1i64..8), 1..15)) {
        let inst = Instance::from_ints(jobs.iter().map(|&(r, w, p)| (r, r + w, p.min(w))).collect::<Vec<_>>());
        let rebuilt = Instance::from_jobs(inst.jobs().to_vec());
        prop_assert_eq!(&rebuilt, &inst);
        let preserved = Instance::from_jobs_with_ids(inst.jobs().to_vec());
        prop_assert_eq!(&preserved, &inst);
    }

    /// Affine embeddings preserve structure classification and scale the
    /// optimum-relevant quantities consistently.
    #[test]
    fn affine_preserves_structure(seed in 0u64..20, off in -10i64..10, num in 1i64..6, den in 1i64..6) {
        let inst = laminar(&LaminarCfg { depth: 2, branching: 2, ..Default::default() }, seed);
        let scale = Rat::ratio(num, den);
        let emb = inst.affine(&Rat::zero(), &Rat::from(off), &scale);
        prop_assert_eq!(emb.is_laminar(), inst.is_laminar());
        prop_assert_eq!(emb.is_agreeable(), inst.is_agreeable());
        prop_assert_eq!(emb.len(), inst.len());
        prop_assert_eq!(emb.total_processing(), inst.total_processing() * &scale);
        // windows scale too
        prop_assert_eq!(emb.window_union().length(), inst.window_union().length() * &scale);
    }

    /// Loose/tight is a partition for every α.
    #[test]
    fn loose_tight_partition(seed in 0u64..20, num in 1i64..10) {
        let alpha = Rat::ratio(num, 10);
        if alpha >= Rat::one() { return Ok(()); }
        let inst = agreeable(&AgreeableCfg { n: 20, ..Default::default() }, seed);
        let (loose_part, tight_part) = inst.split_loose_tight(&alpha);
        prop_assert_eq!(loose_part.len() + tight_part.len(), inst.len());
        prop_assert!(loose_part.iter().all(|j| j.is_loose(&alpha)));
        prop_assert!(tight_part.iter().all(|j| j.is_tight(&alpha)));
        prop_assert_eq!(
            loose_part.total_processing() + tight_part.total_processing(),
            inst.total_processing()
        );
    }

    /// JSON round-trips are lossless for arbitrary integer instances.
    #[test]
    fn json_roundtrip(jobs in proptest::collection::vec((0i64..20, 1i64..10, 1i64..8), 1..12)) {
        let inst = Instance::from_ints(jobs.iter().map(|&(r, w, p)| (r, r + w, p.min(w))).collect::<Vec<_>>());
        let json = mm_instance::io::to_json(&inst).unwrap();
        let back = mm_instance::io::from_json(&json).unwrap();
        prop_assert_eq!(back, inst);
    }

    /// Contribution is monotone in the union and bounded by `p_j`.
    #[test]
    fn contribution_monotonicity(a in arb_intervals(), b in arb_intervals(), r in 0i64..20, w in 2i64..15, p in 1i64..10) {
        let p = p.min(w);
        let inst = Instance::from_ints([(r, r + w, p)]);
        let job = &inst.jobs()[0];
        let (sa, sb) = (set_of(&a), set_of(&b));
        let u = sa.union(&sb);
        prop_assert!(job.contribution(&sa) <= job.contribution(&u));
        prop_assert!(job.contribution(&u) <= job.processing);
    }
}
