//! Implementation of the `machmin` command-line tool.
//!
//! Kept in the library (rather than the binary) so the argument parsing and
//! command logic are unit-testable; `src/bin/machmin.rs` is a thin shim.

use std::fmt::Write as _;
use std::io::BufWriter;

use mm_core::{AgreeableSplit, Edf, EdfFirstFit, LaminarBudget, Llf, MediumFit};
use mm_instance::generators::{
    agreeable, laminar, loose, uniform, AgreeableCfg, LaminarCfg, UniformCfg,
};
use mm_instance::{io, Instance};
use mm_numeric::Rat;
use mm_opt::{
    contribution_bound, demigrate, optimal_machines, optimal_machines_traced, theorem2_bound,
};
use mm_sim::{render_gantt, run_policy_traced, verify, SimConfig, VerifyOptions};
use mm_trace::{JsonlSink, Metrics, MetricsSink, TeeSink};

/// A parsed command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// `solve <instance.json> [--trace f.jsonl] [--metrics f.json]` — exact
    /// optimum + Theorem 1 certificate.
    Solve {
        /// Instance file.
        path: String,
        /// JSONL event-trace output file.
        trace: Option<String>,
        /// Aggregated metrics JSON output file.
        metrics: Option<String>,
    },
    /// `classify <instance.json>` — structure, Δ, looseness report.
    Classify {
        /// Instance file.
        path: String,
    },
    /// `schedule <instance.json> --policy <name> [--machines N]
    /// [--trace f.jsonl] [--metrics f.json]`.
    Schedule {
        /// Instance file.
        path: String,
        /// Policy name (edf, llf, edf-ff, medium-fit, agreeable, laminar).
        policy: String,
        /// Machine budget (defaults to one per job).
        machines: Option<usize>,
        /// JSONL event-trace output file.
        trace: Option<String>,
        /// Aggregated metrics JSON output file.
        metrics: Option<String>,
    },
    /// `demigrate <instance.json>` — offline migratory → non-migratory.
    Demigrate {
        /// Instance file.
        path: String,
    },
    /// `generate <family> --n N --seed S --out <file.json>`.
    Generate {
        /// Family: uniform, agreeable, laminar, loose.
        family: String,
        /// Number of jobs (ignored for laminar).
        n: usize,
        /// RNG seed.
        seed: u64,
        /// Output file.
        out: String,
    },
    /// `bench [--quick] [--out f.json] [--check f.json]` — tracked
    /// performance baseline (see `mm_bench::baseline`).
    Bench {
        /// Run the reduced workload set (CI smoke mode).
        quick: bool,
        /// Baseline JSON output file (default `BENCH_2.json`).
        out: String,
        /// Committed baseline to gate deterministic counters against.
        check: Option<String>,
    },
    /// `help`.
    Help,
}

/// CLI error with a user-facing message.
#[derive(Debug)]
pub struct CliError(pub String);

impl core::fmt::Display for CliError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Like [`flag`], but a flag present without a value is an error instead of
/// being silently ignored (a typo'd `--trace` must not drop the trace).
fn value_flag(args: &[String], name: &str) -> Result<Option<String>, CliError> {
    match args.iter().position(|a| a == name) {
        None => Ok(None),
        Some(i) => match args.get(i + 1) {
            Some(v) => Ok(Some(v.clone())),
            None => Err(CliError(format!("{name} requires a value"))),
        },
    }
}

/// Parses raw arguments (without the program name).
pub fn parse(args: &[String]) -> Result<Command, CliError> {
    let cmd = args.first().map(String::as_str).unwrap_or("help");
    match cmd {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "solve" => Ok(Command::Solve {
            path: args.get(1).cloned().ok_or_else(usage_solve)?,
            trace: value_flag(args, "--trace")?,
            metrics: value_flag(args, "--metrics")?,
        }),
        "classify" => Ok(Command::Classify {
            path: args.get(1).cloned().ok_or_else(usage_classify)?,
        }),
        "demigrate" => Ok(Command::Demigrate {
            path: args
                .get(1)
                .cloned()
                .ok_or_else(|| CliError("usage: machmin demigrate <instance.json>".into()))?,
        }),
        "schedule" => {
            let path = args.get(1).cloned().ok_or_else(usage_schedule)?;
            let policy = flag(args, "--policy").ok_or_else(usage_schedule)?;
            let machines = match flag(args, "--machines") {
                Some(v) => Some(
                    v.parse()
                        .map_err(|_| CliError(format!("invalid --machines value: {v}")))?,
                ),
                None => None,
            };
            Ok(Command::Schedule {
                path,
                policy,
                machines,
                trace: value_flag(args, "--trace")?,
                metrics: value_flag(args, "--metrics")?,
            })
        }
        "generate" => {
            let family = args.get(1).cloned().ok_or_else(usage_generate)?;
            let n = flag(args, "--n")
                .unwrap_or_else(|| "50".into())
                .parse()
                .map_err(|_| CliError("invalid --n".into()))?;
            let seed = flag(args, "--seed")
                .unwrap_or_else(|| "0".into())
                .parse()
                .map_err(|_| CliError("invalid --seed".into()))?;
            let out = flag(args, "--out").ok_or_else(usage_generate)?;
            Ok(Command::Generate {
                family,
                n,
                seed,
                out,
            })
        }
        "bench" => Ok(Command::Bench {
            quick: args.iter().any(|a| a == "--quick"),
            out: value_flag(args, "--out")?.unwrap_or_else(|| "BENCH_2.json".into()),
            check: value_flag(args, "--check")?,
        }),
        other => Err(CliError(format!(
            "unknown command `{other}`; run `machmin help`"
        ))),
    }
}

fn usage_solve() -> CliError {
    CliError("usage: machmin solve <instance.json> [--trace f.jsonl] [--metrics f.json]".into())
}

fn usage_classify() -> CliError {
    CliError("usage: machmin classify <instance.json>".into())
}

fn usage_schedule() -> CliError {
    CliError(
        "usage: machmin schedule <instance.json> --policy <edf|llf|edf-ff|medium-fit|agreeable|laminar> [--machines N] [--trace f.jsonl] [--metrics f.json]"
            .into(),
    )
}

fn usage_generate() -> CliError {
    CliError(
        "usage: machmin generate <uniform|agreeable|laminar|loose> [--n N] [--seed S] --out <file.json>"
            .into(),
    )
}

/// Help text.
pub fn help_text() -> &'static str {
    "machmin — online machine minimization (SPAA'16 reproduction)\n\
     \n\
     commands:\n\
       solve <inst.json>                        exact migratory optimum + Theorem 1 certificate\n\
       classify <inst.json>                     structure (agreeable/laminar), Δ, looseness\n\
       schedule <inst.json> --policy P [--machines N]\n\
                                                run an online policy and verify its schedule\n\
                                                P ∈ {edf, llf, edf-ff, medium-fit, agreeable, laminar}\n\
       demigrate <inst.json>                    offline migratory → non-migratory transformation\n\
       generate <family> [--n N] [--seed S] --out <file.json>\n\
                                                family ∈ {uniform, agreeable, laminar, loose}\n\
       bench [--quick] [--out f.json] [--check f.json]\n\
                                                seeded perf baseline: fast path + prober reuse vs\n\
                                                BigInt + fresh-network reference (default out\n\
                                                BENCH_2.json); --check gates deterministic counters\n\
       help                                     this text\n\
     \n\
     observability (solve, schedule):\n\
       --trace <file.jsonl>                     stream typed events (one JSON object per line)\n\
       --metrics <file.json>                    write aggregated counters and histograms\n"
}

fn load(path: &str) -> Result<Instance, CliError> {
    io::load(path).map_err(|e| CliError(format!("cannot load {path}: {e}")))
}

/// The `--trace` / `--metrics` sink pair. Both are optional; with neither
/// requested the composed sink is disabled and the traced code paths cost
/// nothing beyond one boolean check per event site.
struct CliSinks {
    jsonl: Option<JsonlSink<BufWriter<std::fs::File>>>,
    metrics: Option<MetricsSink>,
    trace_path: Option<String>,
    metrics_path: Option<String>,
}

impl CliSinks {
    fn open(trace: Option<String>, metrics: Option<String>) -> Result<Self, CliError> {
        let jsonl = match &trace {
            Some(path) => {
                let file = std::fs::File::create(path)
                    .map_err(|e| CliError(format!("cannot create {path}: {e}")))?;
                Some(JsonlSink::new(BufWriter::new(file)))
            }
            None => None,
        };
        let metrics_sink = metrics.is_some().then(MetricsSink::new);
        Ok(CliSinks {
            jsonl,
            metrics: metrics_sink,
            trace_path: trace,
            metrics_path: metrics,
        })
    }

    /// A borrowed sink to lend to one traced run (tee of both outputs).
    #[allow(clippy::type_complexity)]
    fn sink(
        &mut self,
    ) -> TeeSink<&mut Option<JsonlSink<BufWriter<std::fs::File>>>, &mut Option<MetricsSink>> {
        TeeSink(&mut self.jsonl, &mut self.metrics)
    }

    /// Flushes the trace, writes the metrics file, appends report lines to
    /// `out`, and hands back the aggregated metrics for cross-checks.
    fn finish(self, out: &mut String) -> Result<Option<Metrics>, CliError> {
        if let (Some(sink), Some(path)) = (self.jsonl, &self.trace_path) {
            let events = sink.written();
            sink.finish()
                .map_err(|e| CliError(format!("cannot write trace {path}: {e}")))?;
            let _ = writeln!(out, "trace: {events} events -> {path}");
        }
        let metrics = self.metrics.map(|s| s.metrics);
        if let (Some(metrics), Some(path)) = (&metrics, &self.metrics_path) {
            std::fs::write(path, metrics.to_json().to_pretty())
                .map_err(|e| CliError(format!("cannot write metrics {path}: {e}")))?;
            let _ = writeln!(out, "metrics -> {path}");
        }
        Ok(metrics)
    }
}

/// Executes a command, returning the text to print.
pub fn execute(cmd: Command) -> Result<String, CliError> {
    let mut out = String::new();
    match cmd {
        Command::Help => out.push_str(help_text()),
        Command::Solve {
            path,
            trace,
            metrics,
        } => {
            let inst = load(&path)?;
            let mut sinks = CliSinks::open(trace, metrics)?;
            let m = optimal_machines_traced(&inst, sinks.sink());
            let cert = contribution_bound(&inst);
            let _ = writeln!(out, "jobs: {}", inst.len());
            let _ = writeln!(out, "migratory optimum m(J): {m}");
            let _ = writeln!(
                out,
                "Theorem 1 certificate: ⌈{}⌉ = {} on witness {}",
                cert.density, cert.bound, cert.witness
            );
            sinks.finish(&mut out)?;
        }
        Command::Classify { path } => {
            let inst = load(&path)?;
            let _ = writeln!(out, "jobs: {}", inst.len());
            let _ = writeln!(out, "structure: {:?}", inst.classify());
            if let Some(d) = inst.delta() {
                let _ = writeln!(out, "Δ (max/min processing): {}", d);
            }
            for (num, den) in [(1i64, 2i64), (63, 100), (9, 10)] {
                let alpha = Rat::ratio(num, den);
                let loose = inst.iter().filter(|j| j.is_loose(&alpha)).count();
                let _ = writeln!(
                    out,
                    "α = {num}/{den}: {loose} loose / {} tight",
                    inst.len() - loose
                );
            }
        }
        Command::Demigrate { path } => {
            let inst = load(&path)?;
            let m = optimal_machines(&inst);
            let res = demigrate(&inst);
            let mut sched = res.schedule;
            verify(&inst, &mut sched, &VerifyOptions::nonmigratory())
                .map_err(|e| CliError(format!("internal: demigrated schedule invalid: {e:?}")))?;
            let _ = writeln!(out, "migratory optimum: {m}");
            let _ = writeln!(
                out,
                "non-migratory machines: {} (Theorem 2 bound: {})",
                res.machines,
                theorem2_bound(m)
            );
        }
        Command::Schedule {
            path,
            policy,
            machines,
            trace,
            metrics,
        } => {
            let inst = load(&path)?;
            let budget = machines.unwrap_or(inst.len()).max(1);
            let mut sinks = CliSinks::open(trace, metrics)?;
            let m = optimal_machines_traced(&inst, sinks.sink());
            let (outcome, opts) = match policy.as_str() {
                "edf" => (
                    run_policy_traced(&inst, Edf, SimConfig::migratory(budget), sinks.sink()),
                    VerifyOptions::migratory(),
                ),
                "llf" => (
                    run_policy_traced(
                        &inst,
                        Llf::new(),
                        SimConfig::migratory(budget),
                        sinks.sink(),
                    ),
                    VerifyOptions::migratory(),
                ),
                "edf-ff" => (
                    run_policy_traced(
                        &inst,
                        EdfFirstFit::new(),
                        SimConfig::nonmigratory(budget),
                        sinks.sink(),
                    ),
                    VerifyOptions::nonmigratory(),
                ),
                "medium-fit" => (
                    run_policy_traced(
                        &inst,
                        MediumFit::new(),
                        SimConfig::nonmigratory(budget),
                        sinks.sink(),
                    ),
                    VerifyOptions::nonpreemptive(),
                ),
                "agreeable" => (
                    run_policy_traced(
                        &inst,
                        AgreeableSplit::for_optimum(m),
                        SimConfig::nonmigratory(
                            AgreeableSplit::for_optimum(m).total_machines().max(budget),
                        ),
                        sinks.sink(),
                    ),
                    VerifyOptions::nonmigratory(),
                ),
                "laminar" => {
                    let p = LaminarBudget::new(
                        LaminarBudget::suggested_m_prime(m, 4),
                        (4 * m) as usize,
                        Rat::half(),
                    );
                    let total = p.total_machines().max(budget);
                    (
                        run_policy_traced(&inst, p, SimConfig::nonmigratory(total), sinks.sink()),
                        VerifyOptions::nonmigratory(),
                    )
                }
                other => return Err(CliError(format!("unknown policy `{other}`"))),
            };
            let mut outcome = match outcome {
                Ok(o) => o,
                Err(e) => {
                    // Still flush the partial trace: runs that die against the
                    // step cap (or a policy bug) are exactly the ones worth
                    // inspecting offline.
                    sinks.finish(&mut out)?;
                    return Err(CliError(format!("simulation failed: {e}")));
                }
            };
            let _ = writeln!(out, "policy: {policy}, budget: {budget}, optimum m: {m}");
            let stats = if outcome.feasible() {
                let stats = verify(&outcome.instance, &mut outcome.schedule, &opts)
                    .map_err(|e| CliError(format!("schedule failed verification: {e:?}")))?;
                let _ = writeln!(
                    out,
                    "feasible: yes | machines used: {} | migrations: {} | preemptions: {}",
                    stats.machines_used, stats.migrations, stats.preemptions
                );
                Some(stats)
            } else {
                let _ = writeln!(
                    out,
                    "feasible: NO ({} deadline misses within budget {budget})",
                    outcome.misses.len()
                );
                None
            };
            if let Some(metrics) = sinks.finish(&mut out)? {
                // The trace counters are defined to agree with the verified
                // schedule's stats; refuse to report silently-diverging ones.
                if let Some(stats) = &stats {
                    let ok = metrics.machines_opened == stats.machines_used as u64
                        && metrics.migrations == stats.migrations as u64
                        && metrics.preemptions == stats.preemptions as u64;
                    if !ok {
                        return Err(CliError(format!(
                            "trace/verifier disagreement: metrics say \
                             {}/{}/{} (machines/migrations/preemptions), \
                             verifier says {}/{}/{}",
                            metrics.machines_opened,
                            metrics.migrations,
                            metrics.preemptions,
                            stats.machines_used,
                            stats.migrations,
                            stats.preemptions
                        )));
                    }
                    let _ = writeln!(out, "trace counters agree with verified schedule");
                }
            }
            outcome.schedule.compact_machines();
            out.push_str(&render_gantt(&mut outcome.schedule, 72));
        }
        Command::Bench {
            quick,
            out: path,
            check,
        } => {
            let doc = mm_bench::baseline::run(quick);
            if let Some(workloads) = doc.get("workloads").and_then(mm_json::Json::as_arr) {
                for w in workloads {
                    let name = w.get("name").and_then(mm_json::Json::as_str).unwrap_or("?");
                    let speedup = w
                        .get("speedup")
                        .and_then(mm_json::Json::as_f64)
                        .unwrap_or(0.0);
                    let m = w
                        .get("optimal_machines")
                        .and_then(mm_json::Json::as_i64)
                        .unwrap_or(-1);
                    let _ = writeln!(out, "{name}: m = {m}, speedup {speedup:.2}x");
                }
            }
            if let Some(total) = doc
                .get("totals")
                .and_then(|t| t.get("speedup"))
                .and_then(mm_json::Json::as_f64)
            {
                let _ = writeln!(out, "total probe-workload speedup: {total:.2}x");
            }
            std::fs::write(&path, doc.to_pretty())
                .map_err(|e| CliError(format!("cannot write {path}: {e}")))?;
            let _ = writeln!(out, "baseline -> {path}");
            if let Some(check_path) = check {
                let committed = std::fs::read_to_string(&check_path)
                    .map_err(|e| CliError(format!("cannot read baseline {check_path}: {e}")))?;
                let committed = mm_json::parse(&committed)
                    .map_err(|e| CliError(format!("cannot parse baseline {check_path}: {e}")))?;
                match mm_bench::baseline::check_against(&doc, &committed) {
                    Ok(()) => {
                        let _ = writeln!(out, "counters within committed baseline {check_path}");
                    }
                    Err(problems) => {
                        return Err(CliError(format!(
                            "bench counter regression vs {check_path}:\n  {}",
                            problems.join("\n  ")
                        )));
                    }
                }
            }
        }
        Command::Generate {
            family,
            n,
            seed,
            out: path,
        } => {
            let inst = match family.as_str() {
                "uniform" => uniform(
                    &UniformCfg {
                        n,
                        ..Default::default()
                    },
                    seed,
                ),
                "agreeable" => agreeable(
                    &AgreeableCfg {
                        n,
                        ..Default::default()
                    },
                    seed,
                ),
                "laminar" => laminar(&LaminarCfg::default(), seed),
                "loose" => loose(
                    &UniformCfg {
                        n,
                        ..Default::default()
                    },
                    &Rat::ratio(1, 2),
                    seed,
                ),
                other => return Err(CliError(format!("unknown family `{other}`"))),
            };
            io::save(&inst, &path).map_err(|e| CliError(format!("cannot write {path}: {e}")))?;
            let _ = writeln!(out, "wrote {} jobs to {path}", inst.len());
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parse_commands() {
        assert_eq!(parse(&argv("help")).unwrap(), Command::Help);
        assert_eq!(
            parse(&argv("solve a.json")).unwrap(),
            Command::Solve {
                path: "a.json".into(),
                trace: None,
                metrics: None
            }
        );
        assert_eq!(
            parse(&argv("solve a.json --trace t.jsonl --metrics m.json")).unwrap(),
            Command::Solve {
                path: "a.json".into(),
                trace: Some("t.jsonl".into()),
                metrics: Some("m.json".into())
            }
        );
        assert_eq!(
            parse(&argv("schedule a.json --policy edf --machines 3")).unwrap(),
            Command::Schedule {
                path: "a.json".into(),
                policy: "edf".into(),
                machines: Some(3),
                trace: None,
                metrics: None
            }
        );
        assert_eq!(
            parse(&argv("schedule a.json --policy llf --trace t.jsonl")).unwrap(),
            Command::Schedule {
                path: "a.json".into(),
                policy: "llf".into(),
                machines: None,
                trace: Some("t.jsonl".into()),
                metrics: None
            }
        );
        assert_eq!(
            parse(&argv("generate uniform --n 10 --seed 7 --out x.json")).unwrap(),
            Command::Generate {
                family: "uniform".into(),
                n: 10,
                seed: 7,
                out: "x.json".into()
            }
        );
        assert_eq!(
            parse(&argv("bench")).unwrap(),
            Command::Bench {
                quick: false,
                out: "BENCH_2.json".into(),
                check: None
            }
        );
        assert_eq!(
            parse(&argv("bench --quick --out b.json --check BENCH_2.json")).unwrap(),
            Command::Bench {
                quick: true,
                out: "b.json".into(),
                check: Some("BENCH_2.json".into())
            }
        );
        assert!(parse(&argv("frobnicate")).is_err());
        assert!(parse(&argv("schedule a.json")).is_err());
        assert!(parse(&argv("schedule a.json --policy edf --machines x")).is_err());
        // --trace/--metrics without a value must error, not silently no-op
        let err = parse(&argv("schedule a.json --policy edf --trace")).unwrap_err();
        assert!(err.0.contains("--trace requires a value"), "{}", err.0);
        assert!(parse(&argv("solve a.json --metrics")).is_err());
        // empty argv = help
        assert_eq!(parse(&[]).unwrap(), Command::Help);
    }

    #[test]
    fn roundtrip_generate_solve_schedule() {
        let dir = std::env::temp_dir().join("machmin_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("inst.json").to_string_lossy().to_string();

        let msg = execute(Command::Generate {
            family: "agreeable".into(),
            n: 12,
            seed: 3,
            out: path.clone(),
        })
        .unwrap();
        assert!(msg.contains("wrote 12 jobs"));

        let msg = execute(Command::Solve {
            path: path.clone(),
            trace: None,
            metrics: None,
        })
        .unwrap();
        assert!(msg.contains("migratory optimum"));
        assert!(msg.contains("Theorem 1 certificate"));

        let msg = execute(Command::Classify { path: path.clone() }).unwrap();
        assert!(msg.contains("Agreeable") || msg.contains("Both"));

        let msg = execute(Command::Schedule {
            path: path.clone(),
            policy: "edf-ff".into(),
            machines: None,
            trace: None,
            metrics: None,
        })
        .unwrap();
        assert!(msg.contains("feasible: yes"), "{msg}");
        assert!(msg.contains("machines used"));

        let msg = execute(Command::Demigrate { path: path.clone() }).unwrap();
        assert!(msg.contains("non-migratory machines"));

        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn schedule_reports_misses_gracefully() {
        let dir = std::env::temp_dir().join("machmin_cli_test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tight.json").to_string_lossy().to_string();
        let inst = Instance::from_ints([(0, 2, 2), (0, 2, 2), (0, 2, 2)]);
        io::save(&inst, &path).unwrap();
        let msg = execute(Command::Schedule {
            path: path.clone(),
            policy: "edf".into(),
            machines: Some(1),
            trace: None,
            metrics: None,
        })
        .unwrap();
        assert!(msg.contains("feasible: NO"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unknown_policy_and_family_error() {
        assert!(execute(Command::Schedule {
            path: "/nonexistent.json".into(),
            policy: "edf".into(),
            machines: None,
            trace: None,
            metrics: None
        })
        .is_err());
        let dir = std::env::temp_dir();
        assert!(execute(Command::Generate {
            family: "nope".into(),
            n: 3,
            seed: 0,
            out: dir.join("x.json").to_string_lossy().to_string()
        })
        .is_err());
    }

    #[test]
    fn schedule_trace_and_metrics_agree_with_verifier() {
        let dir = std::env::temp_dir().join("machmin_cli_test3");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("inst.json").to_string_lossy().to_string();
        let trace_path = dir.join("t.jsonl").to_string_lossy().to_string();
        let metrics_path = dir.join("m.json").to_string_lossy().to_string();

        execute(Command::Generate {
            family: "uniform".into(),
            n: 10,
            seed: 11,
            out: path.clone(),
        })
        .unwrap();

        let msg = execute(Command::Schedule {
            path: path.clone(),
            policy: "edf".into(),
            machines: None,
            trace: Some(trace_path.clone()),
            metrics: Some(metrics_path.clone()),
        })
        .unwrap();
        assert!(
            msg.contains("trace counters agree with verified schedule"),
            "{msg}"
        );
        assert!(msg.contains("trace:"), "{msg}");
        assert!(msg.contains("metrics ->"), "{msg}");

        // Every trace line is a standalone JSON object tagged with "event".
        let trace = std::fs::read_to_string(&trace_path).unwrap();
        let mut events = 0usize;
        for line in trace.lines() {
            let v = mm_json::parse(line).unwrap();
            assert!(
                v.get("event").and_then(mm_json::Json::as_str).is_some(),
                "{line}"
            );
            events += 1;
        }
        assert!(events > 0, "trace should not be empty");

        // The metrics file parses and mirrors the trace's released-job count.
        let metrics = mm_json::parse(&std::fs::read_to_string(&metrics_path).unwrap()).unwrap();
        let released = metrics
            .get("schedule")
            .and_then(|s| s.get("jobs_released"))
            .and_then(mm_json::Json::as_i64)
            .unwrap();
        assert_eq!(released, 10);

        // Solve with tracing emits feasibility probes into the same formats.
        let msg = execute(Command::Solve {
            path: path.clone(),
            trace: Some(trace_path.clone()),
            metrics: Some(metrics_path.clone()),
        })
        .unwrap();
        assert!(msg.contains("migratory optimum"), "{msg}");
        let trace = std::fs::read_to_string(&trace_path).unwrap();
        assert!(trace.contains("\"feasibility_probe\""), "{trace}");

        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&trace_path).ok();
        std::fs::remove_file(&metrics_path).ok();
    }

    #[test]
    fn bench_writes_baseline_and_checks_itself() {
        let dir = std::env::temp_dir().join("machmin_cli_bench");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bench.json").to_string_lossy().to_string();
        let msg = execute(Command::Bench {
            quick: true,
            out: path.clone(),
            check: None,
        })
        .unwrap();
        assert!(msg.contains("baseline ->"), "{msg}");
        // A run is a valid baseline for itself: counters are deterministic.
        let msg = execute(Command::Bench {
            quick: true,
            out: path.clone(),
            check: Some(path.clone()),
        })
        .unwrap();
        assert!(msg.contains("counters within committed baseline"), "{msg}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn help_mentions_all_commands() {
        let h = help_text();
        for cmd in [
            "solve",
            "classify",
            "schedule",
            "demigrate",
            "generate",
            "bench",
        ] {
            assert!(h.contains(cmd), "help is missing `{cmd}`");
        }
    }
}
