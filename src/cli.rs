//! Implementation of the `machmin` command-line tool.
//!
//! Kept in the library (rather than the binary) so the argument parsing and
//! command logic are unit-testable; `src/bin/machmin.rs` is a thin shim.
//!
//! Every failure is a categorized [`Error`] with a stable exit code (see
//! `src/error.rs`); a budget-limited `solve` that settles for a certified
//! bracket is a *success* (exit 0), because the bracket is still a proven
//! answer.

use std::fmt::Write as _;
use std::io::BufWriter;
use std::path::Path;
use std::sync::Arc;

use mm_adversary::{CompletedRun, GapResult, GapStop, MigrationGapAdversary, SweepCheckpoint};
use mm_cluster::{
    cluster_grid, cluster_solve, cluster_sweep, BalancePolicy, ClusterConfig, Coordinator,
    GridConfig, HedgeConfig, SweepConfig,
};
use mm_core::{AgreeableSplit, Edf, EdfFirstFit, LaminarBudget, Llf, MediumFit};
use mm_fault::{Budget, FaultInjector, FaultPlan, FaultSite};
use mm_instance::generators::{
    agreeable, laminar, loose, uniform, AgreeableCfg, LaminarCfg, UniformCfg,
};
use mm_instance::{io, Instance};
use mm_numeric::Rat;
use mm_opt::{
    contribution_bound, demigrate, optimal_machines, optimal_machines_budgeted_traced,
    optimal_machines_traced, theorem2_bound,
};
use mm_serve::{DynSink, LoadConfig, ServeConfig, Service};
use mm_sim::{render_gantt, run_policy_traced, verify, SimConfig, Simulation, VerifyOptions};
use mm_trace::{
    JsonlSink, Metrics, MetricsSink, NoopSink, SharedSink, TeeSink, TraceEvent, TraceSink,
};

pub use crate::Error;

/// A parsed command line.
// One `Command` exists per process and lives on the stack for the whole
// run, so the size skew between the flag-heavy `Cluster` variant and the
// rest costs nothing; boxing fields would only obscure the parser.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(clippy::large_enum_variant)]
pub enum Command {
    /// `solve <instance.json> [--trace f.jsonl] [--metrics f.json]
    /// [--budget-augmentations N] [--budget-ms N] [--budget-nodes N]
    /// [--attempts K]` — exact optimum + Theorem 1 certificate; with a
    /// budget, geometric escalation then a certified bracket.
    Solve {
        /// Instance file.
        path: String,
        /// Per-probe budget; `None` runs unbudgeted (always exact).
        budget: Option<Budget>,
        /// Escalation attempts (budget doubles between attempts).
        attempts: u32,
        /// JSONL event-trace output file.
        trace: Option<String>,
        /// Aggregated metrics JSON output file.
        metrics: Option<String>,
    },
    /// `classify <instance.json>` — structure, Δ, looseness report.
    Classify {
        /// Instance file.
        path: String,
    },
    /// `schedule <instance.json> --policy <name> [--machines N]
    /// [--trace f.jsonl] [--metrics f.json]`.
    Schedule {
        /// Instance file.
        path: String,
        /// Policy name (edf, llf, edf-ff, medium-fit, agreeable, laminar).
        policy: String,
        /// Machine budget (defaults to one per job).
        machines: Option<usize>,
        /// JSONL event-trace output file.
        trace: Option<String>,
        /// Aggregated metrics JSON output file.
        metrics: Option<String>,
    },
    /// `demigrate <instance.json>` — offline migratory → non-migratory.
    Demigrate {
        /// Instance file.
        path: String,
    },
    /// `generate <family> --n N --seed S --out <file.json>`.
    Generate {
        /// Family: uniform, agreeable, laminar, loose.
        family: String,
        /// Number of jobs (ignored for laminar).
        n: usize,
        /// RNG seed.
        seed: u64,
        /// Output file.
        out: String,
    },
    /// `adversary --policy <edf-ff|medium-fit> [--k K] [--machines N]
    /// [--checkpoint f.json [--resume]] [--export-stream f.jsonl]` —
    /// migration-gap sweep over depths `k = 2..=K`, checkpointing each
    /// completed depth.
    Adversary {
        /// Policy under attack (edf-ff, medium-fit).
        policy: String,
        /// Deepest target depth (≥ 2).
        k: usize,
        /// Machine budget handed to the policy.
        machines: usize,
        /// Checkpoint file, saved after every completed depth.
        checkpoint: Option<String>,
        /// Resume from the checkpoint file, skipping completed depths.
        resume: bool,
        /// Export the strongest forced-release trace of this invocation as
        /// a replayable JSONL event stream (`machmin online run` input).
        export_stream: Option<String>,
        /// JSONL event-trace output file.
        trace: Option<String>,
        /// Aggregated metrics JSON output file.
        metrics: Option<String>,
    },
    /// `online run --stream f.jsonl [--member M]` / `online race [--seed S]
    /// [--n N] [--k K] [--members LIST] [--out f.json]` — replay an event
    /// stream through one portfolio member, or race the whole portfolio on
    /// generated agreeable/laminar streams plus the adversary construction.
    Online {
        /// Subcommand (`run` or `race`).
        mode: String,
        /// Event-stream JSONL file (`run`).
        stream: Option<String>,
        /// Portfolio member label, or `auto` to follow the classifier (`run`).
        member: String,
        /// Generator seed (`race`).
        seed: u64,
        /// Jobs per generated stream (`race`).
        n: usize,
        /// Adversary recursion depth (`race`, ≥ 2).
        k: usize,
        /// Members to race, comma-separated or `all` (`race`).
        members: String,
        /// Race-report JSON output file (`race`).
        out: Option<String>,
        /// JSONL event-trace output file.
        trace: Option<String>,
        /// Aggregated metrics JSON output file.
        metrics: Option<String>,
    },
    /// `chaos [--seed S] [--n N] [--plan f.json]` — deterministic
    /// fault-injection run exercising every [`FaultSite`] against the full
    /// stack; `--plan` replaces the derived chaos plan with an explicit one.
    Chaos {
        /// Seed deriving the fault plan and the workload.
        seed: u64,
        /// Workload size (jobs).
        n: usize,
        /// Explicit fault-plan file (overrides the seed-derived plan).
        plan: Option<String>,
        /// JSONL event-trace output file.
        trace: Option<String>,
        /// Aggregated metrics JSON output file.
        metrics: Option<String>,
    },
    /// `bench [--quick] [--serve | --cluster | --obs] [--out f.json]
    /// [--check f.json]` — tracked performance baseline (see
    /// `mm_bench::baseline`); `--serve` benchmarks the service layer
    /// instead (closed-loop client, latency quantiles and shed rate,
    /// default out `BENCH_4.json`); `--cluster` benchmarks the
    /// scatter–gather coordinator over an in-process backend pool
    /// (default out `BENCH_5.json`); `--obs` gates the observability
    /// layer (traced execution byte-identical to untraced, solver
    /// counters unchanged, stats histograms an exact account of served
    /// requests; default out `BENCH_6.json`).
    Bench {
        /// Run the reduced workload set (CI smoke mode).
        quick: bool,
        /// Benchmark `machmin serve` instead of the solver baseline.
        serve: bool,
        /// Benchmark the `mm-cluster` coordinator instead.
        cluster: bool,
        /// Gate the observability layer instead.
        obs: bool,
        /// Benchmark the large-n certifier hot path instead
        /// (default out `BENCH_7.json`).
        large: bool,
        /// Benchmark elastic membership churn instead
        /// (default out `BENCH_8.json`).
        churn: bool,
        /// Gate proof-carrying verification instead: honest pool vs. a
        /// pool with one Byzantine backend (default out `BENCH_9.json`).
        verify: bool,
        /// Benchmark + gate the online portfolio race instead: measured
        /// competitive ratios, byte-identical rerun, theorem bounds
        /// (default out `BENCH_10.json`).
        online: bool,
        /// Baseline JSON output file (default `BENCH_2.json`).
        out: String,
        /// Committed baseline to gate deterministic counters against.
        check: Option<String>,
    },
    /// `certcheck [--seed S] [--cases N] [--pool [--corrupt]] [--out
    /// f.txt]` — deterministic certifier-vs-flow verdict cross-check; the
    /// report carries no wall times, so same-seed runs are byte-identical
    /// (CI diffs them). `--pool` runs the same seeded case batch against a
    /// live in-process backend pool with `--verify all` instead: every
    /// proof-carrying answer is re-checked coordinator-side, and `--corrupt`
    /// plants one Byzantine backend to prove the refutation path fires.
    CertCheck {
        /// Base seed for the instance batch.
        seed: u64,
        /// Number of seeded cases (cycling through all families).
        cases: usize,
        /// Run against a live three-backend pool with `--verify all`.
        pool: bool,
        /// Seed one backend with an `answer_corruption` plan (pool mode).
        corrupt: bool,
        /// Optional file to write the report to (stdout otherwise).
        out: Option<String>,
    },
    /// `serve [--addr A] [--workers N] [--queue-cap N] [--drain-ms N]
    /// [--seed S] [--retry-attempts N] [--chaos | --plan f.json]
    /// [--journal f.jsonl] [--deadline-ms N] [--port-file f]
    /// [--trace f.jsonl] [--metrics f.json]` — supervised JSONL-over-TCP
    /// request server with bounded admission, panic recovery, and a
    /// crash-safe journal.
    Serve {
        /// Listen address (`127.0.0.1:0` picks a free port).
        addr: String,
        /// Worker threads.
        workers: usize,
        /// Admission bound (queued + running + awaiting retry).
        queue_cap: usize,
        /// Drain deadline after a shutdown request, in milliseconds.
        drain_ms: u64,
        /// Seed for retry jitter and the `--chaos` fault plan.
        seed: u64,
        /// Panic-retry attempts before a request is quarantined.
        retry_attempts: u32,
        /// Inject the seed-derived chaos fault plan into the workers.
        chaos: bool,
        /// Explicit fault-plan file (mutually exclusive with `--chaos`).
        plan: Option<String>,
        /// Write-ahead journal path; replayed on restart.
        journal: Option<String>,
        /// Default per-request deadline for requests that carry none.
        deadline_ms: Option<u64>,
        /// File to write the bound address to (for scripted clients).
        port_file: Option<String>,
        /// JSONL event-trace output file.
        trace: Option<String>,
        /// Aggregated metrics JSON output file.
        metrics: Option<String>,
    },
    /// `load --addr A [--n N] [--seed S] [--paced] [--window W]
    /// [--deadline-ms N] [--out f] [--hist f.json] [--no-shutdown]` —
    /// deterministic load client for a running server; writes the
    /// response transcript and, with `--hist`, the client-side latency
    /// histogram (same bucket scheme as the server's `stats` endpoint).
    Load {
        /// Server address to connect to.
        addr: String,
        /// Requests to send.
        n: usize,
        /// Seed for the request mix.
        seed: u64,
        /// Arrival-driven pacing instead of closed-loop.
        paced: bool,
        /// Max outstanding requests in closed-loop mode.
        window: usize,
        /// Per-request deadline to attach.
        deadline_ms: Option<u64>,
        /// Transcript output file (response lines sorted by id).
        out: Option<String>,
        /// Latency-histogram JSON output file (`mm_obs` bucket scheme).
        hist: Option<String>,
        /// Send a shutdown request after the run (drains the server).
        shutdown: bool,
    },
    /// `cluster <solve|sweep|grid|stats> --backends a,b,c [...]` —
    /// scatter–gather coordinator over a pool of running `machmin serve`
    /// backends: pluggable balancing, hedged requests, bounded retries,
    /// backend quarantine, and byte-identical same-seed transcripts. The
    /// `stats` workload scrapes every backend's live registry and prints
    /// the bucket-exact pool-wide merge.
    Cluster {
        /// Workload: `solve`, `sweep`, `grid`, or `stats`.
        workload: String,
        /// Instance file (solve workload only).
        path: Option<String>,
        /// Backend addresses (`--backends host:p1,host:p2,...`).
        backends: Vec<String>,
        /// Balancing policy (`round-robin`, `least-outstanding`, `hash`).
        balance: String,
        /// Seed for hashing, hedging, and the `--chaos` plan.
        seed: u64,
        /// Max outstanding units across the pool.
        window: usize,
        /// Hedge every nth unit (mutually exclusive with `--hedge-p99`).
        hedge_every: Option<u64>,
        /// Hedge when a unit exceeds this multiple (%) of observed p99.
        hedge_p99: Option<u64>,
        /// Latency floor in ms below which p99 hedging never fires.
        hedge_floor_ms: u64,
        /// Inject the seed-derived chaos fault plan into the coordinator.
        chaos: bool,
        /// Explicit fault-plan file (mutually exclusive with `--chaos`).
        plan: Option<String>,
        /// Per-unit deadline to attach, if any.
        deadline_ms: Option<u64>,
        /// Sweep policies, comma-separated (sweep workload).
        policies: String,
        /// Deepest adversary depth (sweep workload, ≥ 2).
        k: usize,
        /// Machine budget per sweep shard (sweep workload).
        machines: usize,
        /// Sweep checkpoint file, saved after every completed shard.
        checkpoint: Option<String>,
        /// Resume the sweep from the checkpoint file.
        resume: bool,
        /// Grid families, comma-separated (grid and online workloads).
        families: String,
        /// Seeds per family (grid and online workloads).
        seeds: u64,
        /// Jobs per generated instance (grid and online workloads).
        n: usize,
        /// Portfolio members, comma-separated or `all` (online workload).
        members: String,
        /// Churn-plan file: membership events executed on the seeded
        /// `backend_churn` schedule (elastic pool mode).
        churn: Option<String>,
        /// Spare backend addresses consumed by the plan's `join` events.
        spares: Vec<String>,
        /// Max live shard migrations per observation window.
        migration_budget: u64,
        /// Answer-verification policy (`off`, `spot`, `all`): ask backends
        /// for proof-carrying answers and refute/quarantine liars.
        verify: String,
        /// Transcript output file (header + response lines sorted by id).
        out: Option<String>,
        /// JSONL event-trace output file.
        trace: Option<String>,
        /// Aggregated metrics JSON output file.
        metrics: Option<String>,
    },
    /// `top --backends a,b,c [--interval-s N] [--frames N]` — live
    /// terminal view over a backend pool's `stats` endpoints: per-backend
    /// uptime, queue depth, in-flight count, and latency quantiles, plus
    /// the pool-wide merge and the slowest recent spans. One-shot by
    /// default; `--interval-s` refreshes until `--frames` frames printed.
    Top {
        /// Backend addresses (`--backends host:p1,host:p2,...`).
        backends: Vec<String>,
        /// Seconds between refreshes (0 = print one frame and exit).
        interval_s: u64,
        /// Frames to print when refreshing (0 = until interrupted).
        frames: u64,
    },
    /// `help`.
    Help,
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Like [`flag`], but a flag present without a value is an error instead of
/// being silently ignored (a typo'd `--trace` must not drop the trace).
fn value_flag(args: &[String], name: &str) -> Result<Option<String>, Error> {
    match args.iter().position(|a| a == name) {
        None => Ok(None),
        Some(i) => match args.get(i + 1) {
            Some(v) => Ok(Some(v.clone())),
            None => Err(Error::Usage(format!("{name} requires a value"))),
        },
    }
}

/// A numeric [`value_flag`]; a present-but-unparsable value is a usage error.
fn num_flag<T: std::str::FromStr>(args: &[String], name: &str) -> Result<Option<T>, Error> {
    match value_flag(args, name)? {
        None => Ok(None),
        Some(v) => v
            .parse::<T>()
            .map(Some)
            .map_err(|_| Error::Usage(format!("invalid {name} value: {v}"))),
    }
}

/// Parses raw arguments (without the program name).
pub fn parse(args: &[String]) -> Result<Command, Error> {
    let cmd = args.first().map(String::as_str).unwrap_or("help");
    match cmd {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "solve" => {
            let mut budget: Option<Budget> = None;
            if let Some(n) = num_flag::<u64>(args, "--budget-augmentations")? {
                budget = Some(
                    budget
                        .unwrap_or_else(Budget::unlimited)
                        .with_augmentations(n),
                );
            }
            if let Some(ms) = num_flag::<u64>(args, "--budget-ms")? {
                budget = Some(budget.unwrap_or_else(Budget::unlimited).with_probe_ms(ms));
            }
            if let Some(n) = num_flag::<usize>(args, "--budget-nodes")? {
                budget = Some(
                    budget
                        .unwrap_or_else(Budget::unlimited)
                        .with_network_nodes(n),
                );
            }
            let attempts = num_flag::<u32>(args, "--attempts")?.unwrap_or(3);
            if attempts == 0 {
                return Err(Error::Usage("--attempts must be at least 1".into()));
            }
            Ok(Command::Solve {
                path: args.get(1).cloned().ok_or_else(usage_solve)?,
                budget,
                attempts,
                trace: value_flag(args, "--trace")?,
                metrics: value_flag(args, "--metrics")?,
            })
        }
        "classify" => Ok(Command::Classify {
            path: args.get(1).cloned().ok_or_else(usage_classify)?,
        }),
        "demigrate" => Ok(Command::Demigrate {
            path: args
                .get(1)
                .cloned()
                .ok_or_else(|| Error::Usage("usage: machmin demigrate <instance.json>".into()))?,
        }),
        "schedule" => {
            let path = args.get(1).cloned().ok_or_else(usage_schedule)?;
            let policy = flag(args, "--policy").ok_or_else(usage_schedule)?;
            let machines = num_flag::<usize>(args, "--machines")?;
            Ok(Command::Schedule {
                path,
                policy,
                machines,
                trace: value_flag(args, "--trace")?,
                metrics: value_flag(args, "--metrics")?,
            })
        }
        "generate" => {
            let family = args.get(1).cloned().ok_or_else(usage_generate)?;
            let n = num_flag::<usize>(args, "--n")?.unwrap_or(50);
            let seed = num_flag::<u64>(args, "--seed")?.unwrap_or(0);
            let out = flag(args, "--out").ok_or_else(usage_generate)?;
            Ok(Command::Generate {
                family,
                n,
                seed,
                out,
            })
        }
        "adversary" => {
            let policy = flag(args, "--policy").ok_or_else(usage_adversary)?;
            let k = num_flag::<usize>(args, "--k")?.unwrap_or(4);
            if k < 2 {
                return Err(Error::Usage("--k must be at least 2".into()));
            }
            let machines = num_flag::<usize>(args, "--machines")?.unwrap_or(16);
            let checkpoint = value_flag(args, "--checkpoint")?;
            let resume = args.iter().any(|a| a == "--resume");
            if resume && checkpoint.is_none() {
                return Err(Error::Usage("--resume requires --checkpoint".into()));
            }
            Ok(Command::Adversary {
                policy,
                k,
                machines,
                checkpoint,
                resume,
                export_stream: value_flag(args, "--export-stream")?,
                trace: value_flag(args, "--trace")?,
                metrics: value_flag(args, "--metrics")?,
            })
        }
        "online" => {
            let mode = args.get(1).cloned().ok_or_else(usage_online)?;
            if mode != "run" && mode != "race" {
                return Err(usage_online());
            }
            let stream = value_flag(args, "--stream")?;
            if mode == "run" && stream.is_none() {
                return Err(Error::Usage("online run requires --stream f.jsonl".into()));
            }
            let k = num_flag::<usize>(args, "--k")?.unwrap_or(4);
            if k < 2 {
                return Err(Error::Usage("--k must be at least 2".into()));
            }
            Ok(Command::Online {
                mode,
                stream,
                member: value_flag(args, "--member")?.unwrap_or_else(|| "auto".into()),
                seed: num_flag::<u64>(args, "--seed")?.unwrap_or(7),
                n: num_flag::<usize>(args, "--n")?.unwrap_or(40).max(1),
                k,
                members: value_flag(args, "--members")?.unwrap_or_else(|| "all".into()),
                out: value_flag(args, "--out")?,
                trace: value_flag(args, "--trace")?,
                metrics: value_flag(args, "--metrics")?,
            })
        }
        "chaos" => Ok(Command::Chaos {
            seed: num_flag::<u64>(args, "--seed")?.unwrap_or(0),
            n: num_flag::<usize>(args, "--n")?.unwrap_or(16).max(1),
            plan: value_flag(args, "--plan")?,
            trace: value_flag(args, "--trace")?,
            metrics: value_flag(args, "--metrics")?,
        }),
        "bench" => {
            let serve = args.iter().any(|a| a == "--serve");
            let cluster = args.iter().any(|a| a == "--cluster");
            let obs = args.iter().any(|a| a == "--obs");
            let large = args.iter().any(|a| a == "--large");
            let churn = args.iter().any(|a| a == "--churn");
            let verify = args.iter().any(|a| a == "--verify");
            let online = args.iter().any(|a| a == "--online");
            if [serve, cluster, obs, large, churn, verify, online]
                .iter()
                .filter(|b| **b)
                .count()
                > 1
            {
                return Err(Error::Usage(
                    "--serve, --cluster, --obs, --large, --churn, --verify, and --online \
                     are mutually exclusive"
                        .into(),
                ));
            }
            let default_out = if online {
                "BENCH_10.json"
            } else if verify {
                "BENCH_9.json"
            } else if churn {
                "BENCH_8.json"
            } else if large {
                "BENCH_7.json"
            } else if obs {
                "BENCH_6.json"
            } else if cluster {
                "BENCH_5.json"
            } else if serve {
                "BENCH_4.json"
            } else {
                "BENCH_2.json"
            };
            Ok(Command::Bench {
                quick: args.iter().any(|a| a == "--quick"),
                serve,
                cluster,
                obs,
                large,
                churn,
                verify,
                online,
                out: value_flag(args, "--out")?.unwrap_or_else(|| default_out.into()),
                check: value_flag(args, "--check")?,
            })
        }
        "certcheck" => {
            let pool = args.iter().any(|a| a == "--pool");
            let corrupt = args.iter().any(|a| a == "--corrupt");
            if corrupt && !pool {
                return Err(Error::Usage("--corrupt requires --pool".into()));
            }
            Ok(Command::CertCheck {
                seed: num_flag::<u64>(args, "--seed")?.unwrap_or(1),
                cases: num_flag::<usize>(args, "--cases")?.unwrap_or(25).max(1),
                pool,
                corrupt,
                out: value_flag(args, "--out")?,
            })
        }
        "serve" => {
            let chaos = args.iter().any(|a| a == "--chaos");
            let plan = value_flag(args, "--plan")?;
            if chaos && plan.is_some() {
                return Err(Error::Usage(
                    "--chaos and --plan are mutually exclusive".into(),
                ));
            }
            Ok(Command::Serve {
                addr: value_flag(args, "--addr")?.unwrap_or_else(|| "127.0.0.1:0".into()),
                workers: num_flag::<usize>(args, "--workers")?.unwrap_or(2).max(1),
                queue_cap: num_flag::<usize>(args, "--queue-cap")?.unwrap_or(16).max(1),
                drain_ms: num_flag::<u64>(args, "--drain-ms")?.unwrap_or(2_000),
                seed: num_flag::<u64>(args, "--seed")?.unwrap_or(0),
                retry_attempts: num_flag::<u32>(args, "--retry-attempts")?
                    .unwrap_or(3)
                    .max(1),
                chaos,
                plan,
                journal: value_flag(args, "--journal")?,
                deadline_ms: num_flag::<u64>(args, "--deadline-ms")?,
                port_file: value_flag(args, "--port-file")?,
                trace: value_flag(args, "--trace")?,
                metrics: value_flag(args, "--metrics")?,
            })
        }
        "cluster" => {
            let workload = args.get(1).cloned().ok_or_else(usage_cluster)?;
            if !matches!(
                workload.as_str(),
                "solve" | "sweep" | "grid" | "online" | "stats"
            ) {
                return Err(usage_cluster());
            }
            let path = if workload == "solve" {
                let p = args
                    .get(2)
                    .filter(|p| !p.starts_with("--"))
                    .cloned()
                    .ok_or_else(|| {
                        Error::Usage("cluster solve requires an instance file".into())
                    })?;
                Some(p)
            } else {
                None
            };
            let backends: Vec<String> = value_flag(args, "--backends")?
                .ok_or_else(usage_cluster)?
                .split(',')
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .collect();
            if backends.is_empty() {
                return Err(Error::Usage(
                    "--backends needs at least one host:port".into(),
                ));
            }
            let hedge_every = num_flag::<u64>(args, "--hedge-every")?;
            let hedge_p99 = num_flag::<u64>(args, "--hedge-p99")?;
            if hedge_every.is_some() && hedge_p99.is_some() {
                return Err(Error::Usage(
                    "--hedge-every and --hedge-p99 are mutually exclusive".into(),
                ));
            }
            if hedge_every == Some(0) {
                return Err(Error::Usage("--hedge-every must be at least 1".into()));
            }
            let chaos = args.iter().any(|a| a == "--chaos");
            let plan = value_flag(args, "--plan")?;
            if chaos && plan.is_some() {
                return Err(Error::Usage(
                    "--chaos and --plan are mutually exclusive".into(),
                ));
            }
            let k = num_flag::<usize>(args, "--k")?.unwrap_or(4);
            if k < 2 {
                return Err(Error::Usage("--k must be at least 2".into()));
            }
            let checkpoint = value_flag(args, "--checkpoint")?;
            let resume = args.iter().any(|a| a == "--resume");
            if resume && checkpoint.is_none() {
                return Err(Error::Usage("--resume requires --checkpoint".into()));
            }
            let churn = value_flag(args, "--churn")?;
            let spares: Vec<String> = value_flag(args, "--spares")?
                .map(|s| {
                    s.split(',')
                        .map(|a| a.trim().to_string())
                        .filter(|a| !a.is_empty())
                        .collect()
                })
                .unwrap_or_default();
            if !spares.is_empty() && churn.is_none() {
                return Err(Error::Usage("--spares requires --churn".into()));
            }
            Ok(Command::Cluster {
                workload,
                path,
                backends,
                balance: value_flag(args, "--balance")?.unwrap_or_else(|| "round-robin".into()),
                seed: num_flag::<u64>(args, "--seed")?.unwrap_or(0),
                window: num_flag::<usize>(args, "--window")?.unwrap_or(8).max(1),
                hedge_every,
                hedge_p99,
                hedge_floor_ms: num_flag::<u64>(args, "--hedge-floor-ms")?.unwrap_or(10),
                chaos,
                plan,
                deadline_ms: num_flag::<u64>(args, "--deadline-ms")?,
                policies: value_flag(args, "--policies")?.unwrap_or_else(|| "edf-ff".into()),
                k,
                machines: num_flag::<usize>(args, "--machines")?.unwrap_or(16),
                checkpoint,
                resume,
                families: value_flag(args, "--families")?
                    .unwrap_or_else(|| "uniform,agreeable,loose".into()),
                seeds: num_flag::<u64>(args, "--seeds")?.unwrap_or(3).max(1),
                n: num_flag::<usize>(args, "--n")?.unwrap_or(12).max(1),
                members: value_flag(args, "--members")?.unwrap_or_else(|| "all".into()),
                churn,
                spares,
                migration_budget: num_flag::<u64>(args, "--migration-budget")?.unwrap_or(64),
                verify: value_flag(args, "--verify")?.unwrap_or_else(|| "off".into()),
                out: value_flag(args, "--out")?,
                trace: value_flag(args, "--trace")?,
                metrics: value_flag(args, "--metrics")?,
            })
        }
        "load" => Ok(Command::Load {
            addr: value_flag(args, "--addr")?.ok_or_else(usage_load)?,
            n: num_flag::<usize>(args, "--n")?.unwrap_or(100).max(1),
            seed: num_flag::<u64>(args, "--seed")?.unwrap_or(0),
            paced: args.iter().any(|a| a == "--paced"),
            window: num_flag::<usize>(args, "--window")?.unwrap_or(8).max(1),
            deadline_ms: num_flag::<u64>(args, "--deadline-ms")?,
            out: value_flag(args, "--out")?,
            hist: value_flag(args, "--hist")?,
            shutdown: !args.iter().any(|a| a == "--no-shutdown"),
        }),
        "top" => {
            let backends: Vec<String> = value_flag(args, "--backends")?
                .ok_or_else(usage_top)?
                .split(',')
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .collect();
            if backends.is_empty() {
                return Err(Error::Usage(
                    "--backends needs at least one host:port".into(),
                ));
            }
            Ok(Command::Top {
                backends,
                interval_s: num_flag::<u64>(args, "--interval-s")?.unwrap_or(0),
                frames: num_flag::<u64>(args, "--frames")?.unwrap_or(0),
            })
        }
        other => Err(Error::Usage(format!(
            "unknown command `{other}`; run `machmin help`"
        ))),
    }
}

fn usage_solve() -> Error {
    Error::Usage(
        "usage: machmin solve <instance.json> [--trace f.jsonl] [--metrics f.json] \
         [--budget-augmentations N] [--budget-ms N] [--budget-nodes N] [--attempts K]"
            .into(),
    )
}

fn usage_classify() -> Error {
    Error::Usage("usage: machmin classify <instance.json>".into())
}

fn usage_schedule() -> Error {
    Error::Usage(
        "usage: machmin schedule <instance.json> --policy <edf|llf|edf-ff|medium-fit|agreeable|laminar> [--machines N] [--trace f.jsonl] [--metrics f.json]"
            .into(),
    )
}

fn usage_generate() -> Error {
    Error::Usage(
        "usage: machmin generate <uniform|agreeable|laminar|loose> [--n N] [--seed S] --out <file.json>"
            .into(),
    )
}

fn usage_adversary() -> Error {
    Error::Usage(
        "usage: machmin adversary --policy <edf-ff|medium-fit> [--k K] [--machines N] \
         [--checkpoint f.json [--resume]] [--export-stream f.jsonl] [--trace f.jsonl] \
         [--metrics f.json]"
            .into(),
    )
}

fn usage_online() -> Error {
    Error::Usage(
        "usage: machmin online run --stream f.jsonl [--member M]  |  machmin online race \
         [--seed S] [--n N] [--k K] [--members LIST] [--out f.json] \
         (M/LIST from loose|laminar|agreeable|cms|imps, plus auto/all)"
            .into(),
    )
}

fn usage_cluster() -> Error {
    Error::Usage(
        "usage: machmin cluster <solve <inst.json>|sweep|grid|online|stats> --backends <a,b,c> \
         [--balance round-robin|least-outstanding|hash] [--seed S] [--window W] \
         [--hedge-every N | --hedge-p99 PCT] [--hedge-floor-ms N] [--chaos | --plan f.json] \
         [--churn plan.json [--spares d,e]] [--migration-budget N] \
         [--verify off|spot|all] \
         [--deadline-ms N] [--policies p1,p2] [--k K] [--machines N] \
         [--checkpoint f.json [--resume]] [--families f1,f2] [--seeds S] [--n N] \
         [--members LIST] [--out transcript.jsonl] [--trace f.jsonl] [--metrics f.json]"
            .into(),
    )
}

fn usage_load() -> Error {
    Error::Usage(
        "usage: machmin load --addr <host:port> [--n N] [--seed S] [--paced] [--window W] \
         [--deadline-ms N] [--out transcript.jsonl] [--hist hist.json] [--no-shutdown]"
            .into(),
    )
}

fn usage_top() -> Error {
    Error::Usage("usage: machmin top --backends <a,b,c> [--interval-s N] [--frames N]".into())
}

/// Help text.
pub fn help_text() -> &'static str {
    "machmin — online machine minimization (SPAA'16 reproduction)\n\
     \n\
     commands:\n\
       solve <inst.json>                        exact migratory optimum + Theorem 1 certificate\n\
       classify <inst.json>                     structure (agreeable/laminar), Δ, looseness\n\
       schedule <inst.json> --policy P [--machines N]\n\
                                                run an online policy and verify its schedule\n\
                                                P ∈ {edf, llf, edf-ff, medium-fit, agreeable, laminar}\n\
       demigrate <inst.json>                    offline migratory → non-migratory transformation\n\
       generate <family> [--n N] [--seed S] --out <file.json>\n\
                                                family ∈ {uniform, agreeable, laminar, loose}\n\
       adversary --policy P [--k K] [--machines N] [--checkpoint f.json [--resume]]\n\
                 [--export-stream f.jsonl]       migration-gap sweep over depths k = 2..=K,\n\
                                                checkpointing each completed depth (P ∈ {edf-ff, medium-fit});\n\
                                                --export-stream writes the strongest forced-release trace\n\
                                                as a replayable event stream for `online run`\n\
       online run --stream f.jsonl [--member M]  replay a JSONL event stream through one portfolio\n\
                                                member (strictly no lookahead) and report machines\n\
                                                opened vs the offline Theorem-1 optimum;\n\
                                                M ∈ {loose, laminar, agreeable, cms, imps, auto}\n\
       online race [--seed S] [--n N] [--k K] [--members LIST] [--out f.json]\n\
                                                race the portfolio over seeded agreeable/laminar\n\
                                                streams and the adversary's forced-release trace;\n\
                                                per-member measured competitive ratios, gated\n\
                                                against the paper's bounds (32.70·m agreeable\n\
                                                upper bound, 1.101·m lower bound)\n\
       chaos [--seed S] [--n N] [--plan f.json] deterministic fault-injection run exercising every\n\
                                                fault site (probe_cancel, force_bigint, machine_failure,\n\
                                                machine_slowdown, adversary_abort, worker_panic,\n\
                                                backend_drop, backend_churn) without panicking;\n\
                                                --plan loads an explicit plan\n\
       serve [--addr A] [--workers N] [--queue-cap N] [--drain-ms N] [--seed S] [--retry-attempts N]\n\
             [--chaos | --plan f.json] [--journal f.jsonl] [--deadline-ms N] [--port-file f]\n\
                                                supervised JSONL-over-TCP request server: bounded\n\
                                                admission with shedding, per-request deadlines,\n\
                                                panic-recycling workers, crash-safe journal replay,\n\
                                                graceful drain (a `shutdown` request ends it)\n\
       load --addr <host:port> [--n N] [--seed S] [--paced] [--window W] [--out f]\n\
            [--hist hist.json] [--no-shutdown]\n\
                                                deterministic load client: mixed request stream,\n\
                                                transcript sorted by id, p50/p99/p999 latency\n\
                                                report, optional client-side latency histogram\n\
       cluster <solve <inst.json>|sweep|grid|online|stats> --backends <a,b,c> [--balance B] [--seed S]\n\
               [--window W] [--hedge-every N | --hedge-p99 PCT] [--chaos | --plan f.json]\n\
               [--churn plan.json [--spares d,e]] [--migration-budget N]\n\
               [--verify off|spot|all]\n\
               [--policies p1,p2] [--k K] [--families f1,f2] [--seeds S] [--n N]\n\
               [--members LIST] [--checkpoint f.json [--resume]] [--out transcript.jsonl]\n\
                                                scatter–gather over a pool of running servers:\n\
                                                B ∈ {round-robin, least-outstanding, hash};\n\
                                                hedged requests, bounded retries, recoverable\n\
                                                quarantine, byte-identical same-seed transcripts;\n\
                                                --churn runs a seeded membership schedule (joins,\n\
                                                graceful drains with live shard migration, flaps);\n\
                                                `stats` scrapes every backend's registry, prints\n\
                                                the bucket-exact pool-wide merge plus per-backend\n\
                                                overload index, migration, and verified/refuted\n\
                                                counters; --verify asks for proof-carrying answers\n\
                                                and refutes/quarantines/re-asks on a caught lie;\n\
                                                `online` races the portfolio on the pool (member ×\n\
                                                family × seed) and checks the merged per-member\n\
                                                ratios against a single-node reference\n\
       top --backends <a,b,c> [--interval-s N] [--frames N]\n\
                                                live terminal view over the pool's stats endpoints:\n\
                                                queue depth, in-flight, latency quantiles, slowest\n\
                                                spans; one-shot unless --interval-s is given\n\
       bench [--quick] [--serve | --cluster | --obs | --large | --churn | --verify | --online] [--out f.json] [--check f.json]\n\
                                                seeded perf baseline: fast path + prober reuse vs\n\
                                                BigInt + fresh-network reference (default out\n\
                                                BENCH_2.json); --check gates deterministic counters;\n\
                                                --serve benchmarks the service layer (BENCH_4.json);\n\
                                                --cluster benchmarks the coordinator (BENCH_5.json);\n\
                                                --obs gates the observability layer (BENCH_6.json);\n\
                                                --large benchmarks the million-job certifier hot\n\
                                                path (BENCH_7.json); --churn benchmarks elastic\n\
                                                membership churn (BENCH_8.json); --verify gates\n\
                                                proof-carrying verification — honest pool vs one\n\
                                                Byzantine backend (BENCH_9.json); --online gates\n\
                                                the portfolio race's measured competitive ratios\n\
                                                (BENCH_10.json)\n\
       certcheck [--seed S] [--cases N] [--pool [--corrupt]] [--out f.txt]\n\
                                                certifier-vs-flow verdict cross-check; same-seed\n\
                                                reports are byte-identical, mismatches exit 6;\n\
                                                --pool re-verifies proof-carrying answers from a\n\
                                                live backend pool (--corrupt plants one liar)\n\
       help                                     this text\n\
     \n\
     observability (solve, schedule, adversary, online, chaos, serve, cluster):\n\
       --trace <file.jsonl>                     stream typed events (one JSON object per line)\n\
       --metrics <file.json>                    write aggregated counters and histograms\n\
     \n\
     robustness (solve):\n\
       --budget-augmentations N                 cancel a feasibility probe after N augmenting paths\n\
       --budget-ms N                            cancel a feasibility probe after N wall-clock ms\n\
       --budget-nodes N                         refuse flow networks larger than N nodes\n\
       --attempts K                             double the budget up to K times, then settle for\n\
                                                a certified bracket [lo, hi] (still exit code 0)\n\
     \n\
     exit codes: 0 success (incl. degraded bracket), 1 internal, 2 usage,\n\
                 3 io/parse, 4 validation, 5 simulation, 6 verification, 70 panic\n"
}

fn load(path: &str) -> Result<Instance, Error> {
    let inst = io::load(path).map_err(|e| Error::Io(format!("cannot load {path}: {e}")))?;
    let report = inst.validate();
    if !report.is_ok() {
        return Err(Error::Validation(format!("{path}: {report}")));
    }
    Ok(inst)
}

/// Loads an explicit fault plan, surfacing malformed JSON as a categorized
/// io error (exit 3) with line/column context — a truncated plan file must
/// never panic the process.
fn load_fault_plan(path: &str) -> Result<FaultPlan, Error> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| Error::Io(format!("cannot read fault plan {path}: {e}")))?;
    if let Err(e) = mm_json::parse(&text) {
        return Err(Error::Io(format!(
            "cannot parse fault plan {path}: {e} ({})",
            e.locate(&text)
        )));
    }
    FaultPlan::from_json(&text).map_err(|e| Error::Io(format!("invalid fault plan {path}: {e}")))
}

/// The `bench --large` scenario (`BENCH_7.json`): the certifier hot path
/// at streaming scale — n = 10^5 uniform probes through the scaled-integer
/// flow arena, and n ≈ 10^6 agreeable/laminar workloads answered entirely
/// by the direct certifiers. Gated counters are the per-path dispatch
/// counts and the optimum; jobs/sec is recorded for trajectory only.
fn large_bench(
    quick: bool,
    path: &str,
    check: Option<&str>,
    out: &mut String,
) -> Result<(), Error> {
    let doc = mm_bench::large::run(quick);
    if let Some(workloads) = doc.get("workloads").and_then(mm_json::Json::as_arr) {
        for w in workloads {
            let get_i = |k: &str| w.get(k).and_then(mm_json::Json::as_i64).unwrap_or(-1);
            let name = w.get("name").and_then(mm_json::Json::as_str).unwrap_or("?");
            let jps = w
                .get("jobs_per_sec")
                .and_then(mm_json::Json::as_f64)
                .unwrap_or(0.0);
            let path_label = w.get("path").and_then(mm_json::Json::as_str).unwrap_or("?");
            let rescued = w
                .get("dispatch")
                .and_then(|d| d.get("rescued"))
                .and_then(mm_json::Json::as_i64)
                .unwrap_or(-1);
            let _ = writeln!(
                out,
                "{name}: m = {}, path {path_label}, {:.2}M jobs/sec, rescued {rescued}",
                get_i("optimal_machines"),
                jps / 1e6,
            );
        }
    }
    std::fs::write(path, doc.to_pretty())
        .map_err(|e| Error::Io(format!("cannot write {path}: {e}")))?;
    let _ = writeln!(out, "large baseline -> {path}");
    if let Some(check_path) = check {
        let committed = std::fs::read_to_string(check_path)
            .map_err(|e| Error::Io(format!("cannot read baseline {check_path}: {e}")))?;
        let committed = mm_json::parse(&committed)
            .map_err(|e| Error::Io(format!("cannot parse baseline {check_path}: {e}")))?;
        match mm_bench::large::check_against(&doc, &committed) {
            Ok(()) => {
                let _ = writeln!(out, "counters within committed baseline {check_path}");
            }
            Err(problems) => {
                return Err(Error::Verification(format!(
                    "large bench counter regression vs {check_path}:\n  {}",
                    problems.join("\n  ")
                )));
            }
        }
    }
    Ok(())
}

/// The `bench --serve` scenario: an in-process server on loopback TCP, a
/// closed-loop client, latency quantiles plus deterministic counters
/// (`BENCH_4.json`). With the window below the queue capacity and no fault
/// plan, every counter is a pure function of the seed; only the wall-clock
/// quantiles vary by environment, and `--check` never gates on those.
fn serve_bench(
    quick: bool,
    path: &str,
    check: Option<&str>,
    out: &mut String,
) -> Result<(), Error> {
    use mm_json::Json;
    let n = if quick { 60 } else { 240 };
    let cfg = ServeConfig {
        workers: 2,
        queue_cap: 16,
        ..ServeConfig::default()
    };
    let service = Arc::new(
        Service::start(cfg, DynSink::new(Box::new(NoopSink)))
            .map_err(|e| Error::Sim(format!("cannot start bench server: {e}")))?,
    );
    let (listener, addr) = mm_serve::tcp::bind("127.0.0.1:0")
        .map_err(|e| Error::Io(format!("cannot bind bench server: {e}")))?;
    let acceptor = {
        let service = Arc::clone(&service);
        std::thread::spawn(move || mm_serve::tcp::serve(listener, service))
    };
    let report = mm_serve::run_load(
        &addr,
        &LoadConfig {
            n,
            seed: 17,
            window: 8,
            shutdown: true,
            ..LoadConfig::default()
        },
    )
    .map_err(|e| Error::Io(format!("bench load failed: {e}")))?;
    acceptor
        .join()
        .map_err(|_| Error::Internal("bench accept loop panicked".into()))?
        .map_err(|e| Error::Io(format!("bench accept loop failed: {e}")))?;
    service.wait_stopped();
    let stats = service.stats();
    if report.lost > 0 || !stats.invariant_holds() {
        return Err(Error::Verification(format!(
            "bench serve lost {} response(s) or broke the invariant: {stats:?}",
            report.lost
        )));
    }
    let shed_rate = stats.shed as f64 / report.sent.max(1) as f64;
    let statuses: Vec<(String, Json)> = report
        .by_status
        .iter()
        .map(|(s, c)| (s.clone(), Json::Int(*c as i64)))
        .collect();
    let doc = Json::obj([
        ("schema", Json::str("machmin-serve-bench-v1")),
        ("requests", Json::Int(report.sent as i64)),
        ("lost", Json::Int(report.lost as i64)),
        ("admitted", Json::Int(stats.admitted as i64)),
        ("responses", Json::Int(stats.responses as i64)),
        ("shed", Json::Int(stats.shed as i64)),
        ("shed_rate", Json::Float(shed_rate)),
        ("by_status", Json::obj(statuses)),
        ("p50_ms", Json::Float(report.p50_ms)),
        ("p99_ms", Json::Float(report.p99_ms)),
        ("p999_ms", Json::Float(report.p999_ms)),
    ]);
    std::fs::write(path, doc.to_pretty())
        .map_err(|e| Error::Io(format!("cannot write {path}: {e}")))?;
    let _ = writeln!(
        out,
        "serve bench: {} requests, p50 {:.2} ms, p99 {:.2} ms, shed rate {shed_rate:.3}",
        report.sent, report.p50_ms, report.p99_ms
    );
    let _ = writeln!(out, "baseline -> {path}");
    if let Some(check_path) = check {
        let committed = std::fs::read_to_string(check_path)
            .map_err(|e| Error::Io(format!("cannot read baseline {check_path}: {e}")))?;
        let committed = mm_json::parse(&committed)
            .map_err(|e| Error::Io(format!("cannot parse baseline {check_path}: {e}")))?;
        let mut problems = Vec::new();
        for key in ["requests", "lost", "admitted", "responses", "shed"] {
            let cur = doc.get(key).and_then(Json::as_i64);
            let base = committed.get(key).and_then(Json::as_i64);
            if cur != base {
                problems.push(format!("{key}: {cur:?} vs committed {base:?}"));
            }
        }
        let compact = |j: &Json| j.get("by_status").map(Json::to_compact);
        if compact(&doc) != compact(&committed) {
            problems.push("by_status distribution changed".into());
        }
        if !problems.is_empty() {
            return Err(Error::Verification(format!(
                "serve bench counter regression vs {check_path}:\n  {}",
                problems.join("\n  ")
            )));
        }
        let _ = writeln!(out, "counters match committed baseline {check_path}");
    }
    Ok(())
}

/// One in-process `machmin serve` backend: a real [`Service`] behind a
/// loopback TCP acceptor, used by `bench --cluster` and the chaos cluster
/// segment so no external processes are needed.
struct BenchBackend {
    service: Arc<Service>,
    addr: String,
    acceptor: std::thread::JoinHandle<std::io::Result<()>>,
}

fn spawn_bench_pool(n: usize, queue_cap: usize) -> Result<Vec<BenchBackend>, Error> {
    spawn_bench_pool_plans(&vec![FaultPlan::none(); n], queue_cap)
}

/// Like [`spawn_bench_pool`], but each backend gets its own fault plan —
/// how the Byzantine bench and chaos segments plant exactly one liar in an
/// otherwise honest pool.
fn spawn_bench_pool_plans(
    plans: &[FaultPlan],
    queue_cap: usize,
) -> Result<Vec<BenchBackend>, Error> {
    plans
        .iter()
        .map(|plan| {
            let cfg = ServeConfig {
                workers: 2,
                queue_cap,
                plan: plan.clone(),
                ..ServeConfig::default()
            };
            let service = Arc::new(
                Service::start(cfg, DynSink::new(Box::new(NoopSink)))
                    .map_err(|e| Error::Sim(format!("cannot start backend: {e}")))?,
            );
            let (listener, addr) = mm_serve::tcp::bind("127.0.0.1:0")
                .map_err(|e| Error::Io(format!("cannot bind backend: {e}")))?;
            let acceptor = {
                let service = Arc::clone(&service);
                std::thread::spawn(move || mm_serve::tcp::serve(listener, service))
            };
            Ok(BenchBackend {
                service,
                addr,
                acceptor,
            })
        })
        .collect()
}

/// Shuts the pool down; backends already drained by the coordinator (a
/// dropped victim) shut down idempotently.
fn teardown_bench_pool(pool: Vec<BenchBackend>) -> Result<(), Error> {
    for b in &pool {
        b.service.shutdown();
    }
    for b in pool {
        b.service.wait_stopped();
        b.acceptor
            .join()
            .map_err(|_| Error::Internal("backend accept loop panicked".into()))?
            .map_err(|e| Error::Io(format!("backend accept loop failed: {e}")))?;
    }
    Ok(())
}

/// The distinct-optimum scatter workload shared by `bench --cluster` and
/// the chaos cluster segment: unit `id` is `id` copies of the same
/// zero-laxity job, so its optimum is exactly `id`.
fn scatter_units(n: usize) -> Vec<mm_serve::protocol::Request> {
    (1..=n as u64)
        .map(|id| {
            mm_serve::protocol::Request::new(
                id,
                mm_serve::protocol::RequestKind::Solve {
                    jobs: (0..id.min(16)).map(|_| (0, 2, 2)).collect(),
                },
            )
        })
        .collect()
}

/// The `bench --cluster` scenario: the scatter–gather coordinator over an
/// in-process three-backend pool (`BENCH_5.json`). The dispatch window
/// spans the whole workload, so hedges, the injected backend drop, shard
/// resumes, and the per-backend dispatch split are all pure functions of
/// the seed; only the wall-clock timings vary by environment, and
/// `--check` never gates on those.
fn cluster_bench(
    quick: bool,
    path: &str,
    check: Option<&str>,
    out: &mut String,
) -> Result<(), Error> {
    use mm_json::Json;
    let units_n = if quick { 24 } else { 96 };

    // Scatter segment: hedged dispatch with one backend dropped mid-burst.
    let pool = spawn_bench_pool(3, 2 * units_n + 8)?;
    let cfg = ClusterConfig {
        backends: pool.iter().map(|b| b.addr.clone()).collect(),
        balance: BalancePolicy::SeededHash { seed: 21 },
        seed: 21,
        window: units_n,
        hedge: HedgeConfig::EveryNth { n: 3 },
        plan: FaultPlan {
            seed: 21,
            rules: vec![mm_fault::FaultRule {
                site: FaultSite::BackendDrop,
                nth: (units_n as u64) / 2,
                every: None,
            }],
        },
        ..ClusterConfig::default()
    };
    let t0 = std::time::Instant::now();
    let coordinator = Coordinator::connect(cfg, NoopSink)
        .map_err(|e| Error::Io(format!("cluster bench connect: {e}")))?;
    let scatter = coordinator
        .run(scatter_units(units_n), &mut |_, _| {})
        .map_err(|e| Error::Sim(format!("cluster bench run: {e}")))?;
    let scatter_ms = t0.elapsed().as_secs_f64() * 1e3;
    teardown_bench_pool(pool)?;
    if scatter.counters.lost > 0 {
        return Err(Error::Verification(format!(
            "cluster bench lost {} response(s)",
            scatter.counters.lost
        )));
    }

    // Sweep segment: a fault-free remote adversary sweep on a fresh pool.
    let pool = spawn_bench_pool(3, 64)?;
    let cfg = ClusterConfig {
        backends: pool.iter().map(|b| b.addr.clone()).collect(),
        seed: 22,
        ..ClusterConfig::default()
    };
    let sweep_cfg = SweepConfig {
        policies: vec!["edf-ff".into()],
        k: if quick { 3 } else { 4 },
        machines: 8,
        checkpoint: None,
        resume: false,
    };
    let t0 = std::time::Instant::now();
    let sweep = cluster_sweep(cfg, NoopSink, &sweep_cfg)
        .map_err(|e| Error::Sim(format!("cluster bench sweep: {e}")))?;
    let sweep_ms = t0.elapsed().as_secs_f64() * 1e3;
    teardown_bench_pool(pool)?;

    let fired = Json::Arr(
        scatter
            .fired
            .iter()
            .map(|(site, n)| {
                Json::obj([
                    ("site", Json::str(site.tag())),
                    ("count", Json::Int(*n as i64)),
                ])
            })
            .collect(),
    );
    let doc = Json::obj([
        ("schema", Json::str("machmin-cluster-bench-v1")),
        ("units", Json::Int(units_n as i64)),
        ("backends", Json::Int(3)),
        ("scatter", scatter.counters.to_json()),
        ("scatter_fired", fired),
        ("sweep", sweep.report.counters.to_json()),
        ("sweep_merged", sweep.merged.clone()),
        ("scatter_ms", Json::Float(scatter_ms)),
        ("sweep_ms", Json::Float(sweep_ms)),
    ]);
    std::fs::write(path, doc.to_pretty())
        .map_err(|e| Error::Io(format!("cannot write {path}: {e}")))?;
    let _ = writeln!(
        out,
        "cluster bench: {} units over 3 backends, {} hedge(s), {} dedup(s), {} drop(s), \
         {} resume(s), scatter {scatter_ms:.1} ms, sweep {sweep_ms:.1} ms",
        units_n,
        scatter.counters.hedges,
        scatter.counters.dedups,
        scatter.counters.backend_drops,
        scatter.counters.shard_resumes
    );
    let _ = writeln!(out, "baseline -> {path}");
    if let Some(check_path) = check {
        let committed = std::fs::read_to_string(check_path)
            .map_err(|e| Error::Io(format!("cannot read baseline {check_path}: {e}")))?;
        let committed = mm_json::parse(&committed)
            .map_err(|e| Error::Io(format!("cannot parse baseline {check_path}: {e}")))?;
        let mut problems = Vec::new();
        for key in ["units", "backends"] {
            let cur = doc.get(key).and_then(Json::as_i64);
            let base = committed.get(key).and_then(Json::as_i64);
            if cur != base {
                problems.push(format!("{key}: {cur:?} vs committed {base:?}"));
            }
        }
        for key in ["scatter", "scatter_fired", "sweep", "sweep_merged"] {
            let compact = |j: &Json| j.get(key).map(Json::to_compact);
            if compact(&doc) != compact(&committed) {
                problems.push(format!("{key} counters changed"));
            }
        }
        if !problems.is_empty() {
            return Err(Error::Verification(format!(
                "cluster bench counter regression vs {check_path}:\n  {}",
                problems.join("\n  ")
            )));
        }
        let _ = writeln!(out, "counters match committed baseline {check_path}");
    }
    Ok(())
}

/// The `bench --verify` scenario (`BENCH_9.json`): proof-carrying answers
/// end to end. Two runs over the same scatter workload, both with
/// `--verify all`:
///
/// * **honest** — a clean three-backend pool; every answer's proof checks
///   out, zero refutations.
/// * **byzantine** — the same pool with a seeded `answer_corruption` plan
///   on one backend (exactly one lie). The coordinator refutes the lie
///   from its own proof, quarantines the liar, and re-asks the unit on the
///   survivors.
///
/// The gate: the byzantine run's merged responses are **byte-identical**
/// to the honest run's (proof bytes included), and the verification
/// counters are pure functions of the seed. Wall times are reported but
/// never gated.
fn verify_bench(
    quick: bool,
    path: &str,
    check: Option<&str>,
    out: &mut String,
) -> Result<(), Error> {
    use mm_json::Json;
    let units_n = if quick { 16 } else { 48 };

    let run = |plans: &[FaultPlan]| -> Result<(mm_cluster::ClusterReport, u64, f64), Error> {
        let pool = spawn_bench_pool_plans(plans, 2 * units_n + 8)?;
        let cfg = ClusterConfig {
            backends: pool.iter().map(|b| b.addr.clone()).collect(),
            balance: BalancePolicy::RoundRobin,
            seed: 31,
            window: units_n,
            verify: mm_cluster::VerifyPolicy::All,
            ..ClusterConfig::default()
        };
        let t0 = std::time::Instant::now();
        let coordinator = Coordinator::connect(cfg, NoopSink)
            .map_err(|e| Error::Io(format!("verify bench connect: {e}")))?;
        let report = coordinator
            .run(scatter_units(units_n), &mut |_, _| {})
            .map_err(|e| Error::Sim(format!("verify bench run: {e}")))?;
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        let corrupted: u64 = pool.iter().map(|b| b.service.stats().corrupted).sum();
        teardown_bench_pool(pool)?;
        if report.counters.lost > 0 {
            return Err(Error::Verification(format!(
                "verify bench lost {} response(s)",
                report.counters.lost
            )));
        }
        Ok((report, corrupted, ms))
    };

    let honest_plans = vec![FaultPlan::none(); 3];
    let mut liar_plans = honest_plans.clone();
    liar_plans[2] = FaultPlan::once(FaultSite::AnswerCorruption, 1);
    let (honest, honest_corrupted, honest_ms) = run(&honest_plans)?;
    let (byz, byz_corrupted, byz_ms) = run(&liar_plans)?;

    let hv = honest
        .counters
        .verify
        .as_ref()
        .ok_or_else(|| Error::Internal("verify bench ran without verify counters".into()))?;
    let bv = byz
        .counters
        .verify
        .as_ref()
        .ok_or_else(|| Error::Internal("verify bench ran without verify counters".into()))?;
    let merged_identical = honest.responses == byz.responses;

    let doc = Json::obj([
        ("schema", Json::str("machmin-verify-bench-v1")),
        ("units", Json::Int(units_n as i64)),
        ("backends", Json::Int(3)),
        ("honest_verified", Json::Int(hv.verified as i64)),
        ("honest_refuted", Json::Int(hv.refuted as i64)),
        ("honest_corrupted", Json::Int(honest_corrupted as i64)),
        ("byz_verified", Json::Int(bv.verified as i64)),
        ("byz_refuted", Json::Int(bv.refuted as i64)),
        ("byz_reasks", Json::Int(bv.reasks as i64)),
        ("byz_corrupted", Json::Int(byz_corrupted as i64)),
        (
            "byz_liar_refuted",
            Json::Int(bv.per_backend_refuted[2] as i64),
        ),
        ("merged_identical", Json::Bool(merged_identical)),
        (
            "byz_quarantines",
            Json::Int(byz.counters.quarantines as i64),
        ),
        ("honest_ms", Json::Float(honest_ms)),
        ("byz_ms", Json::Float(byz_ms)),
    ]);
    std::fs::write(path, doc.to_pretty())
        .map_err(|e| Error::Io(format!("cannot write {path}: {e}")))?;
    let _ = writeln!(
        out,
        "verify bench: {units_n} units, honest {}/{} verified/refuted, \
         byzantine {}/{} verified/refuted ({} lie(s) injected, {} re-ask(s)), \
         merged identical: {merged_identical}, honest {honest_ms:.1} ms, byzantine {byz_ms:.1} ms",
        hv.verified, hv.refuted, bv.verified, bv.refuted, byz_corrupted, bv.reasks
    );
    let _ = writeln!(out, "baseline -> {path}");
    if hv.refuted != 0 || honest_corrupted != 0 {
        return Err(Error::Verification(format!(
            "honest pool must produce zero refutations (got {} refuted, {} corrupted)",
            hv.refuted, honest_corrupted
        )));
    }
    if !merged_identical {
        return Err(Error::Verification(
            "byzantine merged responses diverged from the honest run".into(),
        ));
    }
    if let Some(check_path) = check {
        let committed = std::fs::read_to_string(check_path)
            .map_err(|e| Error::Io(format!("cannot read baseline {check_path}: {e}")))?;
        let committed = mm_json::parse(&committed)
            .map_err(|e| Error::Io(format!("cannot parse baseline {check_path}: {e}")))?;
        let mut problems = Vec::new();
        for key in [
            "units",
            "backends",
            "honest_verified",
            "honest_refuted",
            "honest_corrupted",
            "byz_verified",
            "byz_refuted",
            "byz_reasks",
            "byz_corrupted",
            "byz_liar_refuted",
        ] {
            let cur = doc.get(key).and_then(Json::as_i64);
            let base = committed.get(key).and_then(Json::as_i64);
            if cur != base {
                problems.push(format!("{key}: {cur:?} vs committed {base:?}"));
            }
        }
        if doc.get("merged_identical").map(Json::to_compact)
            != committed.get("merged_identical").map(Json::to_compact)
        {
            problems.push("merged_identical changed".into());
        }
        if !problems.is_empty() {
            return Err(Error::Verification(format!(
                "verify bench counter regression vs {check_path}:\n  {}",
                problems.join("\n  ")
            )));
        }
        let _ = writeln!(out, "counters match committed baseline {check_path}");
    }
    Ok(())
}

/// `certcheck --pool`: the seeded cross-check batch shipped to a live
/// three-backend pool as solve units under `--verify all`. Every answer
/// comes back proof-carrying and is re-checked coordinator-side — the
/// certifier arithmetic against the backend's flow oracle, end to end over
/// the wire. With `--corrupt`, one backend lies exactly once and must be
/// refuted, quarantined, and routed around. The report carries no wall
/// times, so same-seed runs are byte-identical.
fn certcheck_pool(seed: u64, cases: usize, corrupt: bool) -> Result<String, Error> {
    use mm_serve::protocol::{Request, RequestKind};
    let batch = mm_bench::crosscheck::pool_cases(seed, cases);
    let mut plans = vec![FaultPlan::none(); 3];
    if corrupt {
        plans[2] = FaultPlan::once(FaultSite::AnswerCorruption, 1);
    }
    let pool = spawn_bench_pool_plans(&plans, 2 * cases + 8)?;
    let cfg = ClusterConfig {
        backends: pool.iter().map(|b| b.addr.clone()).collect(),
        balance: BalancePolicy::RoundRobin,
        seed,
        window: cases.max(1),
        verify: mm_cluster::VerifyPolicy::All,
        ..ClusterConfig::default()
    };
    let units: Vec<Request> = batch
        .iter()
        .enumerate()
        .map(|(i, (_, jobs))| Request::new(i as u64 + 1, RequestKind::Solve { jobs: jobs.clone() }))
        .collect();
    let coordinator = Coordinator::connect(cfg, NoopSink)
        .map_err(|e| Error::Io(format!("certcheck pool connect: {e}")))?;
    let report = coordinator
        .run(units, &mut |_, _| {})
        .map_err(|e| Error::Sim(format!("certcheck pool run: {e}")))?;
    let corrupted: u64 = pool.iter().map(|b| b.service.stats().corrupted).sum();
    teardown_bench_pool(pool)?;
    if report.counters.lost > 0 {
        return Err(Error::Verification(format!(
            "certcheck pool lost {} response(s)",
            report.counters.lost
        )));
    }
    let v = report
        .counters
        .verify
        .as_ref()
        .ok_or_else(|| Error::Internal("certcheck pool ran without verify counters".into()))?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "certcheck pool seed={seed} cases={cases} corrupt={corrupt}"
    );
    for (i, (family, jobs)) in batch.iter().enumerate() {
        let m = report
            .responses
            .get(&(i as u64 + 1))
            .and_then(|l| mm_json::parse(l).ok())
            .and_then(|j| j.get("machines").and_then(mm_json::Json::as_i64))
            .unwrap_or(-1);
        let _ = writeln!(
            out,
            "case {i}: family={family} n={n} m={m} proof-verified",
            n = jobs.len()
        );
    }
    let _ = writeln!(
        out,
        "verify: {} verified, {} refuted, {} unverifiable, {} re-ask(s), {} lie(s) injected",
        v.verified, v.refuted, v.unverifiable, v.reasks, corrupted
    );
    if corrupt {
        if v.refuted == 0 || corrupted == 0 {
            return Err(Error::Verification(format!(
                "seeded liar was never refuted ({} refuted, {} corrupted)",
                v.refuted, corrupted
            )));
        }
        let _ = writeln!(
            out,
            "liar refuted and quarantined; refuted unit(s) re-asked on survivors"
        );
    } else {
        if v.refuted != 0 || corrupted != 0 {
            return Err(Error::Verification(format!(
                "honest pool produced {} refutation(s) ({} corrupted)",
                v.refuted, corrupted
            )));
        }
        let _ = writeln!(out, "all answers proof-verified, zero refutations");
    }
    Ok(out)
}

/// The `bench --churn` scenario (`BENCH_8.json`): the coordinator under a
/// seeded membership schedule — a spare joins mid-burst, one backend drains
/// gracefully with live shards migrated off it, one flaps and recovers.
///
/// The `backend_churn` rule fires at primary-dispatch boundaries, so the
/// event counters (`churn_events`, `joins`, `drains`, `flaps`) and the
/// response totals are pure functions of the seed + plan; `--check` gates
/// exactly those. Migration counts depend on how far the burst has raced
/// ahead when the drain lands, so they are reported but never gated.
fn churn_bench(
    quick: bool,
    path: &str,
    check: Option<&str>,
    out: &mut String,
) -> Result<(), Error> {
    use mm_json::Json;
    let units_n = if quick { 24 } else { 96 };

    let pool = spawn_bench_pool(4, 2 * units_n + 8)?;
    let cfg = ClusterConfig {
        backends: pool.iter().take(3).map(|b| b.addr.clone()).collect(),
        spares: vec![pool[3].addr.clone()],
        balance: BalancePolicy::RoundRobin,
        seed: 23,
        window: units_n,
        plan: FaultPlan {
            seed: 23,
            rules: vec![mm_fault::FaultRule {
                site: FaultSite::BackendChurn,
                nth: 4,
                every: Some(5),
            }],
        },
        churn: Some(mm_cluster::ChurnPlan::rolling(2, 1)),
        ..ClusterConfig::default()
    };
    let t0 = std::time::Instant::now();
    let coordinator = Coordinator::connect(cfg, NoopSink)
        .map_err(|e| Error::Io(format!("churn bench connect: {e}")))?;
    let report = coordinator
        .run(scatter_units(units_n), &mut |_, _| {})
        .map_err(|e| Error::Sim(format!("churn bench run: {e}")))?;
    let churn_ms = t0.elapsed().as_secs_f64() * 1e3;
    teardown_bench_pool(pool)?;
    if report.counters.lost > 0 {
        return Err(Error::Verification(format!(
            "churn bench lost {} response(s)",
            report.counters.lost
        )));
    }

    let fired = Json::Arr(
        report
            .fired
            .iter()
            .map(|(site, n)| {
                Json::obj([
                    ("site", Json::str(site.tag())),
                    ("count", Json::Int(*n as i64)),
                ])
            })
            .collect(),
    );
    let c = &report.counters;
    let doc = Json::obj([
        ("schema", Json::str("machmin-churn-bench-v1")),
        ("units", Json::Int(units_n as i64)),
        ("backends", Json::Int(3)),
        ("spares", Json::Int(1)),
        ("responses", Json::Int(c.responses as i64)),
        ("churn_events", Json::Int(c.churn_events as i64)),
        ("joins", Json::Int(c.joins as i64)),
        ("drains", Json::Int(c.drains as i64)),
        ("flaps", Json::Int(c.flaps as i64)),
        ("churn_fired", fired),
        // Timing-dependent observability; reported, never gated.
        ("migrations", Json::Int(c.migrations as i64)),
        ("migrated_answers", Json::Int(c.migrated_answers as i64)),
        ("churn_ms", Json::Float(churn_ms)),
    ]);
    std::fs::write(path, doc.to_pretty())
        .map_err(|e| Error::Io(format!("cannot write {path}: {e}")))?;
    let _ = writeln!(
        out,
        "churn bench: {} units over 3+1 backends, {} churn event(s) ({} join(s), {} drain(s), \
         {} flap(s)), {} migration(s), {churn_ms:.1} ms",
        units_n, c.churn_events, c.joins, c.drains, c.flaps, c.migrations
    );
    let _ = writeln!(out, "baseline -> {path}");
    if let Some(check_path) = check {
        let committed = std::fs::read_to_string(check_path)
            .map_err(|e| Error::Io(format!("cannot read baseline {check_path}: {e}")))?;
        let committed = mm_json::parse(&committed)
            .map_err(|e| Error::Io(format!("cannot parse baseline {check_path}: {e}")))?;
        let mut problems = Vec::new();
        for key in [
            "units",
            "backends",
            "responses",
            "churn_events",
            "joins",
            "drains",
            "flaps",
        ] {
            let cur = doc.get(key).and_then(Json::as_i64);
            let base = committed.get(key).and_then(Json::as_i64);
            if cur != base {
                problems.push(format!("{key}: {cur:?} vs committed {base:?}"));
            }
        }
        {
            let compact = |j: &Json| j.get("churn_fired").map(Json::to_compact);
            if compact(&doc) != compact(&committed) {
                problems.push("churn_fired counters changed".into());
            }
        }
        if !problems.is_empty() {
            return Err(Error::Verification(format!(
                "churn bench counter regression vs {check_path}:\n  {}",
                problems.join("\n  ")
            )));
        }
        let _ = writeln!(out, "counters match committed baseline {check_path}");
    }
    Ok(())
}

/// The `bench --obs` scenario (`BENCH_6.json`): gates proving the
/// observability layer is an exact, no-op account of the work done.
///
/// Three deterministic gates:
///
/// 1. **Byte-identity** — every request in the seeded mixed stream executes
///    twice, once untraced (`exec::execute`, disabled sink) and once with an
///    enabled metrics sink; the response lines must match byte-for-byte, so
///    attaching a sink cannot change an answer.
/// 2. **Stable trace counters** — the probe/augmentation/span counters the
///    traced pass aggregates are pure functions of the seed; `--check`
///    gates them, so an instrumentation change that alters solver work (or
///    silently stops emitting spans) fails the bench.
/// 3. **Exact account** — a live server runs the same stream, and its
///    `stats` scrape must report per-kind latency histograms whose total
///    equals the responses served: one observation per response, none lost.
///
/// Only the wall-clock quantiles vary by environment; `--check` never gates
/// on those.
fn obs_bench(quick: bool, path: &str, check: Option<&str>, out: &mut String) -> Result<(), Error> {
    use mm_json::Json;
    use mm_serve::exec::{self, NoProgress};
    let n = if quick { 60 } else { 240 };
    let requests = mm_serve::mixed_requests(17, n, None);

    let mut sink = MetricsSink::new();
    for req in &requests {
        let plain = exec::execute(req, None, false, &mut NoProgress).to_line();
        let traced = exec::execute_traced(req, None, false, &mut NoProgress, &mut sink).to_line();
        if plain != traced {
            return Err(Error::Verification(format!(
                "request {} differs under tracing:\n  untraced: {plain}\n  traced:   {traced}",
                req.id
            )));
        }
    }
    let m = &sink.metrics;
    if m.span_phases == 0 || m.feasibility_probes == 0 {
        return Err(Error::Verification(
            "traced pass recorded no spans/probes — instrumentation went dark".into(),
        ));
    }
    let trace_counters = Json::obj([
        ("span_phases", Json::Int(m.span_phases as i64)),
        ("feasibility_probes", Json::Int(m.feasibility_probes as i64)),
        ("flow_augmentations", Json::Int(m.flow_augmentations as i64)),
        ("prober_incremental", Json::Int(m.prober_incremental as i64)),
        ("adversary_rounds", Json::Int(m.adversary_rounds as i64)),
    ]);

    let service = Arc::new(
        Service::start(
            ServeConfig {
                workers: 2,
                queue_cap: 16,
                ..ServeConfig::default()
            },
            DynSink::new(Box::new(NoopSink)),
        )
        .map_err(|e| Error::Sim(format!("cannot start obs bench server: {e}")))?,
    );
    let (listener, addr) = mm_serve::tcp::bind("127.0.0.1:0")
        .map_err(|e| Error::Io(format!("cannot bind obs bench server: {e}")))?;
    let acceptor = {
        let service = Arc::clone(&service);
        std::thread::spawn(move || mm_serve::tcp::serve(listener, service))
    };
    let report = mm_serve::run_load(
        &addr,
        &LoadConfig {
            n,
            seed: 17,
            window: 8,
            shutdown: false,
            ..LoadConfig::default()
        },
    )
    .map_err(|e| Error::Io(format!("obs bench load failed: {e}")))?;
    if report.lost > 0 {
        return Err(Error::Verification(format!(
            "obs bench lost {} response(s)",
            report.lost
        )));
    }

    // Histogram accounting lands just after each reply is sent, so poll the
    // scrape until the totals catch up with the response counter.
    let responses = service.stats().responses;
    let t0 = std::time::Instant::now();
    let (scrape, hist_total) = loop {
        let outcome = mm_cluster::cluster_stats(std::slice::from_ref(&addr), false);
        let total: u64 = outcome
            .merged
            .histograms
            .iter()
            .filter(|(k, _)| k.starts_with("latency_us."))
            .map(|(_, h)| h.count())
            .sum();
        if total == responses || t0.elapsed() > std::time::Duration::from_secs(10) {
            break (outcome, total);
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    };
    let scrape_ms = t0.elapsed().as_secs_f64() * 1e3;
    service.shutdown();
    service.wait_stopped();
    acceptor
        .join()
        .map_err(|_| Error::Internal("obs bench accept loop panicked".into()))?
        .map_err(|e| Error::Io(format!("obs bench accept loop failed: {e}")))?;
    let stats = service.stats();
    if hist_total != responses {
        return Err(Error::Verification(format!(
            "stats histograms count {hist_total} observation(s) for {responses} response(s)"
        )));
    }

    let by_kind: Vec<(String, Json)> = scrape
        .merged
        .histograms
        .iter()
        .filter(|(k, _)| k.starts_with("latency_us."))
        .map(|(k, h)| {
            (
                k["latency_us.".len()..].to_string(),
                Json::Int(h.count() as i64),
            )
        })
        .collect();
    let statuses: Vec<(String, Json)> = report
        .by_status
        .iter()
        .map(|(s, c)| (s.clone(), Json::Int(*c as i64)))
        .collect();
    let doc = Json::obj([
        ("schema", Json::str("machmin-obs-bench-v1")),
        ("requests", Json::Int(report.sent as i64)),
        ("traced_identical", Json::Bool(true)),
        ("trace", trace_counters),
        ("admitted", Json::Int(stats.admitted as i64)),
        ("responses", Json::Int(stats.responses as i64)),
        ("shed", Json::Int(stats.shed as i64)),
        ("hist_total", Json::Int(hist_total as i64)),
        ("by_kind", Json::obj(by_kind)),
        ("by_status", Json::obj(statuses)),
        ("p50_ms", Json::Float(report.p50_ms)),
        ("p99_ms", Json::Float(report.p99_ms)),
        ("p999_ms", Json::Float(report.p999_ms)),
        ("scrape_ms", Json::Float(scrape_ms)),
    ]);
    std::fs::write(path, doc.to_pretty())
        .map_err(|e| Error::Io(format!("cannot write {path}: {e}")))?;
    let _ = writeln!(
        out,
        "obs bench: {} requests byte-identical under tracing; {} span phase(s); \
         {hist_total} histogram observation(s) == {responses} response(s)",
        report.sent, m.span_phases
    );
    let _ = writeln!(out, "baseline -> {path}");
    if let Some(check_path) = check {
        let committed = std::fs::read_to_string(check_path)
            .map_err(|e| Error::Io(format!("cannot read baseline {check_path}: {e}")))?;
        let committed = mm_json::parse(&committed)
            .map_err(|e| Error::Io(format!("cannot parse baseline {check_path}: {e}")))?;
        let mut problems = Vec::new();
        for key in ["requests", "admitted", "responses", "shed", "hist_total"] {
            let cur = doc.get(key).and_then(Json::as_i64);
            let base = committed.get(key).and_then(Json::as_i64);
            if cur != base {
                problems.push(format!("{key}: {cur:?} vs committed {base:?}"));
            }
        }
        for key in ["traced_identical", "trace", "by_kind", "by_status"] {
            let compact = |j: &Json| j.get(key).map(Json::to_compact);
            if compact(&doc) != compact(&committed) {
                problems.push(format!("{key} changed"));
            }
        }
        if !problems.is_empty() {
            return Err(Error::Verification(format!(
                "obs bench counter regression vs {check_path}:\n  {}",
                problems.join("\n  ")
            )));
        }
        let _ = writeln!(out, "counters match committed baseline {check_path}");
    }
    Ok(())
}

/// The `bench --online` scenario (`BENCH_10.json`): races the full online
/// portfolio over the seeded agreeable / laminar / adversary streams and
/// gates on the measured competitive ratios.
///
/// Three deterministic gates:
///
/// 1. **Byte-identity** — the race runs twice (once with a metrics sink,
///    once without); the rendered table and the JSON report must match
///    byte-for-byte, so same-seed reruns and sink attachment cannot change
///    a measured ratio.
/// 2. **Theorem bounds** — [`mm_online::RaceReport::check_bounds`]: the
///    class specialists are miss-free on their own stream families and the
///    non-preemptive agreeable member stays within its 32.70·m budget
///    (Theorems 12/14; lower bound 1.101·m from Theorem 15).
/// 3. **Stable counters** — `--check` gates the embedded race JSON and the
///    aggregated `online_*` trace counters against the committed baseline;
///    a policy change that opens a different number of machines fails the
///    bench.
///
/// Only `race_ms` varies by environment; `--check` never gates on it.
fn online_bench(
    quick: bool,
    path: &str,
    check: Option<&str>,
    out: &mut String,
) -> Result<(), Error> {
    use mm_json::Json;
    let cfg = mm_online::RaceConfig {
        seed: 7,
        n: if quick { 24 } else { 60 },
        k: if quick { 3 } else { 4 },
        members: mm_online::Member::ALL.to_vec(),
    };

    let t0 = std::time::Instant::now();
    let mut sink = MetricsSink::new();
    let report = mm_online::race(cfg.clone(), &mut sink)
        .map_err(|e| Error::Sim(format!("online race failed: {e}")))?;
    let race_ms = t0.elapsed().as_secs_f64() * 1e3;
    let rerun = mm_online::race(cfg, &mut mm_trace::NoopSink)
        .map_err(|e| Error::Sim(format!("online race rerun failed: {e}")))?;
    if report.render() != rerun.render()
        || report.to_json().to_compact() != rerun.to_json().to_compact()
    {
        return Err(Error::Verification(
            "online race is not byte-identical across same-seed reruns".into(),
        ));
    }
    report.check_bounds().map_err(Error::Verification)?;

    let m = &sink.metrics;
    if m.online_runs == 0 {
        return Err(Error::Verification(
            "online race emitted no OnlineRunCompleted events — tracing went dark".into(),
        ));
    }
    let doc = Json::obj([
        ("schema", Json::str("machmin-online-bench-v1")),
        ("race", report.to_json()),
        ("online_runs", Json::Int(m.online_runs as i64)),
        (
            "online_machines_opened",
            Json::Int(m.online_machines_opened as i64),
        ),
        (
            "online_worst_ratio_millis",
            Json::Int(m.online_worst_ratio_millis as i64),
        ),
        ("rerun_identical", Json::Bool(true)),
        ("race_ms", Json::Float(race_ms)),
    ]);
    std::fs::write(path, doc.to_pretty())
        .map_err(|e| Error::Io(format!("cannot write {path}: {e}")))?;
    let _ = writeln!(
        out,
        "online bench: {} race cell(s) byte-identical across reruns; worst ratio {}.{:03}; \
         bounds hold",
        m.online_runs,
        m.online_worst_ratio_millis / 1000,
        m.online_worst_ratio_millis % 1000
    );
    let _ = writeln!(out, "baseline -> {path}");
    if let Some(check_path) = check {
        let committed = std::fs::read_to_string(check_path)
            .map_err(|e| Error::Io(format!("cannot read baseline {check_path}: {e}")))?;
        let committed = mm_json::parse(&committed)
            .map_err(|e| Error::Io(format!("cannot parse baseline {check_path}: {e}")))?;
        let mut problems = Vec::new();
        for key in [
            "online_runs",
            "online_machines_opened",
            "online_worst_ratio_millis",
        ] {
            let cur = doc.get(key).and_then(Json::as_i64);
            let base = committed.get(key).and_then(Json::as_i64);
            if cur != base {
                problems.push(format!("{key}: {cur:?} vs committed {base:?}"));
            }
        }
        for key in ["race", "rerun_identical"] {
            let compact = |j: &Json| j.get(key).map(Json::to_compact);
            if compact(&doc) != compact(&committed) {
                problems.push(format!("{key} changed"));
            }
        }
        if !problems.is_empty() {
            return Err(Error::Verification(format!(
                "online bench ratio regression vs {check_path}:\n  {}",
                problems.join("\n  ")
            )));
        }
        let _ = writeln!(out, "ratios match committed baseline {check_path}");
    }
    Ok(())
}

/// Merges every `latency_us.*` histogram of a snapshot into one, for
/// whole-backend / whole-pool latency quantiles.
fn merged_latency(snap: &mm_obs::RegistrySnapshot) -> mm_obs::Histogram {
    let mut all = mm_obs::Histogram::new();
    for (name, h) in &snap.histograms {
        if name.starts_with("latency_us.") {
            all.merge(h);
        }
    }
    all
}

/// Formats a microsecond latency compactly.
fn fmt_lat(us: u64) -> String {
    if us < 1_000 {
        format!("{us}us")
    } else if us < 1_000_000 {
        format!("{:.1}ms", us as f64 / 1e3)
    } else {
        format!("{:.2}s", us as f64 / 1e6)
    }
}

/// Formats a microsecond latency quantile compactly ("-" for no data).
fn fmt_q(hist: &mm_obs::Histogram, q: f64) -> String {
    if hist.count() == 0 {
        return "-".into();
    }
    fmt_lat(hist.quantile(q))
}

/// Feeds one pool-wide scrape into an overload index: queue depth and
/// in-flight come from the backend's gauges, p99 from its merged latency
/// histogram. `machmin top` keeps the index alive across refresh frames so
/// the sustain hysteresis is real; one-shot `cluster stats` shows a single
/// window's verdict.
fn observe_overload(index: &mut mm_cluster::OverloadIndex, outcome: &mm_cluster::StatsOutcome) {
    use mm_json::Json;
    for (i, b) in outcome.backends.iter().enumerate() {
        let Some(r) = &b.response else { continue };
        let int = |key: &str| r.get(key).and_then(Json::as_i64).unwrap_or(0).max(0) as u64;
        let lat = merged_latency(&b.snapshot);
        let p99_us = if lat.count() == 0 {
            0
        } else {
            lat.quantile(0.99)
        };
        index.record(
            i,
            mm_cluster::OverloadSample {
                queue_depth: int("queue_depth"),
                p99_us,
                outstanding: int("in_flight"),
            },
        );
    }
}

/// One `machmin top` frame rendered from a pool-wide scrape. `HEAT` is the
/// backend's overload index as `hot/windows` (a trailing `!` marks a
/// sustained offender); `MIGR` counts requests the backend answered on
/// behalf of a draining or overloaded peer.
fn render_top(outcome: &mm_cluster::StatsOutcome, overload: &mm_cluster::OverloadIndex) -> String {
    use mm_json::Json;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "machmin top — {}/{} backend(s) up",
        outcome.reachable,
        outcome.backends.len()
    );
    let _ = writeln!(
        s,
        "  {:<22} {:>9} {:>6} {:>5} {:>8} {:>6} {:>5} {:>8} {:>7} {:>8} {:>8} {:>8}",
        "BACKEND",
        "UPTIME",
        "DEPTH",
        "INFL",
        "RESP",
        "MIGR",
        "HEAT",
        "VERIFIED",
        "REFUTED",
        "P50",
        "P99",
        "P999"
    );
    let int = |r: &Json, key: &str| r.get(key).and_then(Json::as_i64).unwrap_or(0);
    let heat = overload.snapshot();
    for (i, b) in outcome.backends.iter().enumerate() {
        match &b.response {
            None => {
                let _ = writeln!(s, "  {:<22} unreachable", b.addr);
            }
            Some(r) => {
                let lat = merged_latency(&b.snapshot);
                let (hot, windows) = heat.get(i).copied().unwrap_or((0, 0));
                let counter = |key: &str| b.snapshot.counters.get(key).copied().unwrap_or(0);
                let _ = writeln!(
                    s,
                    "  {:<22} {:>8}s {:>6} {:>5} {:>8} {:>6} {:>5} {:>8} {:>7} {:>8} {:>8} {:>8}",
                    b.addr,
                    int(r, "uptime_ms") / 1_000,
                    int(r, "queue_depth"),
                    int(r, "in_flight"),
                    counter("serve.responses"),
                    counter("serve.migrated_served"),
                    format!(
                        "{hot}/{windows}{}",
                        if overload.sustained(i) { "!" } else { "" }
                    ),
                    counter("serve.verified"),
                    counter("serve.refuted"),
                    fmt_q(&lat, 0.50),
                    fmt_q(&lat, 0.99),
                    fmt_q(&lat, 0.999),
                );
            }
        }
    }
    let pool = merged_latency(&outcome.merged);
    let merged_counter = |key: &str| outcome.merged.counters.get(key).copied().unwrap_or(0);
    let _ = writeln!(
        s,
        "  pool: {} response(s), {} migrated-answered, {} verified, {} refuted, \
         {} observation(s), p50 {}, p99 {}, p999 {}",
        merged_counter("serve.responses"),
        merged_counter("serve.migrated_served"),
        merged_counter("serve.verified"),
        merged_counter("serve.refuted"),
        pool.count(),
        fmt_q(&pool, 0.50),
        fmt_q(&pool, 0.99),
        fmt_q(&pool, 0.999),
    );
    // The slowest recent spans across the pool, worst first.
    let mut slowest: Vec<(u64, String)> = Vec::new();
    for b in &outcome.backends {
        let Some(r) = &b.response else { continue };
        let Some(spans) = r.get("slowest").and_then(Json::as_arr) else {
            continue;
        };
        for span in spans {
            let us = span.get("micros").and_then(Json::as_i64).unwrap_or(0) as u64;
            let kind = span
                .get("kind")
                .and_then(Json::as_str)
                .unwrap_or("?")
                .to_string();
            let id = span.get("id").and_then(Json::as_i64).unwrap_or(0);
            slowest.push((us, format!("{kind}#{id}@{} {}", b.addr, fmt_lat(us))));
        }
    }
    slowest.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
    if !slowest.is_empty() {
        let top: Vec<String> = slowest.into_iter().take(4).map(|(_, s)| s).collect();
        let _ = writeln!(s, "  slowest: {}", top.join(", "));
    }
    s
}

/// The `--trace` / `--metrics` sink pair. Both are optional; with neither
/// requested the composed sink is disabled and the traced code paths cost
/// nothing beyond one boolean check per event site.
struct CliSinks {
    jsonl: Option<JsonlSink<BufWriter<std::fs::File>>>,
    metrics: Option<MetricsSink>,
    trace_path: Option<String>,
    metrics_path: Option<String>,
}

impl CliSinks {
    fn open(trace: Option<String>, metrics: Option<String>) -> Result<Self, Error> {
        let jsonl = match &trace {
            Some(path) => {
                let file = std::fs::File::create(path)
                    .map_err(|e| Error::Io(format!("cannot create {path}: {e}")))?;
                Some(JsonlSink::new(BufWriter::new(file)))
            }
            None => None,
        };
        let metrics_sink = metrics.is_some().then(MetricsSink::new);
        Ok(CliSinks {
            jsonl,
            metrics: metrics_sink,
            trace_path: trace,
            metrics_path: metrics,
        })
    }

    /// A borrowed sink to lend to one traced run (tee of both outputs).
    #[allow(clippy::type_complexity)]
    fn sink(
        &mut self,
    ) -> TeeSink<&mut Option<JsonlSink<BufWriter<std::fs::File>>>, &mut Option<MetricsSink>> {
        TeeSink(&mut self.jsonl, &mut self.metrics)
    }

    /// Records one event produced by the CLI layer itself (as opposed to a
    /// traced library run).
    fn record(&mut self, event: &TraceEvent) {
        let mut sink = self.sink();
        if sink.enabled() {
            sink.record(event);
        }
    }

    /// Flushes the trace, writes the metrics file, appends report lines to
    /// `out`, and hands back the aggregated metrics for cross-checks.
    fn finish(self, out: &mut String) -> Result<Option<Metrics>, Error> {
        if let (Some(sink), Some(path)) = (self.jsonl, &self.trace_path) {
            let events = sink.written();
            sink.finish()
                .map_err(|e| Error::Io(format!("cannot write trace {path}: {e}")))?;
            let _ = writeln!(out, "trace: {events} events -> {path}");
        }
        let metrics = self.metrics.map(|s| s.metrics);
        if let (Some(metrics), Some(path)) = (&metrics, &self.metrics_path) {
            std::fs::write(path, metrics.to_json().to_pretty())
                .map_err(|e| Error::Io(format!("cannot write metrics {path}: {e}")))?;
            let _ = writeln!(out, "metrics -> {path}");
        }
        Ok(metrics)
    }
}

/// Executes a command, returning the text to print.
pub fn execute(cmd: Command) -> Result<String, Error> {
    let mut out = String::new();
    match cmd {
        Command::Help => out.push_str(help_text()),
        Command::Solve {
            path,
            budget,
            attempts,
            trace,
            metrics,
        } => {
            let inst = load(&path)?;
            let mut sinks = CliSinks::open(trace, metrics)?;
            let _ = writeln!(out, "jobs: {}", inst.len());
            match budget {
                None => {
                    let m = optimal_machines_traced(&inst, sinks.sink());
                    let _ = writeln!(out, "migratory optimum m(J): {m}");
                }
                Some(initial) => {
                    let mut budget = initial;
                    let mut attempt = 1u32;
                    let search = loop {
                        let search = optimal_machines_budgeted_traced(&inst, &budget, sinks.sink());
                        if search.is_exact() || attempt == attempts {
                            break search;
                        }
                        let reason = search
                            .exceeded
                            .as_ref()
                            .map(|e| e.tag())
                            .unwrap_or("budget");
                        let _ = writeln!(
                            out,
                            "attempt {attempt}/{attempts}: {reason} budget exceeded at bracket \
                             [{}, {}]; doubling budget",
                            search.lo, search.hi
                        );
                        budget = budget.doubled();
                        attempt += 1;
                    };
                    match search.exact {
                        Some(m) => {
                            let _ = writeln!(
                                out,
                                "migratory optimum m(J): {m} (within budget, attempt \
                                 {attempt}/{attempts})"
                            );
                        }
                        None => {
                            let _ = writeln!(
                                out,
                                "degraded: certified bracket {} <= m(J) <= {} after {attempts} \
                                 attempt(s), {} unknown probe(s)",
                                search.lo, search.hi, search.unknown_probes
                            );
                        }
                    }
                }
            }
            let cert = contribution_bound(&inst);
            let _ = writeln!(
                out,
                "Theorem 1 certificate: ⌈{}⌉ = {} on witness {}",
                cert.density, cert.bound, cert.witness
            );
            sinks.finish(&mut out)?;
        }
        Command::Classify { path } => {
            let inst = load(&path)?;
            let _ = writeln!(out, "jobs: {}", inst.len());
            let _ = writeln!(out, "structure: {:?}", inst.classify());
            if let Some(d) = inst.delta() {
                let _ = writeln!(out, "Δ (max/min processing): {}", d);
            }
            for (num, den) in [(1i64, 2i64), (63, 100), (9, 10)] {
                let alpha = Rat::ratio(num, den);
                let loose = inst.iter().filter(|j| j.is_loose(&alpha)).count();
                let _ = writeln!(
                    out,
                    "α = {num}/{den}: {loose} loose / {} tight",
                    inst.len() - loose
                );
            }
        }
        Command::Demigrate { path } => {
            let inst = load(&path)?;
            let m = optimal_machines(&inst);
            let res = demigrate(&inst);
            let mut sched = res.schedule;
            verify(&inst, &mut sched, &VerifyOptions::nonmigratory())
                .map_err(|e| Error::Internal(format!("demigrated schedule invalid: {e:?}")))?;
            let _ = writeln!(out, "migratory optimum: {m}");
            let _ = writeln!(
                out,
                "non-migratory machines: {} (Theorem 2 bound: {})",
                res.machines,
                theorem2_bound(m)
            );
        }
        Command::Schedule {
            path,
            policy,
            machines,
            trace,
            metrics,
        } => {
            let inst = load(&path)?;
            let budget = machines.unwrap_or(inst.len()).max(1);
            let mut sinks = CliSinks::open(trace, metrics)?;
            let m = optimal_machines_traced(&inst, sinks.sink());
            let (outcome, opts) = match policy.as_str() {
                "edf" => (
                    run_policy_traced(&inst, Edf, SimConfig::migratory(budget), sinks.sink()),
                    VerifyOptions::migratory(),
                ),
                "llf" => (
                    run_policy_traced(
                        &inst,
                        Llf::new(),
                        SimConfig::migratory(budget),
                        sinks.sink(),
                    ),
                    VerifyOptions::migratory(),
                ),
                "edf-ff" => (
                    run_policy_traced(
                        &inst,
                        EdfFirstFit::new(),
                        SimConfig::nonmigratory(budget),
                        sinks.sink(),
                    ),
                    VerifyOptions::nonmigratory(),
                ),
                "medium-fit" => (
                    run_policy_traced(
                        &inst,
                        MediumFit::new(),
                        SimConfig::nonmigratory(budget),
                        sinks.sink(),
                    ),
                    VerifyOptions::nonpreemptive(),
                ),
                "agreeable" => (
                    run_policy_traced(
                        &inst,
                        AgreeableSplit::for_optimum(m),
                        SimConfig::nonmigratory(
                            AgreeableSplit::for_optimum(m).total_machines().max(budget),
                        ),
                        sinks.sink(),
                    ),
                    VerifyOptions::nonmigratory(),
                ),
                "laminar" => {
                    let p = LaminarBudget::new(
                        LaminarBudget::suggested_m_prime(m, 4),
                        (4 * m) as usize,
                        Rat::half(),
                    );
                    let total = p.total_machines().max(budget);
                    (
                        run_policy_traced(&inst, p, SimConfig::nonmigratory(total), sinks.sink()),
                        VerifyOptions::nonmigratory(),
                    )
                }
                other => return Err(Error::Usage(format!("unknown policy `{other}`"))),
            };
            let mut outcome = match outcome {
                Ok(o) => o,
                Err(e) => {
                    // Still flush the partial trace: runs that die against the
                    // step cap (or a policy bug) are exactly the ones worth
                    // inspecting offline.
                    sinks.finish(&mut out)?;
                    return Err(Error::Sim(format!("simulation failed: {e}")));
                }
            };
            let _ = writeln!(out, "policy: {policy}, budget: {budget}, optimum m: {m}");
            let stats = if outcome.feasible() {
                let stats =
                    verify(&outcome.instance, &mut outcome.schedule, &opts).map_err(|e| {
                        Error::Verification(format!("schedule failed verification: {e:?}"))
                    })?;
                let _ = writeln!(
                    out,
                    "feasible: yes | machines used: {} | migrations: {} | preemptions: {}",
                    stats.machines_used, stats.migrations, stats.preemptions
                );
                Some(stats)
            } else {
                let _ = writeln!(
                    out,
                    "feasible: NO ({} deadline misses within budget {budget})",
                    outcome.misses.len()
                );
                None
            };
            if let Some(metrics) = sinks.finish(&mut out)? {
                // The trace counters are defined to agree with the verified
                // schedule's stats; refuse to report silently-diverging ones.
                if let Some(stats) = &stats {
                    let ok = metrics.machines_opened == stats.machines_used as u64
                        && metrics.migrations == stats.migrations as u64
                        && metrics.preemptions == stats.preemptions as u64;
                    if !ok {
                        return Err(Error::Verification(format!(
                            "trace/verifier disagreement: metrics say \
                             {}/{}/{} (machines/migrations/preemptions), \
                             verifier says {}/{}/{}",
                            metrics.machines_opened,
                            metrics.migrations,
                            metrics.preemptions,
                            stats.machines_used,
                            stats.migrations,
                            stats.preemptions
                        )));
                    }
                    let _ = writeln!(out, "trace counters agree with verified schedule");
                }
            }
            outcome.schedule.compact_machines();
            out.push_str(&render_gantt(&mut outcome.schedule, 72));
        }
        Command::Adversary {
            policy,
            k,
            machines,
            checkpoint,
            resume,
            export_stream,
            trace,
            metrics,
        } => {
            let mut state = match (&checkpoint, resume) {
                (Some(path), true) if Path::new(path).exists() => {
                    let mut s = SweepCheckpoint::load(Path::new(path))
                        .map_err(|e| Error::Io(format!("cannot resume from {path}: {e}")))?;
                    if s.policy != policy {
                        return Err(Error::Usage(format!(
                            "checkpoint {path} was recorded for policy `{}`, not `{policy}`",
                            s.policy
                        )));
                    }
                    let done: Vec<usize> = s.completed.iter().map(|r| r.k).collect();
                    let _ = writeln!(out, "resumed {path}: depths {done:?} already complete");
                    // A deeper --k extends the sweep; a shallower one never
                    // discards completed work.
                    s.k_target = s.k_target.max(k);
                    s
                }
                _ => SweepCheckpoint::new(policy.clone(), k),
            };
            let mut sinks = CliSinks::open(trace, metrics)?;
            let mut export_best: Option<(usize, Instance)> = None;
            while let Some(depth) = state.next_k() {
                let res = match policy.as_str() {
                    "edf-ff" => {
                        MigrationGapAdversary::with_sink(EdfFirstFit::new(), machines, sinks.sink())
                            .run(depth)
                    }
                    "medium-fit" => {
                        MigrationGapAdversary::with_sink(MediumFit::new(), machines, sinks.sink())
                            .run(depth)
                    }
                    other => {
                        return Err(Error::Usage(format!(
                            "unknown adversary policy `{other}` (expected edf-ff or medium-fit)"
                        )))
                    }
                }
                .map_err(|e| Error::Sim(format!("adversary run at k={depth} failed: {e}")))?;
                let _ = writeln!(
                    out,
                    "k={depth}: forced {} machines, {} jobs, offline optimum {}{}{}",
                    res.machines_forced,
                    res.jobs_released,
                    res.offline_optimum,
                    if res.policy_missed {
                        ", policy missed a deadline"
                    } else {
                        ""
                    },
                    match &res.stopped {
                        Some(stop) => format!(" (stopped: {stop:?})"),
                        None => String::new(),
                    }
                );
                if export_stream.is_some()
                    && export_best
                        .as_ref()
                        .is_none_or(|(m, _)| res.machines_forced > *m)
                {
                    export_best = Some((res.machines_forced, res.instance.clone()));
                }
                state.record(CompletedRun::from_result(&res));
                sinks.record(&TraceEvent::AdversaryCheckpoint {
                    round: depth as u32,
                    jobs: state.total_jobs(),
                });
                if let Some(path) = &checkpoint {
                    state
                        .save(Path::new(path))
                        .map_err(|e| Error::Io(format!("cannot write checkpoint {path}: {e}")))?;
                }
            }
            let best = state
                .completed
                .iter()
                .map(|r| r.machines_forced)
                .max()
                .unwrap_or(0);
            let _ = writeln!(
                out,
                "sweep complete: max machines forced {best} across k=2..={}",
                state.k_target
            );
            if let Some(path) = &checkpoint {
                let _ = writeln!(out, "checkpoint -> {path}");
            }
            if let Some(path) = &export_stream {
                match export_best {
                    Some((forced, inst)) => {
                        let events = mm_online::stream_of_instance(&inst);
                        let file = std::fs::File::create(path)
                            .map_err(|e| Error::Io(format!("cannot create {path}: {e}")))?;
                        mm_online::write_stream(std::io::BufWriter::new(file), &events)
                            .map_err(|e| Error::Io(format!("cannot write {path}: {e}")))?;
                        let _ = writeln!(
                            out,
                            "exported {} release events (forced {forced} machines) -> {path}",
                            events.len()
                        );
                    }
                    None => {
                        let _ = writeln!(
                            out,
                            "nothing to export: every requested depth was already complete"
                        );
                    }
                }
            }
            sinks.finish(&mut out)?;
        }
        Command::Online {
            mode,
            stream,
            member,
            seed,
            n,
            k,
            members,
            out: out_path,
            trace,
            metrics,
        } => {
            let mut sinks = CliSinks::open(trace, metrics)?;
            match mode.as_str() {
                "run" => {
                    let path = stream.expect("parse guarantees --stream for run");
                    let file = std::fs::File::open(&path)
                        .map_err(|e| Error::Io(format!("cannot open {path}: {e}")))?;
                    let events = mm_online::read_stream(std::io::BufReader::new(file))
                        .map_err(|e| Error::Validation(format!("{path}: {e}")))?;
                    let inst = mm_online::instance_of_stream(&events);
                    let (optimum, _) = mm_opt::optimal_machines_fast(&inst);
                    let picked = if member == "auto" {
                        mm_online::Member::auto(&inst)
                    } else {
                        mm_online::Member::parse(&member).ok_or_else(|| {
                            Error::Usage(format!(
                                "unknown portfolio member `{member}` \
                                 (loose|laminar|agreeable|cms|imps|auto)"
                            ))
                        })?
                    };
                    let mut sink = sinks.sink();
                    let row = mm_online::run_member(picked, "file", &events, optimum, &mut sink)
                        .map_err(|e| Error::Sim(format!("online replay failed: {e}")))?;
                    let _ = writeln!(
                        out,
                        "online run: {picked} [{}] on {} event(s) from {path}",
                        picked.reference(),
                        events.len()
                    );
                    let _ = writeln!(
                        out,
                        "machines opened {} vs offline optimum {} -> ratio {}.{:03}, {} miss(es)",
                        row.machines_opened,
                        row.optimum,
                        row.ratio_millis / 1000,
                        row.ratio_millis % 1000,
                        row.misses
                    );
                }
                "race" => {
                    let member_list = mm_online::Member::parse_list(&members).ok_or_else(|| {
                        Error::Usage(format!(
                            "unknown portfolio member in `{members}` \
                             (loose|laminar|agreeable|cms|imps|all)"
                        ))
                    })?;
                    let cfg = mm_online::RaceConfig {
                        seed,
                        n,
                        k,
                        members: member_list,
                    };
                    let mut sink = sinks.sink();
                    let report = mm_online::race(cfg, &mut sink)
                        .map_err(|e| Error::Sim(format!("online race failed: {e}")))?;
                    out.push_str(&report.render());
                    report.check_bounds().map_err(Error::Verification)?;
                    let _ = writeln!(
                        out,
                        "bounds hold: specialists miss-free on their classes, \
                         agreeable within its 32.70·m budget (lower bound {}.{:03}·m)",
                        mm_online::AGREEABLE_LB_MILLIS / 1000,
                        mm_online::AGREEABLE_LB_MILLIS % 1000
                    );
                    if let Some(path) = &out_path {
                        std::fs::write(path, report.to_json().to_pretty())
                            .map_err(|e| Error::Io(format!("cannot write {path}: {e}")))?;
                        let _ = writeln!(out, "report -> {path}");
                    }
                }
                other => {
                    return Err(Error::Usage(format!(
                        "unknown online mode `{other}` (run|race)"
                    )))
                }
            }
            sinks.finish(&mut out)?;
        }
        Command::Chaos {
            seed,
            n,
            plan,
            trace,
            metrics,
        } => {
            let plan = match &plan {
                Some(path) => load_fault_plan(path)?,
                None => FaultPlan::chaos(seed),
            };
            let inst = uniform(
                &UniformCfg {
                    n,
                    ..Default::default()
                },
                seed,
            );
            let mut sinks = CliSinks::open(trace, metrics)?;
            let _ = writeln!(
                out,
                "chaos: seed {seed}, {} jobs, plan {}",
                inst.len(),
                plan.to_json().to_compact()
            );

            // Solver chaos: a firing `probe_cancel` cripples that attempt's
            // probe budget (forcing a degraded bracket); a firing
            // `force_bigint` pins the attempt to the BigInt limb path. The
            // loop escalates until an un-crippled attempt is exact and both
            // sites have fired at least once (chaos rules fire within their
            // first three hits, so the cap is generous).
            let mut injector = FaultInjector::new(plan.clone());
            let mut attempts = 0u32;
            let search = loop {
                attempts += 1;
                let cancel = injector.fire(FaultSite::ProbeCancel);
                let force = injector.fire(FaultSite::ForceBigint);
                if cancel {
                    sinks.record(&TraceEvent::FaultInjected {
                        site: FaultSite::ProbeCancel.tag(),
                        count: injector.fired(FaultSite::ProbeCancel),
                    });
                }
                if force {
                    sinks.record(&TraceEvent::FaultInjected {
                        site: FaultSite::ForceBigint.tag(),
                        count: injector.fired(FaultSite::ForceBigint),
                    });
                }
                let _limb_guard = force.then(mm_numeric::fastpath::force_bigint);
                let budget = if cancel {
                    Budget::unlimited().with_augmentations(1)
                } else {
                    Budget::unlimited()
                };
                let search = optimal_machines_budgeted_traced(&inst, &budget, sinks.sink());
                let both_fired = injector.fired(FaultSite::ProbeCancel) > 0
                    && injector.fired(FaultSite::ForceBigint) > 0;
                if (search.is_exact() && both_fired) || attempts >= 16 {
                    break search;
                }
            };
            match search.exact {
                Some(m) => {
                    let _ = writeln!(
                        out,
                        "solver: optimum {m} after {attempts} attempt(s) (probe_cancel fired {}, \
                         force_bigint fired {})",
                        injector.fired(FaultSite::ProbeCancel),
                        injector.fired(FaultSite::ForceBigint)
                    );
                }
                None => {
                    let _ = writeln!(
                        out,
                        "solver: degraded bracket [{}, {}] after {attempts} attempt(s)",
                        search.lo, search.hi
                    );
                }
            }

            // Simulator chaos: machine failures drop one machine's work for
            // a step, slowdowns halve its speed; the run must end cleanly
            // (misses are data, not errors).
            let cfg = SimConfig::migratory(n).with_max_steps(1_000_000);
            let mut sim = Simulation::from_instance_with_sink(cfg, Edf, &inst, sinks.sink())
                .with_faults(FaultInjector::new(plan.clone()));
            sim.run_to_completion()
                .map_err(|e| Error::Sim(format!("chaos simulation failed: {e}")))?;
            let failures = sim.injector().fired(FaultSite::MachineFailure);
            let slowdowns = sim.injector().fired(FaultSite::MachineSlowdown);
            let outcome = sim
                .finish()
                .map_err(|e| Error::Sim(format!("chaos simulation failed: {e}")))?;
            let _ = writeln!(
                out,
                "sim: {} steps, {} misses (machine_failure fired {failures}, machine_slowdown \
                 fired {slowdowns})",
                outcome.steps,
                outcome.misses.len()
            );

            // Adversary chaos: an aborted round ends the construction cleanly
            // at the depth reached.
            let was_aborted = |res: &GapResult| {
                matches!(&res.stopped,
                    Some(GapStop::Degenerate(reason)) if *reason == "round aborted by fault plan")
            };
            let mut res = MigrationGapAdversary::with_sink(EdfFirstFit::new(), 16, sinks.sink())
                .with_faults(FaultInjector::new(plan.clone()))
                .run(4)
                .map_err(|e| Error::Sim(format!("chaos adversary failed: {e}")))?;
            if !was_aborted(&res) {
                // The chaos rule's firing hit can sit deeper than this
                // construction goes; fall back to a fire-once rule so the
                // site is always exercised.
                res = MigrationGapAdversary::with_sink(EdfFirstFit::new(), 16, sinks.sink())
                    .with_faults(FaultInjector::new(FaultPlan::once(
                        FaultSite::AdversaryAbort,
                        1,
                    )))
                    .run(4)
                    .map_err(|e| Error::Sim(format!("chaos adversary failed: {e}")))?;
            }
            let aborts = u64::from(was_aborted(&res));
            let _ = writeln!(
                out,
                "adversary: {} jobs released, adversary_abort fired {aborts}",
                res.jobs_released
            );

            // Service chaos: an in-process supervised server absorbs worker
            // panics — poisoned requests retry, workers recycle, and nothing
            // is lost. One worker and a retry cap above the maximum possible
            // fire count keep the totals a pure function of the seed.
            let run_serve = |serve_plan: FaultPlan| -> Result<mm_serve::ServeStats, Error> {
                let cfg = ServeConfig {
                    workers: 1,
                    queue_cap: 8,
                    retry: mm_fault::RetryPolicy::new(1, 4, 20),
                    seed,
                    plan: serve_plan,
                    slowdown_ms: 1,
                    ..ServeConfig::default()
                };
                let service = Service::start(cfg, DynSink::new(Box::new(NoopSink)))
                    .map_err(|e| Error::Sim(format!("chaos serve failed: {e}")))?;
                let (tx, rx) = crossbeam::channel::unbounded();
                let requests = mm_serve::mixed_requests(seed, 8, None);
                for req in &requests {
                    service.submit_line(&req.to_line(), &tx);
                }
                for _ in 0..requests.len() {
                    rx.recv_timeout(std::time::Duration::from_secs(60))
                        .map_err(|_| Error::Sim("chaos serve lost a response".into()))?;
                }
                Ok(service.join())
            };
            let mut stats = run_serve(plan.clone())?;
            if stats.panics == 0 {
                // Defensive fallback, mirroring the adversary segment: if the
                // plan's worker_panic rule never fires within this workload,
                // exercise the site with a fire-once rule.
                stats = run_serve(FaultPlan::once(FaultSite::WorkerPanic, 1))?;
            }
            let panics = stats.panics;
            if !stats.invariant_holds() {
                return Err(Error::Verification(format!(
                    "chaos serve invariant violated: {stats:?}"
                )));
            }
            let _ = writeln!(
                out,
                "serve: {} requests, {} responses (worker_panic fired {panics}, workers \
                 recycled {}, retried {})",
                stats.admitted, stats.responses, stats.restarts, stats.retried
            );

            // Cluster chaos: a coordinator over three in-process backends
            // loses one mid-burst (`backend_drop`); its in-flight units are
            // resumed on the survivors and nothing is lost. The window spans
            // the whole workload, so every drop/resume decision lands in the
            // initial dispatch burst and the outcome is a pure function of
            // the seed.
            let run_cluster =
                |cluster_plan: FaultPlan| -> Result<mm_cluster::ClusterReport, Error> {
                    let pool = spawn_bench_pool(3, 64)?;
                    let cfg = ClusterConfig {
                        backends: pool.iter().map(|b| b.addr.clone()).collect(),
                        balance: BalancePolicy::SeededHash { seed },
                        seed,
                        window: 8,
                        plan: cluster_plan,
                        ..ClusterConfig::default()
                    };
                    let coordinator = Coordinator::connect(cfg, NoopSink)
                        .map_err(|e| Error::Io(format!("chaos cluster connect: {e}")))?;
                    let report = coordinator
                        .run(scatter_units(8), &mut |_, _| {})
                        .map_err(|e| Error::Sim(format!("chaos cluster run: {e}")))?;
                    teardown_bench_pool(pool)?;
                    Ok(report)
                };
            let mut cluster_report = run_cluster(plan.clone())?;
            if cluster_report.counters.backend_drops == 0 {
                // Same fallback as the adversary and serve segments: the
                // chaos rule can sit past this workload's dispatch count.
                cluster_report = run_cluster(FaultPlan::once(FaultSite::BackendDrop, 1))?;
            }
            let drops = cluster_report.counters.backend_drops;
            if drops > 0 {
                sinks.record(&TraceEvent::FaultInjected {
                    site: FaultSite::BackendDrop.tag(),
                    count: drops,
                });
            }
            if cluster_report.counters.lost > 0 {
                return Err(Error::Verification(format!(
                    "chaos cluster lost {} response(s)",
                    cluster_report.counters.lost
                )));
            }
            let _ = writeln!(
                out,
                "cluster: {} units, {} responses (backend_drop fired {drops}, {} unit(s) \
                 resumed, {} backend(s) quarantined)",
                cluster_report.counters.units,
                cluster_report.counters.responses,
                cluster_report.counters.shard_resumes,
                cluster_report.counters.quarantines
            );

            // Churn chaos: the same coordinator under a seeded membership
            // schedule (`backend_churn`): a spare joins mid-burst, one
            // backend drains gracefully (live shards migrate off it), one
            // flaps and recovers. Event counters tick at the deterministic
            // firing boundary, so the printed numbers are a pure function of
            // the seed + plan even though the migrations and revives
            // themselves race the workload.
            let run_churn = |churn_plan: FaultPlan| -> Result<mm_cluster::ClusterReport, Error> {
                let pool = spawn_bench_pool(4, 64)?;
                let cfg = ClusterConfig {
                    backends: pool.iter().take(3).map(|b| b.addr.clone()).collect(),
                    spares: vec![pool[3].addr.clone()],
                    balance: BalancePolicy::RoundRobin,
                    seed,
                    window: 8,
                    plan: churn_plan,
                    churn: Some(mm_cluster::ChurnPlan::rolling(2, 1)),
                    ..ClusterConfig::default()
                };
                let coordinator = Coordinator::connect(cfg, NoopSink)
                    .map_err(|e| Error::Io(format!("chaos churn connect: {e}")))?;
                let report = coordinator
                    .run(scatter_units(8), &mut |_, _| {})
                    .map_err(|e| Error::Sim(format!("chaos churn run: {e}")))?;
                teardown_bench_pool(pool)?;
                Ok(report)
            };
            let mut churn_report = run_churn(plan.clone())?;
            if churn_report.counters.churn_events == 0 {
                // Same fallback as the other segments: the chaos rule can sit
                // past this workload's dispatch count.
                churn_report = run_churn(FaultPlan::once(FaultSite::BackendChurn, 1))?;
            }
            let churns = churn_report.counters.churn_events;
            if churns > 0 {
                sinks.record(&TraceEvent::FaultInjected {
                    site: FaultSite::BackendChurn.tag(),
                    count: churns,
                });
            }
            if churn_report.counters.lost > 0 {
                return Err(Error::Verification(format!(
                    "chaos churn lost {} response(s)",
                    churn_report.counters.lost
                )));
            }
            let _ = writeln!(
                out,
                "churn: {} units, {} responses (backend_churn fired {churns}, {} join(s), {} \
                 drain(s), {} flap(s))",
                churn_report.counters.units,
                churn_report.counters.responses,
                churn_report.counters.joins,
                churn_report.counters.drains,
                churn_report.counters.flaps
            );

            // Byzantine chaos: the ninth site. A three-backend pool answers
            // with proofs (`verify: all`); one backend's response encoder
            // carries a fire-once `answer_corruption` rule, so it lies
            // exactly once. The coordinator refutes the lie from its own
            // attached proof, quarantines the liar, and re-asks the unit on
            // the survivors. A single planted lie (rather than the plan's
            // repeating rule) keeps every printed counter a pure function of
            // the seed even while quarantine revival races the workload.
            let run_byzantine = || -> Result<(mm_cluster::ClusterReport, u64), Error> {
                let mut plans = vec![FaultPlan::none(); 3];
                plans[2] = FaultPlan::once(FaultSite::AnswerCorruption, 1);
                let pool = spawn_bench_pool_plans(&plans, 64)?;
                let cfg = ClusterConfig {
                    backends: pool.iter().map(|b| b.addr.clone()).collect(),
                    balance: BalancePolicy::RoundRobin,
                    seed,
                    window: 8,
                    verify: mm_cluster::VerifyPolicy::All,
                    ..ClusterConfig::default()
                };
                let coordinator = Coordinator::connect(cfg, NoopSink)
                    .map_err(|e| Error::Io(format!("chaos byzantine connect: {e}")))?;
                let report = coordinator
                    .run(scatter_units(8), &mut |_, _| {})
                    .map_err(|e| Error::Sim(format!("chaos byzantine run: {e}")))?;
                let lies: u64 = pool.iter().map(|b| b.service.stats().corrupted).sum();
                teardown_bench_pool(pool)?;
                Ok((report, lies))
            };
            let (byz_report, lies) = run_byzantine()?;
            if lies > 0 {
                sinks.record(&TraceEvent::FaultInjected {
                    site: FaultSite::AnswerCorruption.tag(),
                    count: lies,
                });
            }
            if byz_report.counters.lost > 0 {
                return Err(Error::Verification(format!(
                    "chaos byzantine lost {} response(s)",
                    byz_report.counters.lost
                )));
            }
            let byz_verify = byz_report.counters.verify.clone().unwrap_or_default();
            if byz_verify.refuted != lies {
                return Err(Error::Verification(format!(
                    "chaos byzantine: {} lie(s) injected but {} refuted",
                    lies, byz_verify.refuted
                )));
            }
            let _ = writeln!(
                out,
                "byzantine: {} units, {} responses (answer_corruption fired {lies}, {} \
                 refuted, {} verified, {} re-ask(s), {} backend(s) quarantined)",
                byz_report.counters.units,
                byz_report.counters.responses,
                byz_verify.refuted,
                byz_verify.verified,
                byz_verify.reasks,
                byz_report.counters.quarantines
            );

            // Online chaos: not a fault site — a determinism probe. The
            // portfolio race runs twice under the same seed; if faults,
            // scheduling, or the portfolio itself leaked any nondeterminism
            // into the streaming engine, the rendered tables would diverge.
            let race_cfg = mm_online::RaceConfig {
                seed,
                n: 16,
                k: 3,
                members: mm_online::Member::ALL.to_vec(),
            };
            let race_a = mm_online::race(race_cfg.clone(), &mut sinks.sink())
                .map_err(|e| Error::Sim(format!("chaos online race failed: {e}")))?;
            let race_b = mm_online::race(race_cfg, &mut NoopSink)
                .map_err(|e| Error::Sim(format!("chaos online race rerun failed: {e}")))?;
            if race_a.render() != race_b.render()
                || race_a.to_json().to_compact() != race_b.to_json().to_compact()
            {
                return Err(Error::Verification(
                    "chaos online race is not byte-identical across same-seed reruns".into(),
                ));
            }
            let _ = writeln!(
                out,
                "online: {} race cell(s) byte-identical across same-seed reruns",
                race_a.rows.len()
            );

            let fired = [
                (
                    FaultSite::ProbeCancel,
                    injector.fired(FaultSite::ProbeCancel),
                ),
                (
                    FaultSite::ForceBigint,
                    injector.fired(FaultSite::ForceBigint),
                ),
                (FaultSite::MachineFailure, failures),
                (FaultSite::MachineSlowdown, slowdowns),
                (FaultSite::AdversaryAbort, aborts),
                (FaultSite::WorkerPanic, panics),
                (FaultSite::BackendDrop, drops),
                (FaultSite::BackendChurn, churns),
                (FaultSite::AnswerCorruption, lies),
            ];
            // The fired table and `FaultSite::ALL` must stay in lockstep: a
            // tenth site that never gets a chaos segment should fail loudly
            // here, not silently report success.
            let covered: std::collections::HashSet<&str> =
                fired.iter().map(|(site, _)| site.tag()).collect();
            if let Some(missing) = FaultSite::ALL.iter().find(|s| !covered.contains(s.tag())) {
                return Err(Error::Internal(format!(
                    "fault site `{missing}` has no chaos segment"
                )));
            }
            let silent: Vec<&str> = fired
                .iter()
                .filter(|(_, n)| *n == 0)
                .map(|(site, _)| site.tag())
                .collect();
            if silent.is_empty() {
                let _ = writeln!(
                    out,
                    "all {} fault sites exercised; no panics escaped",
                    FaultSite::ALL.len()
                );
            } else {
                let _ = writeln!(out, "warning: sites not exercised: {}", silent.join(", "));
            }
            sinks.finish(&mut out)?;
        }
        Command::Bench {
            quick,
            serve,
            cluster,
            obs,
            large,
            churn,
            verify,
            online,
            out: path,
            check,
        } => {
            if online {
                online_bench(quick, &path, check.as_deref(), &mut out)?;
                return Ok(out);
            }
            if verify {
                verify_bench(quick, &path, check.as_deref(), &mut out)?;
                return Ok(out);
            }
            if churn {
                churn_bench(quick, &path, check.as_deref(), &mut out)?;
                return Ok(out);
            }
            if large {
                large_bench(quick, &path, check.as_deref(), &mut out)?;
                return Ok(out);
            }
            if obs {
                obs_bench(quick, &path, check.as_deref(), &mut out)?;
                return Ok(out);
            }
            if cluster {
                cluster_bench(quick, &path, check.as_deref(), &mut out)?;
                return Ok(out);
            }
            if serve {
                serve_bench(quick, &path, check.as_deref(), &mut out)?;
                return Ok(out);
            }
            let doc = mm_bench::baseline::run(quick);
            if let Some(workloads) = doc.get("workloads").and_then(mm_json::Json::as_arr) {
                for w in workloads {
                    let name = w.get("name").and_then(mm_json::Json::as_str).unwrap_or("?");
                    let speedup = w
                        .get("speedup")
                        .and_then(mm_json::Json::as_f64)
                        .unwrap_or(0.0);
                    let m = w
                        .get("optimal_machines")
                        .and_then(mm_json::Json::as_i64)
                        .unwrap_or(-1);
                    let _ = writeln!(out, "{name}: m = {m}, speedup {speedup:.2}x");
                }
            }
            if let Some(total) = doc
                .get("totals")
                .and_then(|t| t.get("speedup"))
                .and_then(mm_json::Json::as_f64)
            {
                let _ = writeln!(out, "total probe-workload speedup: {total:.2}x");
            }
            std::fs::write(&path, doc.to_pretty())
                .map_err(|e| Error::Io(format!("cannot write {path}: {e}")))?;
            let _ = writeln!(out, "baseline -> {path}");
            if let Some(check_path) = check {
                let committed = std::fs::read_to_string(&check_path)
                    .map_err(|e| Error::Io(format!("cannot read baseline {check_path}: {e}")))?;
                let committed = mm_json::parse(&committed)
                    .map_err(|e| Error::Io(format!("cannot parse baseline {check_path}: {e}")))?;
                match mm_bench::baseline::check_against(&doc, &committed) {
                    Ok(()) => {
                        let _ = writeln!(out, "counters within committed baseline {check_path}");
                    }
                    Err(problems) => {
                        return Err(Error::Verification(format!(
                            "bench counter regression vs {check_path}:\n  {}",
                            problems.join("\n  ")
                        )));
                    }
                }
            }
        }
        Command::CertCheck {
            seed,
            cases,
            pool,
            corrupt,
            out: report_path,
        } => {
            let report = if pool {
                certcheck_pool(seed, cases, corrupt)?
            } else {
                mm_bench::crosscheck::run(seed, cases).map_err(Error::Verification)?
            };
            if let Some(p) = report_path {
                std::fs::write(&p, &report)
                    .map_err(|e| Error::Io(format!("cannot write {p}: {e}")))?;
                let _ = writeln!(out, "certcheck report -> {p}");
            } else {
                out.push_str(&report);
            }
        }
        Command::Serve {
            addr,
            workers,
            queue_cap,
            drain_ms,
            seed,
            retry_attempts,
            chaos,
            plan,
            journal,
            deadline_ms,
            port_file,
            trace,
            metrics,
        } => {
            let fault_plan = match (&plan, chaos) {
                (Some(path), _) => load_fault_plan(path)?,
                (None, true) => FaultPlan::chaos(seed),
                (None, false) => FaultPlan::none(),
            };
            let retry = mm_fault::RetryPolicy::new(25, 1_000, retry_attempts);
            let cfg = ServeConfig {
                workers,
                queue_cap,
                drain_ms,
                seed,
                retry,
                plan: fault_plan,
                default_deadline_ms: deadline_ms,
                journal: journal.as_ref().map(std::path::PathBuf::from),
                ..ServeConfig::default()
            };
            // The sink pair is shared with the worker threads; the local
            // clone extracts the files once the server has stopped.
            let jsonl = match &trace {
                Some(path) => {
                    let file = std::fs::File::create(path)
                        .map_err(|e| Error::Io(format!("cannot create {path}: {e}")))?;
                    Some(JsonlSink::new(BufWriter::new(file)))
                }
                None => None,
            };
            let shared = SharedSink::new(TeeSink(jsonl, metrics.is_some().then(MetricsSink::new)));
            let sink: DynSink = DynSink::new(Box::new(shared.clone()));
            let service = Arc::new(
                Service::start(cfg, sink)
                    .map_err(|e| Error::Sim(format!("cannot start server: {e}")))?,
            );
            let (listener, bound) = mm_serve::tcp::bind(&addr)
                .map_err(|e| Error::Io(format!("cannot bind {addr}: {e}")))?;
            if let Some(path) = &port_file {
                std::fs::write(path, &bound)
                    .map_err(|e| Error::Io(format!("cannot write port file {path}: {e}")))?;
            }
            eprintln!("machmin serve: listening on {bound}");
            mm_serve::tcp::serve(listener, Arc::clone(&service))
                .map_err(|e| Error::Io(format!("accept loop failed: {e}")))?;
            service.wait_stopped();
            let stats = service.stats();
            let _ = writeln!(out, "listened on {bound}");
            let _ = writeln!(
                out,
                "requests: received {}, admitted {}, shed {}, rejected {}",
                stats.received, stats.admitted, stats.shed, stats.rejected
            );
            let _ = writeln!(
                out,
                "responses: {} (retried {}, quarantined {}, drain-degraded {})",
                stats.responses, stats.retried, stats.quarantined, stats.drain_degraded
            );
            let _ = writeln!(
                out,
                "workers: {} panic(s), {} restart(s)",
                stats.panics, stats.restarts
            );
            if journal.is_some() {
                let _ = writeln!(
                    out,
                    "journal: replayed {} acked response(s) on startup",
                    stats.replayed_acks
                );
            }
            if let Some(sink) = shared.with(|tee| tee.0.take()) {
                let path = trace.as_deref().unwrap_or("?");
                let events = sink.written();
                sink.finish()
                    .map_err(|e| Error::Io(format!("cannot write trace {path}: {e}")))?;
                let _ = writeln!(out, "trace: {events} events -> {path}");
            }
            if let Some(sink) = shared.with(|tee| tee.1.take()) {
                let path = metrics.as_deref().unwrap_or("?");
                std::fs::write(path, sink.metrics.to_json().to_pretty())
                    .map_err(|e| Error::Io(format!("cannot write metrics {path}: {e}")))?;
                let _ = writeln!(out, "metrics -> {path}");
            }
            if !stats.invariant_holds() {
                return Err(Error::Verification(format!(
                    "served-response invariant violated: admitted {} != responses {}",
                    stats.admitted, stats.responses
                )));
            }
            let _ = writeln!(
                out,
                "invariant requests_admitted == responses_sent: ok ({} == {})",
                stats.admitted, stats.responses
            );
        }
        Command::Load {
            addr,
            n,
            seed,
            paced,
            window,
            deadline_ms,
            out: out_path,
            hist,
            shutdown,
        } => {
            let report = mm_serve::run_load(
                &addr,
                &LoadConfig {
                    n,
                    seed,
                    paced,
                    window,
                    deadline_ms,
                    shutdown,
                },
            )
            .map_err(|e| Error::Io(format!("load run against {addr} failed: {e}")))?;
            if let Some(path) = &out_path {
                let mut text = report.transcript.join("\n");
                if !text.is_empty() {
                    text.push('\n');
                }
                std::fs::write(path, text)
                    .map_err(|e| Error::Io(format!("cannot write {path}: {e}")))?;
                let _ = writeln!(
                    out,
                    "transcript ({} lines) -> {path}",
                    report.transcript.len()
                );
            }
            let _ = writeln!(
                out,
                "sent: {}, lost responses: {}, retried: {}",
                report.sent, report.lost, report.retried
            );
            if report.migrated_served > 0 {
                let _ = writeln!(
                    out,
                    "migrated-answered: {} (requests this backend served for a draining or \
                     overloaded peer)",
                    report.migrated_served
                );
            }
            for (status, count) in &report.by_status {
                let _ = writeln!(out, "  {status}: {count}");
            }
            let _ = writeln!(
                out,
                "latency: p50 {:.2} ms, p99 {:.2} ms, p999 {:.2} ms",
                report.p50_ms, report.p99_ms, report.p999_ms
            );
            if let Some(path) = &hist {
                std::fs::write(path, report.hist.to_json().to_pretty())
                    .map_err(|e| Error::Io(format!("cannot write {path}: {e}")))?;
                let _ = writeln!(
                    out,
                    "latency histogram ({} observation(s)) -> {path}",
                    report.hist.count()
                );
            }
            if report.lost > 0 {
                return Err(Error::Verification(format!(
                    "{} request(s) never received a response",
                    report.lost
                )));
            }
        }
        Command::Cluster {
            workload,
            path,
            backends,
            balance,
            seed,
            window,
            hedge_every,
            hedge_p99,
            hedge_floor_ms,
            chaos,
            plan,
            churn,
            spares,
            migration_budget,
            verify,
            deadline_ms,
            policies,
            k,
            machines,
            checkpoint,
            resume,
            families,
            seeds,
            n,
            members,
            out: out_path,
            trace,
            metrics,
        } => {
            // `stats` is a plain scrape, not a scatter–gather workload: no
            // coordinator, no balancing, works against a half-dead pool.
            if workload == "stats" {
                let outcome = mm_cluster::cluster_stats(&backends, false);
                let mut overload = mm_cluster::OverloadIndex::new(
                    mm_cluster::OverloadConfig::default(),
                    outcome.backends.len(),
                );
                observe_overload(&mut overload, &outcome);
                out.push_str(&render_top(&outcome, &overload));
                if let Some(path) = &out_path {
                    std::fs::write(path, outcome.to_json().to_pretty())
                        .map_err(|e| Error::Io(format!("cannot write {path}: {e}")))?;
                    let _ = writeln!(out, "stats -> {path}");
                }
                if outcome.reachable == 0 {
                    return Err(Error::Io(format!(
                        "no backend reachable out of {}",
                        outcome.backends.len()
                    )));
                }
                return Ok(out);
            }
            let Some(balance) = BalancePolicy::parse(&balance, seed) else {
                return Err(Error::Usage(format!(
                    "unknown balance policy `{balance}` (round-robin|least-outstanding|hash)"
                )));
            };
            let Some(verify) = mm_cluster::VerifyPolicy::from_tag(&verify) else {
                return Err(Error::Usage(format!(
                    "unknown verify policy `{verify}` (off|spot|all)"
                )));
            };
            let hedge = match (hedge_every, hedge_p99) {
                (Some(nth), _) => HedgeConfig::EveryNth { n: nth },
                (None, Some(pct)) => HedgeConfig::AfterP99 {
                    multiplier_pct: pct,
                    floor_ms: hedge_floor_ms,
                },
                (None, None) => HedgeConfig::Off,
            };
            let plan = match &plan {
                Some(p) => load_fault_plan(p)?,
                None if chaos => FaultPlan::chaos(seed),
                None => FaultPlan::none(),
            };
            let churn = match &churn {
                Some(p) => Some(
                    mm_cluster::ChurnPlan::load(std::path::Path::new(p))
                        .map_err(|e| Error::Io(format!("cannot load churn plan {p}: {e}")))?,
                ),
                None => None,
            };
            let mut sinks = CliSinks::open(trace, metrics)?;
            let cfg = ClusterConfig {
                backends,
                balance,
                seed,
                window,
                hedge,
                plan,
                churn,
                spares,
                migration_budget,
                verify,
                deadline_ms,
                ..ClusterConfig::default()
            };
            // Backend-side refusals surface as categorized errors: a bad
            // request shape (unknown family, non-integer jobs) is a usage
            // problem, a mismatched checkpoint is an io problem, and
            // anything else is the connection itself.
            let cluster_err = |e: std::io::Error| -> Error {
                match e.kind() {
                    std::io::ErrorKind::InvalidInput => Error::Usage(e.to_string()),
                    std::io::ErrorKind::InvalidData => Error::Io(e.to_string()),
                    _ => Error::Io(format!("cluster run failed: {e}")),
                }
            };
            let report = match workload.as_str() {
                "solve" => {
                    let Some(path) = &path else {
                        return Err(Error::Usage(
                            "cluster solve requires an instance file".into(),
                        ));
                    };
                    let inst = load(path)?;
                    let to_int = |r: &Rat| {
                        if r.is_integer() {
                            r.floor().to_i64()
                        } else {
                            None
                        }
                    };
                    let jobs: Vec<(i64, i64, i64)> = inst
                        .jobs()
                        .iter()
                        .map(|j| {
                            Some((
                                to_int(&j.release)?,
                                to_int(&j.deadline)?,
                                to_int(&j.processing)?,
                            ))
                        })
                        .collect::<Option<_>>()
                        .ok_or_else(|| {
                            Error::Validation(format!(
                                "{path}: cluster solve ships integer triples; this instance \
                                 has non-integer (or oversized) job times"
                            ))
                        })?;
                    let outcome = cluster_solve(cfg, sinks.sink(), &jobs).map_err(cluster_err)?;
                    match outcome.exact {
                        Some(m) => {
                            let _ = writeln!(out, "cluster solve: optimum {m} machines");
                        }
                        None => {
                            let _ = writeln!(
                                out,
                                "cluster solve: bracket [{}, {}] ({} probe(s) undecided)",
                                outcome.lo, outcome.hi, outcome.undecided
                            );
                        }
                    }
                    outcome.report
                }
                "sweep" => {
                    let sweep_cfg = SweepConfig {
                        policies: policies
                            .split(',')
                            .map(|s| s.trim().to_string())
                            .filter(|s| !s.is_empty())
                            .collect(),
                        k,
                        machines,
                        checkpoint: checkpoint.map(std::path::PathBuf::from),
                        resume,
                    };
                    let outcome =
                        cluster_sweep(cfg, sinks.sink(), &sweep_cfg).map_err(cluster_err)?;
                    let _ = writeln!(
                        out,
                        "cluster sweep: {} shard(s), {} resumed from checkpoint",
                        outcome.shards.len(),
                        outcome.resumed_from_checkpoint
                    );
                    let _ = writeln!(out, "merged: {}", outcome.merged.to_compact());
                    outcome.report
                }
                "grid" => {
                    let grid_cfg = GridConfig {
                        families: families
                            .split(',')
                            .map(|s| s.trim().to_string())
                            .filter(|s| !s.is_empty())
                            .collect(),
                        seeds,
                        n,
                    };
                    let outcome =
                        cluster_grid(cfg, sinks.sink(), &grid_cfg).map_err(cluster_err)?;
                    let _ = writeln!(
                        out,
                        "cluster grid: {} cell(s) over {} family(ies)",
                        outcome.cells.len(),
                        grid_cfg.families.len()
                    );
                    let _ = writeln!(out, "merged: {}", outcome.merged.to_compact());
                    outcome.report
                }
                "online" => {
                    let member_list = mm_online::Member::parse_list(&members).ok_or_else(|| {
                        Error::Usage(format!(
                            "unknown portfolio member in `{members}` \
                             (loose|laminar|agreeable|cms|imps|all)"
                        ))
                    })?;
                    let online_cfg = mm_cluster::OnlineConfig {
                        members: member_list,
                        families: families
                            .split(',')
                            .map(|s| s.trim().to_string())
                            .filter(|s| !s.is_empty())
                            .collect(),
                        seeds,
                        n,
                    };
                    let outcome = mm_cluster::cluster_online(cfg, sinks.sink(), &online_cfg)
                        .map_err(cluster_err)?;
                    let _ = writeln!(
                        out,
                        "cluster online: {} cell(s) over {} member(s)",
                        outcome.cells.len(),
                        online_cfg.members.len()
                    );
                    let _ = writeln!(out, "merged: {}", outcome.merged.to_compact());
                    // Merge parity: re-run the same cells locally; a pool
                    // that answered every cell must merge identically.
                    if outcome.report.counters.lost == 0 {
                        let reference =
                            mm_cluster::local_online_merge(&online_cfg).map_err(cluster_err)?;
                        if outcome.merged.to_compact() != reference.to_compact() {
                            return Err(Error::Verification(
                                "cluster online merge diverges from the single-node reference"
                                    .into(),
                            ));
                        }
                        let _ = writeln!(out, "merge parity: cluster == single-node reference");
                    }
                    outcome.report
                }
                other => {
                    return Err(Error::Usage(format!(
                        "unknown cluster workload `{other}` (solve|sweep|grid|online|stats)"
                    )))
                }
            };
            let _ = writeln!(out, "counters: {}", report.counters.to_json().to_compact());
            if let Some(v) = &report.counters.verify {
                let _ = writeln!(
                    out,
                    "verify: {} verified, {} refuted, {} unverifiable, {} re-ask(s)",
                    v.verified, v.refuted, v.unverifiable, v.reasks
                );
                for (b, (ok, bad)) in v
                    .per_backend_verified
                    .iter()
                    .zip(&v.per_backend_refuted)
                    .enumerate()
                {
                    let _ = writeln!(out, "  backend {b}: {ok} verified, {bad} refuted");
                }
            }
            if let Some(path) = &out_path {
                let lines = report.transcript(&workload);
                let mut text = lines.join("\n");
                if !text.is_empty() {
                    text.push('\n');
                }
                std::fs::write(path, text)
                    .map_err(|e| Error::Io(format!("cannot write {path}: {e}")))?;
                let _ = writeln!(out, "transcript ({} lines) -> {path}", lines.len());
            }
            let _ = writeln!(
                out,
                "responses: {}, lost responses: {}",
                report.counters.responses, report.counters.lost
            );
            if report.counters.lost > 0 {
                return Err(Error::Verification(format!(
                    "{} unit(s) never received a response",
                    report.counters.lost
                )));
            }
            sinks.finish(&mut out)?;
        }
        Command::Top {
            backends,
            interval_s,
            frames,
        } => {
            let mut overload =
                mm_cluster::OverloadIndex::new(mm_cluster::OverloadConfig::default(), 0);
            if interval_s == 0 {
                let outcome = mm_cluster::cluster_stats(&backends, false);
                observe_overload(&mut overload, &outcome);
                out.push_str(&render_top(&outcome, &overload));
                if outcome.reachable == 0 {
                    return Err(Error::Io(format!(
                        "no backend reachable out of {}",
                        outcome.backends.len()
                    )));
                }
            } else {
                // Refresh mode streams frames straight to stdout — the
                // caller is a terminal, not a script capturing `out`. The
                // overload index persists across frames, so HEAT shows real
                // sustained-window hysteresis, not a per-frame verdict.
                let mut frame = 0u64;
                loop {
                    let outcome = mm_cluster::cluster_stats(&backends, false);
                    observe_overload(&mut overload, &outcome);
                    print!("{}", render_top(&outcome, &overload));
                    println!();
                    frame += 1;
                    if frames > 0 && frame >= frames {
                        out.push_str(&render_top(&outcome, &overload));
                        break;
                    }
                    std::thread::sleep(std::time::Duration::from_secs(interval_s));
                }
            }
        }
        Command::Generate {
            family,
            n,
            seed,
            out: path,
        } => {
            let inst = match family.as_str() {
                "uniform" => uniform(
                    &UniformCfg {
                        n,
                        ..Default::default()
                    },
                    seed,
                ),
                "agreeable" => agreeable(
                    &AgreeableCfg {
                        n,
                        ..Default::default()
                    },
                    seed,
                ),
                "laminar" => laminar(&LaminarCfg::default(), seed),
                "loose" => loose(
                    &UniformCfg {
                        n,
                        ..Default::default()
                    },
                    &Rat::ratio(1, 2),
                    seed,
                ),
                other => return Err(Error::Usage(format!("unknown family `{other}`"))),
            };
            io::save(&inst, &path).map_err(|e| Error::Io(format!("cannot write {path}: {e}")))?;
            let _ = writeln!(out, "wrote {} jobs to {path}", inst.len());
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parse_commands() {
        assert_eq!(parse(&argv("help")).unwrap(), Command::Help);
        assert_eq!(
            parse(&argv("solve a.json")).unwrap(),
            Command::Solve {
                path: "a.json".into(),
                budget: None,
                attempts: 3,
                trace: None,
                metrics: None
            }
        );
        assert_eq!(
            parse(&argv("solve a.json --trace t.jsonl --metrics m.json")).unwrap(),
            Command::Solve {
                path: "a.json".into(),
                budget: None,
                attempts: 3,
                trace: Some("t.jsonl".into()),
                metrics: Some("m.json".into())
            }
        );
        assert_eq!(
            parse(&argv("schedule a.json --policy edf --machines 3")).unwrap(),
            Command::Schedule {
                path: "a.json".into(),
                policy: "edf".into(),
                machines: Some(3),
                trace: None,
                metrics: None
            }
        );
        assert_eq!(
            parse(&argv("schedule a.json --policy llf --trace t.jsonl")).unwrap(),
            Command::Schedule {
                path: "a.json".into(),
                policy: "llf".into(),
                machines: None,
                trace: Some("t.jsonl".into()),
                metrics: None
            }
        );
        assert_eq!(
            parse(&argv("generate uniform --n 10 --seed 7 --out x.json")).unwrap(),
            Command::Generate {
                family: "uniform".into(),
                n: 10,
                seed: 7,
                out: "x.json".into()
            }
        );
        assert_eq!(
            parse(&argv("bench")).unwrap(),
            Command::Bench {
                quick: false,
                serve: false,
                cluster: false,
                obs: false,
                large: false,
                churn: false,
                verify: false,
                online: false,
                out: "BENCH_2.json".into(),
                check: None
            }
        );
        assert_eq!(
            parse(&argv("bench --quick --out b.json --check BENCH_2.json")).unwrap(),
            Command::Bench {
                quick: true,
                serve: false,
                cluster: false,
                obs: false,
                large: false,
                churn: false,
                verify: false,
                online: false,
                out: "b.json".into(),
                check: Some("BENCH_2.json".into())
            }
        );
        assert_eq!(
            parse(&argv("bench --quick --serve")).unwrap(),
            Command::Bench {
                quick: true,
                serve: true,
                cluster: false,
                obs: false,
                large: false,
                churn: false,
                verify: false,
                online: false,
                out: "BENCH_4.json".into(),
                check: None
            }
        );
        assert_eq!(
            parse(&argv("bench --quick --obs")).unwrap(),
            Command::Bench {
                quick: true,
                serve: false,
                cluster: false,
                obs: true,
                large: false,
                churn: false,
                verify: false,
                online: false,
                out: "BENCH_6.json".into(),
                check: None
            }
        );
        assert_eq!(
            parse(&argv("bench --quick --churn")).unwrap(),
            Command::Bench {
                quick: true,
                serve: false,
                cluster: false,
                obs: false,
                large: false,
                churn: true,
                verify: false,
                online: false,
                out: "BENCH_8.json".into(),
                check: None
            }
        );
        assert_eq!(
            parse(&argv("bench --verify")).unwrap(),
            Command::Bench {
                quick: false,
                serve: false,
                cluster: false,
                obs: false,
                large: false,
                churn: false,
                verify: true,
                online: false,
                out: "BENCH_9.json".into(),
                check: None
            }
        );
        assert_eq!(
            parse(&argv("bench --verify --cluster")).unwrap_err().tag(),
            "usage"
        );
        assert_eq!(
            parse(&argv("bench --serve --obs")).unwrap_err().tag(),
            "usage"
        );
        assert_eq!(
            parse(&argv("bench --churn --cluster")).unwrap_err().tag(),
            "usage"
        );
        assert_eq!(
            parse(&argv("top --backends a:1,b:2")).unwrap(),
            Command::Top {
                backends: vec!["a:1".into(), "b:2".into()],
                interval_s: 0,
                frames: 0
            }
        );
        assert_eq!(parse(&argv("top")).unwrap_err().tag(), "usage");
        assert!(parse(&argv("frobnicate")).is_err());
        assert!(parse(&argv("schedule a.json")).is_err());
        assert!(parse(&argv("schedule a.json --policy edf --machines x")).is_err());
        // --trace/--metrics without a value must error, not silently no-op
        let err = parse(&argv("schedule a.json --policy edf --trace")).unwrap_err();
        assert!(
            err.to_string().contains("--trace requires a value"),
            "{err}"
        );
        assert!(parse(&argv("solve a.json --metrics")).is_err());
        // empty argv = help
        assert_eq!(parse(&[]).unwrap(), Command::Help);
    }

    #[test]
    fn parse_budget_adversary_chaos() {
        assert_eq!(
            parse(&argv("solve a.json --budget-augmentations 8 --attempts 2")).unwrap(),
            Command::Solve {
                path: "a.json".into(),
                budget: Some(Budget::unlimited().with_augmentations(8)),
                attempts: 2,
                trace: None,
                metrics: None
            }
        );
        assert_eq!(
            parse(&argv("solve a.json --budget-ms 50 --budget-nodes 1000")).unwrap(),
            Command::Solve {
                path: "a.json".into(),
                budget: Some(
                    Budget::unlimited()
                        .with_probe_ms(50)
                        .with_network_nodes(1000)
                ),
                attempts: 3,
                trace: None,
                metrics: None
            }
        );
        let err = parse(&argv("solve a.json --attempts 0")).unwrap_err();
        assert_eq!(err.tag(), "usage");

        assert_eq!(
            parse(&argv(
                "adversary --policy edf-ff --k 5 --checkpoint c.json --resume"
            ))
            .unwrap(),
            Command::Adversary {
                policy: "edf-ff".into(),
                k: 5,
                machines: 16,
                checkpoint: Some("c.json".into()),
                resume: true,
                export_stream: None,
                trace: None,
                metrics: None
            }
        );
        assert_eq!(
            parse(&argv("adversary --policy edf-ff --k 1"))
                .unwrap_err()
                .tag(),
            "usage"
        );
        assert_eq!(
            parse(&argv("adversary --policy edf-ff --resume"))
                .unwrap_err()
                .tag(),
            "usage"
        );
        assert_eq!(parse(&argv("adversary")).unwrap_err().tag(), "usage");

        assert_eq!(
            parse(&argv("chaos --seed 9 --n 8")).unwrap(),
            Command::Chaos {
                seed: 9,
                n: 8,
                plan: None,
                trace: None,
                metrics: None
            }
        );
        assert_eq!(
            parse(&argv("chaos --plan p.json")).unwrap(),
            Command::Chaos {
                seed: 0,
                n: 16,
                plan: Some("p.json".into()),
                trace: None,
                metrics: None
            }
        );
        assert_eq!(
            parse(&argv("chaos")).unwrap(),
            Command::Chaos {
                seed: 0,
                n: 16,
                plan: None,
                trace: None,
                metrics: None
            }
        );
    }

    #[test]
    fn parse_serve_and_load() {
        assert_eq!(
            parse(&argv(
                "serve --addr 127.0.0.1:7700 --workers 4 --queue-cap 32 --drain-ms 500 \
                 --seed 3 --retry-attempts 9 --chaos --journal j.jsonl --deadline-ms 250 \
                 --port-file p.txt"
            ))
            .unwrap(),
            Command::Serve {
                addr: "127.0.0.1:7700".into(),
                workers: 4,
                queue_cap: 32,
                drain_ms: 500,
                seed: 3,
                retry_attempts: 9,
                chaos: true,
                plan: None,
                journal: Some("j.jsonl".into()),
                deadline_ms: Some(250),
                port_file: Some("p.txt".into()),
                trace: None,
                metrics: None
            }
        );
        assert_eq!(
            parse(&argv("serve")).unwrap(),
            Command::Serve {
                addr: "127.0.0.1:0".into(),
                workers: 2,
                queue_cap: 16,
                drain_ms: 2_000,
                seed: 0,
                retry_attempts: 3,
                chaos: false,
                plan: None,
                journal: None,
                deadline_ms: None,
                port_file: None,
                trace: None,
                metrics: None
            }
        );
        // --chaos and --plan are mutually exclusive.
        assert_eq!(
            parse(&argv("serve --chaos --plan p.json"))
                .unwrap_err()
                .tag(),
            "usage"
        );
        assert_eq!(
            parse(&argv(
                "load --addr 127.0.0.1:7700 --n 50 --seed 2 --paced --window 4 \
                 --out t.jsonl --hist h.json --no-shutdown"
            ))
            .unwrap(),
            Command::Load {
                addr: "127.0.0.1:7700".into(),
                n: 50,
                seed: 2,
                paced: true,
                window: 4,
                deadline_ms: None,
                out: Some("t.jsonl".into()),
                hist: Some("h.json".into()),
                shutdown: false
            }
        );
        // --addr is mandatory for load.
        assert_eq!(parse(&argv("load")).unwrap_err().tag(), "usage");
    }

    #[test]
    fn error_categories_at_the_cli_surface() {
        // Unknown command -> usage (exit 2).
        assert_eq!(parse(&argv("frobnicate")).unwrap_err().exit_code(), 2);
        // Missing file -> io (exit 3).
        let err = execute(Command::Classify {
            path: "/nonexistent-instance.json".into(),
        })
        .unwrap_err();
        assert_eq!(err.tag(), "io");
        assert_eq!(err.exit_code(), 3);
        // Unknown policy -> usage.
        let dir = std::env::temp_dir().join("machmin_cli_errors");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ok.json").to_string_lossy().to_string();
        io::save(&Instance::from_ints([(0, 4, 2)]), &path).unwrap();
        let err = execute(Command::Schedule {
            path: path.clone(),
            policy: "nope".into(),
            machines: None,
            trace: None,
            metrics: None,
        })
        .unwrap_err();
        assert_eq!(err.tag(), "usage");
        // Malformed JSON -> io, with record context, no panic.
        let bad = dir.join("bad.json").to_string_lossy().to_string();
        std::fs::write(
            &bad,
            r#"{"jobs": [{"id": 0, "release": "0", "deadline": "0", "processing": "1"}]}"#,
        )
        .unwrap();
        let err = execute(Command::Classify { path: bad.clone() }).unwrap_err();
        assert_eq!(err.tag(), "io");
        assert!(err.to_string().contains("record 1"), "{err}");
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&bad).ok();
    }

    #[test]
    fn roundtrip_generate_solve_schedule() {
        let dir = std::env::temp_dir().join("machmin_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("inst.json").to_string_lossy().to_string();

        let msg = execute(Command::Generate {
            family: "agreeable".into(),
            n: 12,
            seed: 3,
            out: path.clone(),
        })
        .unwrap();
        assert!(msg.contains("wrote 12 jobs"));

        let msg = execute(Command::Solve {
            path: path.clone(),
            budget: None,
            attempts: 3,
            trace: None,
            metrics: None,
        })
        .unwrap();
        assert!(msg.contains("migratory optimum"));
        assert!(msg.contains("Theorem 1 certificate"));

        let msg = execute(Command::Classify { path: path.clone() }).unwrap();
        assert!(msg.contains("Agreeable") || msg.contains("Both"));

        let msg = execute(Command::Schedule {
            path: path.clone(),
            policy: "edf-ff".into(),
            machines: None,
            trace: None,
            metrics: None,
        })
        .unwrap();
        assert!(msg.contains("feasible: yes"), "{msg}");
        assert!(msg.contains("machines used"));

        let msg = execute(Command::Demigrate { path: path.clone() }).unwrap();
        assert!(msg.contains("non-migratory machines"));

        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn budgeted_solve_escalates_and_degrades() {
        let dir = std::env::temp_dir().join("machmin_cli_budget");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("inst.json").to_string_lossy().to_string();
        execute(Command::Generate {
            family: "uniform".into(),
            n: 14,
            seed: 5,
            out: path.clone(),
        })
        .unwrap();

        // Starved budget, one attempt: a certified bracket, not an error.
        let msg = execute(Command::Solve {
            path: path.clone(),
            budget: Some(Budget::unlimited().with_augmentations(1)),
            attempts: 1,
            trace: None,
            metrics: None,
        })
        .unwrap();
        assert!(msg.contains("degraded: certified bracket"), "{msg}");

        // Enough escalation attempts reach the exact answer; it matches the
        // unbudgeted optimum printed by a plain solve.
        let exact = execute(Command::Solve {
            path: path.clone(),
            budget: None,
            attempts: 3,
            trace: None,
            metrics: None,
        })
        .unwrap();
        let msg = execute(Command::Solve {
            path: path.clone(),
            budget: Some(Budget::unlimited().with_augmentations(1)),
            attempts: 12,
            trace: None,
            metrics: None,
        })
        .unwrap();
        assert!(msg.contains("doubling budget"), "{msg}");
        let line = |s: &str| {
            s.lines()
                .find(|l| l.starts_with("migratory optimum m(J):"))
                .map(|l| {
                    l.split(':')
                        .nth(1)
                        .unwrap()
                        .trim()
                        .split(' ')
                        .next()
                        .unwrap()
                        .to_owned()
                })
        };
        assert_eq!(line(&exact), line(&msg), "exact: {exact}\nbudgeted: {msg}");

        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn adversary_sweep_checkpoints_and_resumes() {
        let dir = std::env::temp_dir().join("machmin_cli_adv");
        std::fs::create_dir_all(&dir).unwrap();
        let ckpt = dir.join("sweep.json").to_string_lossy().to_string();
        let trace_path = dir.join("adv.jsonl").to_string_lossy().to_string();
        std::fs::remove_file(&ckpt).ok();

        let msg = execute(Command::Adversary {
            policy: "edf-ff".into(),
            k: 3,
            machines: 16,
            checkpoint: Some(ckpt.clone()),
            resume: false,
            export_stream: None,
            trace: Some(trace_path.clone()),
            metrics: None,
        })
        .unwrap();
        assert!(msg.contains("k=2:"), "{msg}");
        assert!(msg.contains("k=3:"), "{msg}");
        assert!(msg.contains("sweep complete"), "{msg}");
        let trace = std::fs::read_to_string(&trace_path).unwrap();
        assert!(trace.contains("\"adversary_checkpoint\""), "{trace}");

        // Resuming with a deeper target only runs the missing depths.
        let msg = execute(Command::Adversary {
            policy: "edf-ff".into(),
            k: 4,
            machines: 16,
            checkpoint: Some(ckpt.clone()),
            resume: true,
            export_stream: None,
            trace: None,
            metrics: None,
        })
        .unwrap();
        assert!(msg.contains("resumed"), "{msg}");
        assert!(!msg.contains("k=2:"), "{msg}");
        assert!(!msg.contains("k=3:"), "{msg}");
        assert!(msg.contains("k=4:"), "{msg}");

        // A checkpoint for another policy is refused.
        let err = execute(Command::Adversary {
            policy: "medium-fit".into(),
            k: 3,
            machines: 16,
            checkpoint: Some(ckpt.clone()),
            resume: true,
            export_stream: None,
            trace: None,
            metrics: None,
        })
        .unwrap_err();
        assert_eq!(err.tag(), "usage");

        std::fs::remove_file(&ckpt).ok();
        std::fs::remove_file(&trace_path).ok();
    }

    #[test]
    fn parse_online_commands() {
        assert_eq!(
            parse(&argv(
                "online race --seed 3 --n 12 --k 5 --members loose,cms"
            ))
            .unwrap(),
            Command::Online {
                mode: "race".into(),
                stream: None,
                member: "auto".into(),
                seed: 3,
                n: 12,
                k: 5,
                members: "loose,cms".into(),
                out: None,
                trace: None,
                metrics: None,
            }
        );
        assert_eq!(
            parse(&argv("online run --stream s.jsonl --member agreeable")).unwrap(),
            Command::Online {
                mode: "run".into(),
                stream: Some("s.jsonl".into()),
                member: "agreeable".into(),
                seed: 7,
                n: 40,
                k: 4,
                members: "all".into(),
                out: None,
                trace: None,
                metrics: None,
            }
        );
        assert_eq!(parse(&argv("online")).unwrap_err().tag(), "usage");
        assert_eq!(parse(&argv("online walk")).unwrap_err().tag(), "usage");
        assert_eq!(parse(&argv("online run")).unwrap_err().tag(), "usage");
    }

    #[test]
    fn online_race_reports_every_member_and_holds_bounds() {
        let run = || {
            execute(Command::Online {
                mode: "race".into(),
                stream: None,
                member: "auto".into(),
                seed: 7,
                n: 16,
                k: 3,
                members: "all".into(),
                out: None,
                trace: None,
                metrics: None,
            })
            .unwrap()
        };
        let msg = run();
        for member in ["loose", "laminar", "agreeable", "cms", "imps"] {
            assert!(msg.contains(member), "missing {member} in {msg}");
        }
        for stream in ["stream agreeable", "stream laminar", "stream adversary"] {
            assert!(msg.contains(stream), "missing {stream} in {msg}");
        }
        assert!(msg.contains("bounds hold"), "{msg}");
        assert_eq!(msg, run(), "same-seed race output must be byte-identical");
    }

    #[test]
    fn online_run_replays_an_exported_adversary_stream() {
        let dir = std::env::temp_dir().join("machmin_cli_online");
        std::fs::create_dir_all(&dir).unwrap();
        let stream = dir.join("adv_stream.jsonl").to_string_lossy().to_string();
        std::fs::remove_file(&stream).ok();

        let msg = execute(Command::Adversary {
            policy: "edf-ff".into(),
            k: 3,
            machines: 16,
            checkpoint: None,
            resume: false,
            export_stream: Some(stream.clone()),
            trace: None,
            metrics: None,
        })
        .unwrap();
        assert!(msg.contains("exported"), "{msg}");

        let msg = execute(Command::Online {
            mode: "run".into(),
            stream: Some(stream.clone()),
            member: "cms".into(),
            seed: 7,
            n: 40,
            k: 4,
            members: "all".into(),
            out: None,
            trace: None,
            metrics: None,
        })
        .unwrap();
        assert!(msg.contains("online run: cms"), "{msg}");
        assert!(msg.contains("machines opened"), "{msg}");

        let err = execute(Command::Online {
            mode: "run".into(),
            stream: Some(stream.clone()),
            member: "dance".into(),
            seed: 7,
            n: 40,
            k: 4,
            members: "all".into(),
            out: None,
            trace: None,
            metrics: None,
        })
        .unwrap_err();
        assert_eq!(err.tag(), "usage");

        std::fs::remove_file(&stream).ok();
    }

    #[test]
    fn chaos_exercises_every_site_deterministically() {
        let dir = std::env::temp_dir().join("machmin_cli_chaos");
        std::fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("chaos.jsonl").to_string_lossy().to_string();
        let run = || {
            let msg = execute(Command::Chaos {
                seed: 7,
                n: 12,
                plan: None,
                trace: Some(trace_path.clone()),
                metrics: None,
            })
            .unwrap();
            let trace = std::fs::read_to_string(&trace_path).unwrap();
            (msg, trace)
        };
        let (msg_a, trace_a) = run();
        let (msg_b, trace_b) = run();
        std::fs::remove_file(&trace_path).ok();
        // The success line is derived from `FaultSite::ALL`, and every tag
        // in the registry must show up in the report — a newly added fault
        // site without a chaos segment fails here, not in stale prose.
        let all_exercised = format!("all {} fault sites exercised", FaultSite::ALL.len());
        assert!(msg_a.contains(&all_exercised), "{msg_a}");
        for site in FaultSite::ALL {
            assert!(
                msg_a.contains(site.tag()),
                "report must mention {site}: {msg_a}"
            );
        }
        assert!(msg_a.contains("backend_drop fired"), "{msg_a}");
        assert!(msg_a.contains("backend_churn fired"), "{msg_a}");
        assert!(msg_a.contains("answer_corruption fired"), "{msg_a}");
        assert!(trace_a.contains("\"fault_injected\""), "{trace_a}");
        assert!(trace_a.contains("\"backend_drop\""), "{trace_a}");
        assert!(trace_a.contains("\"backend_churn\""), "{trace_a}");
        assert!(trace_a.contains("\"probe_degraded\""), "{trace_a}");
        // Determinism: same seed, byte-identical report and event stream.
        assert_eq!(msg_a, msg_b);
        assert_eq!(trace_a, trace_b);
    }

    #[test]
    fn schedule_reports_misses_gracefully() {
        let dir = std::env::temp_dir().join("machmin_cli_test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tight.json").to_string_lossy().to_string();
        let inst = Instance::from_ints([(0, 2, 2), (0, 2, 2), (0, 2, 2)]);
        io::save(&inst, &path).unwrap();
        let msg = execute(Command::Schedule {
            path: path.clone(),
            policy: "edf".into(),
            machines: Some(1),
            trace: None,
            metrics: None,
        })
        .unwrap();
        assert!(msg.contains("feasible: NO"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unknown_policy_and_family_error() {
        assert!(execute(Command::Schedule {
            path: "/nonexistent.json".into(),
            policy: "edf".into(),
            machines: None,
            trace: None,
            metrics: None
        })
        .is_err());
        let dir = std::env::temp_dir();
        assert!(execute(Command::Generate {
            family: "nope".into(),
            n: 3,
            seed: 0,
            out: dir.join("x.json").to_string_lossy().to_string()
        })
        .is_err());
    }

    #[test]
    fn schedule_trace_and_metrics_agree_with_verifier() {
        let dir = std::env::temp_dir().join("machmin_cli_test3");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("inst.json").to_string_lossy().to_string();
        let trace_path = dir.join("t.jsonl").to_string_lossy().to_string();
        let metrics_path = dir.join("m.json").to_string_lossy().to_string();

        execute(Command::Generate {
            family: "uniform".into(),
            n: 10,
            seed: 11,
            out: path.clone(),
        })
        .unwrap();

        let msg = execute(Command::Schedule {
            path: path.clone(),
            policy: "edf".into(),
            machines: None,
            trace: Some(trace_path.clone()),
            metrics: Some(metrics_path.clone()),
        })
        .unwrap();
        assert!(
            msg.contains("trace counters agree with verified schedule"),
            "{msg}"
        );
        assert!(msg.contains("trace:"), "{msg}");
        assert!(msg.contains("metrics ->"), "{msg}");

        // Every trace line is a standalone JSON object tagged with "event".
        let trace = std::fs::read_to_string(&trace_path).unwrap();
        let mut events = 0usize;
        for line in trace.lines() {
            let v = mm_json::parse(line).unwrap();
            assert!(
                v.get("event").and_then(mm_json::Json::as_str).is_some(),
                "{line}"
            );
            events += 1;
        }
        assert!(events > 0, "trace should not be empty");

        // The metrics file parses and mirrors the trace's released-job count.
        let metrics = mm_json::parse(&std::fs::read_to_string(&metrics_path).unwrap()).unwrap();
        let released = metrics
            .get("schedule")
            .and_then(|s| s.get("jobs_released"))
            .and_then(mm_json::Json::as_i64)
            .unwrap();
        assert_eq!(released, 10);

        // Solve with tracing emits feasibility probes into the same formats.
        let msg = execute(Command::Solve {
            path: path.clone(),
            budget: None,
            attempts: 3,
            trace: Some(trace_path.clone()),
            metrics: Some(metrics_path.clone()),
        })
        .unwrap();
        assert!(msg.contains("migratory optimum"), "{msg}");
        let trace = std::fs::read_to_string(&trace_path).unwrap();
        assert!(trace.contains("\"feasibility_probe\""), "{trace}");

        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&trace_path).ok();
        std::fs::remove_file(&metrics_path).ok();
    }

    #[test]
    fn bench_writes_baseline_and_checks_itself() {
        let dir = std::env::temp_dir().join("machmin_cli_bench");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bench.json").to_string_lossy().to_string();
        let msg = execute(Command::Bench {
            quick: true,
            serve: false,
            cluster: false,
            obs: false,
            large: false,
            churn: false,
            verify: false,
            online: false,
            out: path.clone(),
            check: None,
        })
        .unwrap();
        assert!(msg.contains("baseline ->"), "{msg}");
        // A run is a valid baseline for itself: counters are deterministic.
        let msg = execute(Command::Bench {
            quick: true,
            serve: false,
            cluster: false,
            obs: false,
            large: false,
            churn: false,
            verify: false,
            online: false,
            out: path.clone(),
            check: Some(path.clone()),
        })
        .unwrap();
        assert!(msg.contains("counters within committed baseline"), "{msg}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bench_serve_writes_baseline_and_checks_itself() {
        let dir = std::env::temp_dir().join("machmin_cli_bench_serve");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bench4.json").to_string_lossy().to_string();
        let msg = execute(Command::Bench {
            quick: true,
            serve: true,
            cluster: false,
            obs: false,
            large: false,
            churn: false,
            verify: false,
            online: false,
            out: path.clone(),
            check: None,
        })
        .unwrap();
        assert!(msg.contains("serve bench:"), "{msg}");
        assert!(msg.contains("baseline ->"), "{msg}");
        let doc = mm_json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(
            doc.get("schema").and_then(mm_json::Json::as_str),
            Some("machmin-serve-bench-v1")
        );
        assert_eq!(doc.get("lost").and_then(mm_json::Json::as_i64), Some(0));
        // Deterministic counters gate against themselves.
        let msg = execute(Command::Bench {
            quick: true,
            serve: true,
            cluster: false,
            obs: false,
            large: false,
            churn: false,
            verify: false,
            online: false,
            out: path.clone(),
            check: Some(path.clone()),
        })
        .unwrap();
        assert!(msg.contains("counters match committed baseline"), "{msg}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn serve_and_load_round_trip_with_journal() {
        let dir = std::env::temp_dir().join("machmin_cli_serve");
        std::fs::create_dir_all(&dir).unwrap();
        let journal = dir.join("journal.jsonl").to_string_lossy().to_string();
        let port_file = dir.join("port.txt").to_string_lossy().to_string();
        let transcript = dir.join("transcript.jsonl").to_string_lossy().to_string();
        let metrics_path = dir.join("serve-metrics.json").to_string_lossy().to_string();
        std::fs::remove_file(&journal).ok();
        std::fs::remove_file(&port_file).ok();

        let server = {
            let (journal, port_file, metrics_path) =
                (journal.clone(), port_file.clone(), metrics_path.clone());
            std::thread::spawn(move || {
                execute(Command::Serve {
                    addr: "127.0.0.1:0".into(),
                    workers: 2,
                    queue_cap: 16,
                    drain_ms: 2_000,
                    seed: 1,
                    retry_attempts: 3,
                    chaos: false,
                    plan: None,
                    journal: Some(journal),
                    deadline_ms: None,
                    port_file: Some(port_file),
                    trace: None,
                    metrics: Some(metrics_path),
                })
            })
        };
        // Wait for the server to publish its bound address.
        let addr = {
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
            loop {
                if let Ok(addr) = std::fs::read_to_string(&port_file) {
                    if !addr.is_empty() {
                        break addr;
                    }
                }
                assert!(std::time::Instant::now() < deadline, "server never bound");
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
        };
        let msg = execute(Command::Load {
            addr,
            n: 30,
            seed: 4,
            paced: false,
            window: 8,
            deadline_ms: None,
            out: Some(transcript.clone()),
            hist: None,
            shutdown: true,
        })
        .unwrap();
        assert!(msg.contains("lost responses: 0"), "{msg}");
        assert!(msg.contains("transcript (30 lines)"), "{msg}");

        let server_msg = server.join().unwrap().unwrap();
        assert!(
            server_msg.contains("invariant requests_admitted == responses_sent: ok"),
            "{server_msg}"
        );
        assert!(server_msg.contains("journal: replayed 0"), "{server_msg}");
        // Every admitted request and every released response hit the journal.
        let journal_text = std::fs::read_to_string(&journal).unwrap();
        assert_eq!(
            journal_text.matches("\"rec\":\"admitted\"").count(),
            30,
            "{journal_text}"
        );
        assert_eq!(journal_text.matches("\"rec\":\"acked\"").count(), 30);
        let metrics = mm_json::parse(&std::fs::read_to_string(&metrics_path).unwrap()).unwrap();
        let admitted = metrics
            .get("serve")
            .and_then(|s| s.get("requests_admitted"))
            .and_then(mm_json::Json::as_i64);
        assert_eq!(admitted, Some(30), "{metrics:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_plan_and_checkpoint_stay_categorized_io_errors() {
        let dir = std::env::temp_dir().join("machmin_cli_truncate");
        std::fs::create_dir_all(&dir).unwrap();

        // A fault plan truncated at every byte offset: exit code 3 with
        // line/column context, never a panic (exit 70).
        let plan_text = FaultPlan::chaos(3).to_json().to_pretty();
        let plan_path = dir.join("plan.json").to_string_lossy().to_string();
        // Cuts inside the trimmed document; a cut that only strips trailing
        // whitespace still parses, which is correct behavior.
        for cut in 0..plan_text.trim_end().len() {
            std::fs::write(&plan_path, &plan_text[..cut]).unwrap();
            let err = execute(Command::Chaos {
                seed: 3,
                n: 4,
                plan: Some(plan_path.clone()),
                trace: None,
                metrics: None,
            })
            .unwrap_err();
            assert_eq!(err.tag(), "io", "cut {cut}: {err}");
            assert_eq!(err.exit_code(), 3, "cut {cut}");
            assert!(err.to_string().contains("line "), "cut {cut}: {err}");
        }

        // A sweep checkpoint truncated at every byte offset: `--resume`
        // reports a categorized io error, never a panic.
        let ckpt = dir.join("sweep.json").to_string_lossy().to_string();
        execute(Command::Adversary {
            policy: "edf-ff".into(),
            k: 2,
            machines: 8,
            checkpoint: Some(ckpt.clone()),
            resume: false,
            export_stream: None,
            trace: None,
            metrics: None,
        })
        .unwrap();
        let ckpt_text = std::fs::read_to_string(&ckpt).unwrap();
        for cut in 0..ckpt_text.trim_end().len() {
            std::fs::write(&ckpt, &ckpt_text[..cut]).unwrap();
            let err = execute(Command::Adversary {
                policy: "edf-ff".into(),
                k: 2,
                machines: 8,
                checkpoint: Some(ckpt.clone()),
                resume: true,
                export_stream: None,
                trace: None,
                metrics: None,
            })
            .unwrap_err();
            assert_eq!(err.tag(), "io", "cut {cut}: {err}");
            assert!(
                err.to_string().contains("cannot resume from"),
                "cut {cut}: {err}"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn help_mentions_all_commands() {
        let h = help_text();
        for cmd in [
            "solve",
            "classify",
            "schedule",
            "demigrate",
            "generate",
            "adversary",
            "chaos",
            "serve",
            "load",
            "cluster",
            "top",
            "bench",
        ] {
            assert!(h.contains(cmd), "help is missing `{cmd}`");
        }
        assert!(h.contains("worker_panic"), "chaos site list is stale");
        assert!(h.contains("backend_drop"), "chaos site list is stale");
        assert!(h.contains("exit codes"));
    }

    #[test]
    fn parse_cluster_commands() {
        assert_eq!(
            parse(&argv(
                "cluster grid --backends a:1,b:2 --balance hash --seed 9 --window 32 \
                 --hedge-every 5 --churn churn.json --spares d:4,e:5 --migration-budget 8 \
                 --families uniform,loose --seeds 2 --n 8 --out t.jsonl"
            ))
            .unwrap(),
            Command::Cluster {
                workload: "grid".into(),
                path: None,
                backends: vec!["a:1".into(), "b:2".into()],
                balance: "hash".into(),
                seed: 9,
                window: 32,
                hedge_every: Some(5),
                hedge_p99: None,
                hedge_floor_ms: 10,
                chaos: false,
                plan: None,
                churn: Some("churn.json".into()),
                spares: vec!["d:4".into(), "e:5".into()],
                migration_budget: 8,
                verify: "off".into(),
                deadline_ms: None,
                policies: "edf-ff".into(),
                k: 4,
                machines: 16,
                checkpoint: None,
                resume: false,
                families: "uniform,loose".into(),
                seeds: 2,
                n: 8,
                members: "all".into(),
                out: Some("t.jsonl".into()),
                trace: None,
                metrics: None,
            }
        );
        assert_eq!(
            parse(&argv(
                "cluster sweep --backends a:1 --policies edf-ff,medium-fit --k 3 \
                 --machines 8 --checkpoint c.json --resume"
            ))
            .unwrap(),
            Command::Cluster {
                workload: "sweep".into(),
                path: None,
                backends: vec!["a:1".into()],
                balance: "round-robin".into(),
                seed: 0,
                window: 8,
                hedge_every: None,
                hedge_p99: None,
                hedge_floor_ms: 10,
                chaos: false,
                plan: None,
                churn: None,
                spares: vec![],
                migration_budget: 64,
                verify: "off".into(),
                deadline_ms: None,
                policies: "edf-ff,medium-fit".into(),
                k: 3,
                machines: 8,
                checkpoint: Some("c.json".into()),
                resume: true,
                families: "uniform,agreeable,loose".into(),
                seeds: 3,
                n: 12,
                members: "all".into(),
                out: None,
                trace: None,
                metrics: None,
            }
        );
        // solve takes the instance file positionally.
        match parse(&argv("cluster solve inst.json --backends a:1")).unwrap() {
            Command::Cluster { workload, path, .. } => {
                assert_eq!(workload, "solve");
                assert_eq!(path.as_deref(), Some("inst.json"));
            }
            other => panic!("unexpected parse: {other:?}"),
        }
        // Guard rails: every one of these is a usage error.
        for bad in [
            "cluster",
            "cluster frobnicate --backends a:1",
            "cluster grid",
            "cluster solve --backends a:1",
            "cluster grid --backends ,",
            "cluster grid --backends a:1 --hedge-every 2 --hedge-p99 300",
            "cluster grid --backends a:1 --hedge-every 0",
            "cluster grid --backends a:1 --chaos --plan p.json",
            "cluster sweep --backends a:1 --k 1",
            "cluster sweep --backends a:1 --resume",
            "cluster grid --backends a:1 --spares b:2",
            "bench --serve --cluster",
        ] {
            let err = parse(&argv(bad)).unwrap_err();
            assert_eq!(err.tag(), "usage", "`{bad}` must be a usage error: {err}");
        }
        assert_eq!(
            parse(&argv("bench --quick --cluster")).unwrap(),
            Command::Bench {
                quick: true,
                serve: false,
                cluster: true,
                obs: false,
                large: false,
                churn: false,
                verify: false,
                online: false,
                out: "BENCH_5.json".into(),
                check: None
            }
        );
    }

    #[test]
    fn obs_bench_gates_and_is_its_own_baseline() {
        let dir = std::env::temp_dir().join("machmin_obs_bench");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_6.json").to_string_lossy().to_string();
        let msg = execute(Command::Bench {
            quick: true,
            serve: false,
            cluster: false,
            obs: true,
            large: false,
            churn: false,
            verify: false,
            online: false,
            out: path.clone(),
            check: None,
        })
        .unwrap();
        assert!(msg.contains("byte-identical under tracing"), "{msg}");
        assert!(msg.contains("baseline ->"), "{msg}");
        let doc = mm_json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(
            doc.get("schema").and_then(mm_json::Json::as_str),
            Some("machmin-obs-bench-v1")
        );
        assert_eq!(
            doc.get("traced_identical").and_then(mm_json::Json::as_bool),
            Some(true)
        );
        assert_eq!(
            doc.get("hist_total").and_then(mm_json::Json::as_i64),
            doc.get("responses").and_then(mm_json::Json::as_i64)
        );
        // A run is a valid baseline for itself: the gated keys are
        // deterministic functions of the seed.
        let msg = execute(Command::Bench {
            quick: true,
            serve: false,
            cluster: false,
            obs: true,
            large: false,
            churn: false,
            verify: false,
            online: false,
            out: path.clone(),
            check: Some(path.clone()),
        })
        .unwrap();
        assert!(msg.contains("counters match committed baseline"), "{msg}");
        std::fs::remove_file(&path).ok();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cluster_stats_and_top_render_a_live_pool() {
        let dir = std::env::temp_dir().join("machmin_cli_stats");
        std::fs::create_dir_all(&dir).unwrap();
        let out_path = dir.join("stats.json").to_string_lossy().to_string();
        let pool = spawn_bench_pool(2, 64).unwrap();
        let backends: Vec<String> = pool.iter().map(|b| b.addr.clone()).collect();
        let msg = execute(Command::Cluster {
            workload: "stats".into(),
            path: None,
            backends: backends.clone(),
            balance: "round-robin".into(),
            seed: 0,
            window: 8,
            hedge_every: None,
            hedge_p99: None,
            hedge_floor_ms: 10,
            chaos: false,
            plan: None,
            churn: None,
            spares: vec![],
            migration_budget: 64,
            verify: "off".into(),
            deadline_ms: None,
            policies: "edf-ff".into(),
            k: 4,
            machines: 16,
            checkpoint: None,
            resume: false,
            families: "uniform".into(),
            seeds: 1,
            n: 4,
            members: "all".into(),
            out: Some(out_path.clone()),
            trace: None,
            metrics: None,
        })
        .unwrap();
        assert!(msg.contains("2/2 backend(s) up"), "{msg}");
        assert!(msg.contains("stats ->"), "{msg}");
        let doc = mm_json::parse(&std::fs::read_to_string(&out_path).unwrap()).unwrap();
        assert_eq!(
            doc.get("backends_reachable")
                .and_then(mm_json::Json::as_i64),
            Some(2)
        );
        let msg = execute(Command::Top {
            backends,
            interval_s: 0,
            frames: 0,
        })
        .unwrap();
        assert!(msg.contains("machmin top"), "{msg}");
        assert!(msg.contains("pool:"), "{msg}");
        teardown_bench_pool(pool).unwrap();
        // A fully unreachable pool is an io error, not a panic.
        let err = execute(Command::Top {
            backends: vec!["127.0.0.1:1".into()],
            interval_s: 0,
            frames: 0,
        })
        .unwrap_err();
        assert_eq!(err.tag(), "io");
        std::fs::remove_file(&out_path).ok();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cluster_solve_round_trips_against_a_live_pool() {
        let dir = std::env::temp_dir().join("machmin_cli_cluster");
        std::fs::create_dir_all(&dir).unwrap();
        let inst_path = dir.join("inst.json").to_string_lossy().to_string();
        let transcript = dir.join("cluster.jsonl").to_string_lossy().to_string();
        let inst = Instance::from_ints([(0, 2, 2), (0, 2, 2), (0, 2, 2)]);
        io::save(&inst, &inst_path).unwrap();
        let pool = spawn_bench_pool(2, 64).unwrap();
        let backends: Vec<String> = pool.iter().map(|b| b.addr.clone()).collect();
        let cmd = |workload: &str, backends: Vec<String>| Command::Cluster {
            workload: workload.into(),
            path: (workload == "solve").then(|| inst_path.clone()),
            backends,
            balance: "hash".into(),
            seed: 5,
            window: 8,
            hedge_every: None,
            hedge_p99: None,
            hedge_floor_ms: 10,
            chaos: false,
            plan: None,
            churn: None,
            spares: vec![],
            migration_budget: 64,
            verify: "off".into(),
            deadline_ms: None,
            policies: "edf-ff".into(),
            k: 3,
            machines: 8,
            checkpoint: None,
            resume: false,
            families: "uniform".into(),
            seeds: 2,
            n: 8,
            members: "all".into(),
            out: Some(transcript.clone()),
            trace: None,
            metrics: None,
        };
        let msg = execute(cmd("solve", backends.clone())).unwrap();
        assert!(msg.contains("cluster solve: optimum 3 machines"), "{msg}");
        assert!(msg.contains("lost responses: 0"), "{msg}");
        let lines = std::fs::read_to_string(&transcript).unwrap();
        assert!(lines.starts_with("{\"cluster\":\"solve\""), "{lines}");
        let msg = execute(cmd("grid", backends)).unwrap();
        assert!(msg.contains("cluster grid: 2 cell(s)"), "{msg}");
        assert!(msg.contains("\"solved\""), "{msg}");
        teardown_bench_pool(pool).unwrap();
        // A pool with no listener is a categorized io error, not a panic.
        let err = execute(cmd("solve", vec!["127.0.0.1:1".into()])).unwrap_err();
        assert_eq!(err.tag(), "io", "{err}");
        // An unknown balance policy is a usage error.
        let mut bad = cmd("grid", vec!["127.0.0.1:1".into()]);
        if let Command::Cluster { balance, .. } = &mut bad {
            *balance = "fastest".into();
        }
        let err = execute(bad).unwrap_err();
        assert_eq!(err.tag(), "usage", "{err}");
        std::fs::remove_file(&inst_path).ok();
        std::fs::remove_file(&transcript).ok();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bench_cluster_writes_baseline_and_checks_itself() {
        let dir = std::env::temp_dir().join("machmin_cli_bench_cluster");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bench5.json").to_string_lossy().to_string();
        let msg = execute(Command::Bench {
            quick: true,
            serve: false,
            cluster: true,
            obs: false,
            large: false,
            churn: false,
            verify: false,
            online: false,
            out: path.clone(),
            check: None,
        })
        .unwrap();
        assert!(msg.contains("cluster bench:"), "{msg}");
        assert!(msg.contains("baseline ->"), "{msg}");
        let doc = mm_json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(
            doc.get("schema").and_then(mm_json::Json::as_str),
            Some("machmin-cluster-bench-v1")
        );
        let scatter = doc.get("scatter").unwrap();
        assert_eq!(scatter.get("lost").and_then(mm_json::Json::as_i64), Some(0));
        assert!(
            scatter.get("hedges").and_then(mm_json::Json::as_i64) > Some(0),
            "{scatter:?}"
        );
        assert!(
            scatter.get("backend_drops").and_then(mm_json::Json::as_i64) > Some(0),
            "{scatter:?}"
        );
        // Deterministic counters gate against themselves.
        let msg = execute(Command::Bench {
            quick: true,
            serve: false,
            cluster: true,
            obs: false,
            large: false,
            churn: false,
            verify: false,
            online: false,
            out: path.clone(),
            check: Some(path.clone()),
        })
        .unwrap();
        assert!(msg.contains("counters match committed baseline"), "{msg}");
        std::fs::remove_file(&path).ok();
        std::fs::remove_dir_all(&dir).ok();
    }
}
