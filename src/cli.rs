//! Implementation of the `machmin` command-line tool.
//!
//! Kept in the library (rather than the binary) so the argument parsing and
//! command logic are unit-testable; `src/bin/machmin.rs` is a thin shim.

use std::fmt::Write as _;

use mm_core::{AgreeableSplit, Edf, EdfFirstFit, LaminarBudget, Llf, MediumFit};
use mm_instance::generators::{
    agreeable, laminar, loose, uniform, AgreeableCfg, LaminarCfg, UniformCfg,
};
use mm_instance::{io, Instance};
use mm_numeric::Rat;
use mm_opt::{contribution_bound, demigrate, optimal_machines, theorem2_bound};
use mm_sim::{render_gantt, run_policy, verify, SimConfig, VerifyOptions};

/// A parsed command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// `solve <instance.json>` — exact optimum + Theorem 1 certificate.
    Solve {
        /// Instance file.
        path: String,
    },
    /// `classify <instance.json>` — structure, Δ, looseness report.
    Classify {
        /// Instance file.
        path: String,
    },
    /// `schedule <instance.json> --policy <name> [--machines N]`.
    Schedule {
        /// Instance file.
        path: String,
        /// Policy name (edf, llf, edf-ff, medium-fit, agreeable, laminar).
        policy: String,
        /// Machine budget (defaults to one per job).
        machines: Option<usize>,
    },
    /// `demigrate <instance.json>` — offline migratory → non-migratory.
    Demigrate {
        /// Instance file.
        path: String,
    },
    /// `generate <family> --n N --seed S --out <file.json>`.
    Generate {
        /// Family: uniform, agreeable, laminar, loose.
        family: String,
        /// Number of jobs (ignored for laminar).
        n: usize,
        /// RNG seed.
        seed: u64,
        /// Output file.
        out: String,
    },
    /// `help`.
    Help,
}

/// CLI error with a user-facing message.
#[derive(Debug)]
pub struct CliError(pub String);

impl core::fmt::Display for CliError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Parses raw arguments (without the program name).
pub fn parse(args: &[String]) -> Result<Command, CliError> {
    let cmd = args.first().map(String::as_str).unwrap_or("help");
    match cmd {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "solve" => Ok(Command::Solve {
            path: args.get(1).cloned().ok_or_else(usage_solve)?,
        }),
        "classify" => Ok(Command::Classify {
            path: args.get(1).cloned().ok_or_else(usage_classify)?,
        }),
        "demigrate" => Ok(Command::Demigrate {
            path: args.get(1).cloned().ok_or_else(|| CliError("usage: machmin demigrate <instance.json>".into()))?,
        }),
        "schedule" => {
            let path = args.get(1).cloned().ok_or_else(usage_schedule)?;
            let policy = flag(args, "--policy").ok_or_else(usage_schedule)?;
            let machines = match flag(args, "--machines") {
                Some(v) => Some(
                    v.parse()
                        .map_err(|_| CliError(format!("invalid --machines value: {v}")))?,
                ),
                None => None,
            };
            Ok(Command::Schedule { path, policy, machines })
        }
        "generate" => {
            let family = args.get(1).cloned().ok_or_else(usage_generate)?;
            let n = flag(args, "--n")
                .unwrap_or_else(|| "50".into())
                .parse()
                .map_err(|_| CliError("invalid --n".into()))?;
            let seed = flag(args, "--seed")
                .unwrap_or_else(|| "0".into())
                .parse()
                .map_err(|_| CliError("invalid --seed".into()))?;
            let out = flag(args, "--out").ok_or_else(usage_generate)?;
            Ok(Command::Generate { family, n, seed, out })
        }
        other => Err(CliError(format!(
            "unknown command `{other}`; run `machmin help`"
        ))),
    }
}

fn usage_solve() -> CliError {
    CliError("usage: machmin solve <instance.json>".into())
}

fn usage_classify() -> CliError {
    CliError("usage: machmin classify <instance.json>".into())
}

fn usage_schedule() -> CliError {
    CliError(
        "usage: machmin schedule <instance.json> --policy <edf|llf|edf-ff|medium-fit|agreeable|laminar> [--machines N]"
            .into(),
    )
}

fn usage_generate() -> CliError {
    CliError(
        "usage: machmin generate <uniform|agreeable|laminar|loose> [--n N] [--seed S] --out <file.json>"
            .into(),
    )
}

/// Help text.
pub fn help_text() -> &'static str {
    "machmin — online machine minimization (SPAA'16 reproduction)\n\
     \n\
     commands:\n\
       solve <inst.json>                        exact migratory optimum + Theorem 1 certificate\n\
       classify <inst.json>                     structure (agreeable/laminar), Δ, looseness\n\
       schedule <inst.json> --policy P [--machines N]\n\
                                                run an online policy and verify its schedule\n\
                                                P ∈ {edf, llf, edf-ff, medium-fit, agreeable, laminar}\n\
       demigrate <inst.json>                    offline migratory → non-migratory transformation\n\
       generate <family> [--n N] [--seed S] --out <file.json>\n\
                                                family ∈ {uniform, agreeable, laminar, loose}\n\
       help                                     this text\n"
}

fn load(path: &str) -> Result<Instance, CliError> {
    io::load(path).map_err(|e| CliError(format!("cannot load {path}: {e}")))
}

/// Executes a command, returning the text to print.
pub fn execute(cmd: Command) -> Result<String, CliError> {
    let mut out = String::new();
    match cmd {
        Command::Help => out.push_str(help_text()),
        Command::Solve { path } => {
            let inst = load(&path)?;
            let m = optimal_machines(&inst);
            let cert = contribution_bound(&inst);
            let _ = writeln!(out, "jobs: {}", inst.len());
            let _ = writeln!(out, "migratory optimum m(J): {m}");
            let _ = writeln!(
                out,
                "Theorem 1 certificate: ⌈{}⌉ = {} on witness {}",
                cert.density, cert.bound, cert.witness
            );
        }
        Command::Classify { path } => {
            let inst = load(&path)?;
            let _ = writeln!(out, "jobs: {}", inst.len());
            let _ = writeln!(out, "structure: {:?}", inst.classify());
            if let Some(d) = inst.delta() {
                let _ = writeln!(out, "Δ (max/min processing): {}", d);
            }
            for (num, den) in [(1i64, 2i64), (63, 100), (9, 10)] {
                let alpha = Rat::ratio(num, den);
                let loose = inst.iter().filter(|j| j.is_loose(&alpha)).count();
                let _ = writeln!(
                    out,
                    "α = {num}/{den}: {loose} loose / {} tight",
                    inst.len() - loose
                );
            }
        }
        Command::Demigrate { path } => {
            let inst = load(&path)?;
            let m = optimal_machines(&inst);
            let res = demigrate(&inst);
            let mut sched = res.schedule;
            verify(&inst, &mut sched, &VerifyOptions::nonmigratory())
                .map_err(|e| CliError(format!("internal: demigrated schedule invalid: {e:?}")))?;
            let _ = writeln!(out, "migratory optimum: {m}");
            let _ = writeln!(
                out,
                "non-migratory machines: {} (Theorem 2 bound: {})",
                res.machines,
                theorem2_bound(m)
            );
        }
        Command::Schedule { path, policy, machines } => {
            let inst = load(&path)?;
            let budget = machines.unwrap_or(inst.len()).max(1);
            let m = optimal_machines(&inst);
            let (outcome, opts) = match policy.as_str() {
                "edf" => (
                    run_policy(&inst, Edf, SimConfig::migratory(budget)),
                    VerifyOptions::migratory(),
                ),
                "llf" => (
                    run_policy(&inst, Llf::new(), SimConfig::migratory(budget)),
                    VerifyOptions::migratory(),
                ),
                "edf-ff" => (
                    run_policy(&inst, EdfFirstFit::new(), SimConfig::nonmigratory(budget)),
                    VerifyOptions::nonmigratory(),
                ),
                "medium-fit" => (
                    run_policy(&inst, MediumFit::new(), SimConfig::nonmigratory(budget)),
                    VerifyOptions::nonpreemptive(),
                ),
                "agreeable" => (
                    run_policy(
                        &inst,
                        AgreeableSplit::for_optimum(m),
                        SimConfig::nonmigratory(
                            AgreeableSplit::for_optimum(m).total_machines().max(budget),
                        ),
                    ),
                    VerifyOptions::nonmigratory(),
                ),
                "laminar" => {
                    let p = LaminarBudget::new(
                        LaminarBudget::suggested_m_prime(m, 4),
                        (4 * m) as usize,
                        Rat::half(),
                    );
                    let total = p.total_machines().max(budget);
                    (
                        run_policy(&inst, p, SimConfig::nonmigratory(total)),
                        VerifyOptions::nonmigratory(),
                    )
                }
                other => return Err(CliError(format!("unknown policy `{other}`"))),
            };
            let mut outcome = match outcome {
                Ok(o) => o,
                Err(e) => return Err(CliError(format!("simulation failed: {e}"))),
            };
            let _ = writeln!(out, "policy: {policy}, budget: {budget}, optimum m: {m}");
            if outcome.feasible() {
                let stats = verify(&outcome.instance, &mut outcome.schedule, &opts)
                    .map_err(|e| CliError(format!("schedule failed verification: {e:?}")))?;
                let _ = writeln!(
                    out,
                    "feasible: yes | machines used: {} | migrations: {} | preemptions: {}",
                    stats.machines_used, stats.migrations, stats.preemptions
                );
            } else {
                let _ = writeln!(
                    out,
                    "feasible: NO ({} deadline misses within budget {budget})",
                    outcome.misses.len()
                );
            }
            outcome.schedule.compact_machines();
            out.push_str(&render_gantt(&mut outcome.schedule, 72));
        }
        Command::Generate { family, n, seed, out: path } => {
            let inst = match family.as_str() {
                "uniform" => uniform(&UniformCfg { n, ..Default::default() }, seed),
                "agreeable" => agreeable(&AgreeableCfg { n, ..Default::default() }, seed),
                "laminar" => laminar(&LaminarCfg::default(), seed),
                "loose" => loose(
                    &UniformCfg { n, ..Default::default() },
                    &Rat::ratio(1, 2),
                    seed,
                ),
                other => return Err(CliError(format!("unknown family `{other}`"))),
            };
            io::save(&inst, &path).map_err(|e| CliError(format!("cannot write {path}: {e}")))?;
            let _ = writeln!(out, "wrote {} jobs to {path}", inst.len());
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parse_commands() {
        assert_eq!(parse(&argv("help")).unwrap(), Command::Help);
        assert_eq!(
            parse(&argv("solve a.json")).unwrap(),
            Command::Solve { path: "a.json".into() }
        );
        assert_eq!(
            parse(&argv("schedule a.json --policy edf --machines 3")).unwrap(),
            Command::Schedule {
                path: "a.json".into(),
                policy: "edf".into(),
                machines: Some(3)
            }
        );
        assert_eq!(
            parse(&argv("generate uniform --n 10 --seed 7 --out x.json")).unwrap(),
            Command::Generate {
                family: "uniform".into(),
                n: 10,
                seed: 7,
                out: "x.json".into()
            }
        );
        assert!(parse(&argv("frobnicate")).is_err());
        assert!(parse(&argv("schedule a.json")).is_err());
        assert!(parse(&argv("schedule a.json --policy edf --machines x")).is_err());
        // empty argv = help
        assert_eq!(parse(&[]).unwrap(), Command::Help);
    }

    #[test]
    fn roundtrip_generate_solve_schedule() {
        let dir = std::env::temp_dir().join("machmin_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("inst.json").to_string_lossy().to_string();

        let msg = execute(Command::Generate {
            family: "agreeable".into(),
            n: 12,
            seed: 3,
            out: path.clone(),
        })
        .unwrap();
        assert!(msg.contains("wrote 12 jobs"));

        let msg = execute(Command::Solve { path: path.clone() }).unwrap();
        assert!(msg.contains("migratory optimum"));
        assert!(msg.contains("Theorem 1 certificate"));

        let msg = execute(Command::Classify { path: path.clone() }).unwrap();
        assert!(msg.contains("Agreeable") || msg.contains("Both"));

        let msg = execute(Command::Schedule {
            path: path.clone(),
            policy: "edf-ff".into(),
            machines: None,
        })
        .unwrap();
        assert!(msg.contains("feasible: yes"), "{msg}");
        assert!(msg.contains("machines used"));

        let msg = execute(Command::Demigrate { path: path.clone() }).unwrap();
        assert!(msg.contains("non-migratory machines"));

        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn schedule_reports_misses_gracefully() {
        let dir = std::env::temp_dir().join("machmin_cli_test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tight.json").to_string_lossy().to_string();
        let inst = Instance::from_ints([(0, 2, 2), (0, 2, 2), (0, 2, 2)]);
        io::save(&inst, &path).unwrap();
        let msg = execute(Command::Schedule {
            path: path.clone(),
            policy: "edf".into(),
            machines: Some(1),
        })
        .unwrap();
        assert!(msg.contains("feasible: NO"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unknown_policy_and_family_error() {
        assert!(execute(Command::Schedule {
            path: "/nonexistent.json".into(),
            policy: "edf".into(),
            machines: None
        })
        .is_err());
        let dir = std::env::temp_dir();
        assert!(execute(Command::Generate {
            family: "nope".into(),
            n: 3,
            seed: 0,
            out: dir.join("x.json").to_string_lossy().to_string()
        })
        .is_err());
    }

    #[test]
    fn help_mentions_all_commands() {
        let h = help_text();
        for cmd in ["solve", "classify", "schedule", "demigrate", "generate"] {
            assert!(h.contains(cmd), "help is missing `{cmd}`");
        }
    }
}
