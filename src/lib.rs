//! `machmin` — online machine minimization with and without migration.
//!
//! Facade crate re-exporting the full workspace API. This is a faithful
//! reproduction of *“The Power of Migration in Online Machine Minimization”*
//! (Chen, Megow, Schewior — SPAA 2016): the problem model, the offline
//! optimum, the paper's online algorithms for loose/laminar/agreeable
//! instances, the classic baselines (EDF, LLF), and the paper's lower-bound
//! adversaries.
//!
//! See the crate-level docs of the member crates for details:
//!
//! * [`numeric`] — exact big-integer / rational arithmetic,
//! * [`instance`] — jobs, instances, classification, generators,
//! * [`flow`] — exact max-flow substrate,
//! * [`sim`] — schedules, verification, and the online driver,
//! * [`opt`] — offline optimum and Theorem 1 certificates,
//! * [`core`] — the online algorithms,
//! * [`adversary`] — the lower-bound constructions.

#![forbid(unsafe_code)]

pub mod cli;
mod error;

pub use error::Error;

pub use mm_adversary as adversary;
pub use mm_core as core;
pub use mm_flow as flow;
pub use mm_instance as instance;
pub use mm_numeric as numeric;
pub use mm_opt as opt;
pub use mm_sim as sim;

/// Commonly used items in one import.
pub mod prelude {
    pub use mm_instance::{Instance, Interval, IntervalSet, Job, JobId, StructureClass};
    pub use mm_numeric::{BigInt, Rat};
}
