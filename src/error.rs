//! Unified error taxonomy with stable process exit codes.
//!
//! Every way a `machmin` invocation can fail maps to one category here, and
//! every category maps to one stable exit code (see [`Error::exit_code`]).
//! Success is always exit code 0 — including *degraded* success, such as a
//! budget-limited `solve` that reports a certified bracket `[lo, hi]`
//! instead of the exact optimum. Degradation is an answer, not an error.
//!
//! | code | category                                   |
//! |------|--------------------------------------------|
//! | 0    | success (exact or certified-degraded)      |
//! | 1    | internal invariant violation               |
//! | 2    | usage (bad flags, unknown command/policy)  |
//! | 3    | I/O or parse failure                       |
//! | 4    | instance validation (degenerate jobs)      |
//! | 5    | simulation failure (step cap, policy bug)  |
//! | 6    | verification / cross-check failure         |
//! | 70   | panic caught at the CLI boundary           |
//!
//! Code 70 follows the `sysexits.h` convention (`EX_SOFTWARE`). The public
//! API is panic-free by contract; the binary still wraps execution in
//! `catch_unwind` so that a latent bug exits with a recognizable code
//! instead of an abort trace.

use core::fmt;

/// A categorized `machmin` failure. See the module docs for the exit-code
/// table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Malformed invocation: unknown command, bad flag value, missing
    /// required argument, unknown policy or generator family.
    Usage(String),
    /// Filesystem or parse failure: unreadable instance, unwritable trace,
    /// malformed JSON/JSONL, unreadable checkpoint or baseline.
    Io(String),
    /// The instance failed [`mm_instance::Instance::validate`]: degenerate
    /// jobs that no schedule could satisfy.
    Validation(String),
    /// The simulation driver failed: step cap exceeded, or a policy emitted
    /// an invalid decision.
    Sim(String),
    /// A produced artifact failed its own check: schedule verification,
    /// trace/verifier cross-check, or a bench counter regression.
    Verification(String),
    /// An internal invariant was violated (a bug in `machmin` itself).
    Internal(String),
    /// A panic was caught at the CLI boundary.
    Panic(String),
}

impl Error {
    /// Exit code for a panic caught at the binary boundary (`EX_SOFTWARE`).
    pub const PANIC_EXIT_CODE: i32 = 70;

    /// The stable process exit code for this category.
    pub fn exit_code(&self) -> i32 {
        match self {
            Error::Internal(_) => 1,
            Error::Usage(_) => 2,
            Error::Io(_) => 3,
            Error::Validation(_) => 4,
            Error::Sim(_) => 5,
            Error::Verification(_) => 6,
            Error::Panic(_) => Error::PANIC_EXIT_CODE,
        }
    }

    /// Short lowercase tag naming the category (stable, for logs/tests).
    pub fn tag(&self) -> &'static str {
        match self {
            Error::Usage(_) => "usage",
            Error::Io(_) => "io",
            Error::Validation(_) => "validation",
            Error::Sim(_) => "sim",
            Error::Verification(_) => "verification",
            Error::Internal(_) => "internal",
            Error::Panic(_) => "panic",
        }
    }

    /// The human-readable message, without the category tag.
    pub fn message(&self) -> &str {
        match self {
            Error::Usage(m)
            | Error::Io(m)
            | Error::Validation(m)
            | Error::Sim(m)
            | Error::Verification(m)
            | Error::Internal(m)
            | Error::Panic(m) => m,
        }
    }
}

/// `Display` shows just the message; the category is available via
/// [`Error::tag`] and the exit code via [`Error::exit_code`].
impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message())
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_are_stable() {
        assert_eq!(Error::Internal("x".into()).exit_code(), 1);
        assert_eq!(Error::Usage("x".into()).exit_code(), 2);
        assert_eq!(Error::Io("x".into()).exit_code(), 3);
        assert_eq!(Error::Validation("x".into()).exit_code(), 4);
        assert_eq!(Error::Sim("x".into()).exit_code(), 5);
        assert_eq!(Error::Verification("x".into()).exit_code(), 6);
        assert_eq!(Error::Panic("x".into()).exit_code(), 70);
    }

    #[test]
    fn display_and_tag() {
        let e = Error::Io("cannot load x.json".into());
        assert_eq!(e.to_string(), "cannot load x.json");
        assert_eq!(e.tag(), "io");
        assert_eq!(e.message(), "cannot load x.json");
    }
}
