//! The `machmin` command-line tool. See `machmin help`.
//!
//! The binary is a thin shim over `machmin::cli`: parse, execute, print.
//! Failures exit with the stable code of their [`machmin::Error`] category;
//! a panic escaping the (panic-free by contract) library is caught here and
//! exits with code 70 instead of aborting with a raw unwind trace.

use std::panic;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // The default hook would print its own "thread panicked" banner before
    // we format the error; silence it and report through one channel.
    panic::set_hook(Box::new(|_| {}));
    let run = panic::catch_unwind(panic::AssertUnwindSafe(|| {
        machmin::cli::parse(&args).and_then(machmin::cli::execute)
    }));
    match run {
        Ok(Ok(text)) => print!("{text}"),
        Ok(Err(e)) => {
            eprintln!("error [{}]: {e}", e.tag());
            std::process::exit(e.exit_code());
        }
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "unknown panic payload".into());
            let e = machmin::Error::Panic(msg);
            eprintln!("error [{}]: internal panic: {e}", e.tag());
            std::process::exit(e.exit_code());
        }
    }
}
