//! The `machmin` command-line tool. See `machmin help`.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match machmin::cli::parse(&args).and_then(machmin::cli::execute) {
        Ok(text) => print!("{text}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
