#!/usr/bin/env bash
# Soak test for `machmin cluster`: a three-backend pool absorbs a full
# experiment grid while a seeded fault plan kills one backend mid-run. The
# victim's in-flight units must resume on the survivors with zero lost
# responses, two same-seed runs must produce byte-identical transcripts,
# and a single healthy backend must gather exactly the same answers — the
# scatter–gather layer has to be invisible in the result.
#
# A second, churn phase runs the same grid under elastic membership: a
# spare backend joins mid-grid, one member drains gracefully while holding
# live shards (they must migrate, not resume-from-loss), and one member
# flaps on the seeded plan and recovers. Zero lost cells, byte-identical
# reruns, and answers identical to the static-pool run.
#
# A third, Byzantine phase runs the grid with `--verify all` over a pool
# whose third backend is seeded to corrupt exactly one answer at
# response-encode time. The coordinator must refute the lie from its own
# attached proof, quarantine the liar, re-ask on the survivors, and still
# merge answers byte-identical to an honest verified single-node run.
#
# A fourth, online phase serves the streaming portfolio race on the pool:
# zero lost cells, per-member ratio merge equal to a single-node
# reference, byte-identical same-seed transcripts.
#
# Usage: scripts/cluster_soak.sh [seeds_per_family] [seed]
# The caller should wrap this script in `timeout` (CI does) so a hung
# gather fails the job instead of stalling it.
set -euo pipefail

SEEDS="${1:-100}"
SEED="${2:-7}"
BIN="${MACHMIN:-./target/release/machmin}"
WORK="$(mktemp -d "${TMPDIR:-/tmp}/machmin-cluster-soak.XXXXXX")"
trap 'rm -rf "$WORK"' EXIT

# Three families x $SEEDS seeds; the drop lands mid-grid.
UNITS=$(( 3 * SEEDS ))
cat >"$WORK/plan.json" <<EOF
{"seed":$SEED,"rules":[{"site":"backend_drop","nth":$(( UNITS / 2 ))}]}
EOF

wait_for_port() {
    for _ in $(seq 1 300); do
        [ -s "$1" ] && return 0
        sleep 0.1
    done
    echo "backend never bound" >&2
    return 1
}

start_pool() {
    # Starts $2 backends, writes their ports, echoes them comma-separated.
    # An optional third argument is a fault-plan file handed to the LAST
    # backend only — how the Byzantine phase plants a single liar.
    local tag="$1" n="$2" liar_plan="${3:-}"
    local addrs=()
    for i in $(seq 1 "$n"); do
        local plan_args=()
        if [ -n "$liar_plan" ] && [ "$i" -eq "$n" ]; then
            plan_args=(--plan "$liar_plan")
        fi
        "$BIN" serve --addr 127.0.0.1:0 --workers 3 --queue-cap 64 \
            --port-file "$WORK/port-$tag-$i.txt" "${plan_args[@]}" \
            >"$WORK/server-$tag-$i.txt" 2>/dev/null &
    done
    for i in $(seq 1 "$n"); do
        wait_for_port "$WORK/port-$tag-$i.txt"
        addrs+=("$(cat "$WORK/port-$tag-$i.txt")")
    done
    (IFS=,; echo "${addrs[*]}")
}

drain_pool() {
    # Asks every still-listening backend to shut down (the dropped victim
    # already drained at the coordinator's request), then reaps them all.
    # Each backend's load report is kept: its end-of-run stats scrape is
    # where migrated-answered counts surface.
    local tag="$1" n="$2"
    for i in $(seq 1 "$n"); do
        "$BIN" load --addr "$(cat "$WORK/port-$tag-$i.txt")" --n 1 --seed 0 \
            >"$WORK/load-$tag-$i.txt" 2>&1 || true
    done
    wait
}

run_grid() {
    # One pooled grid run under the drop plan: seeded hash balancing plus
    # hedging, so the drop, the resumes, and the dedups all happen in one
    # lifecycle.
    local tag="$1"
    local backends
    backends="$(start_pool "$tag" 3)"
    "$BIN" cluster grid --backends "$backends" --balance hash --seed "$SEED" \
        --window 32 --hedge-every 5 --plan "$WORK/plan.json" \
        --families uniform,agreeable,loose --seeds "$SEEDS" --n 10 \
        --out "$WORK/transcript-$tag.jsonl" >"$WORK/grid-$tag.txt"
    # Mid-soak observability: the plan dropped exactly one backend, so a
    # pool-wide stats scrape must degrade gracefully — the two survivors
    # report, the victim shows unreachable, and the scrape still exits 0.
    for _ in $(seq 1 50); do
        "$BIN" cluster stats --backends "$backends" \
            --out "$WORK/stats-$tag.json" >"$WORK/stats-$tag.txt" 2>/dev/null \
            && grep -q "2/3 backend(s) up" "$WORK/stats-$tag.txt" && break
        sleep 0.1
    done
    grep -q "2/3 backend(s) up" "$WORK/stats-$tag.txt"
    grep -q "unreachable" "$WORK/stats-$tag.txt"
    grep -Eq "pool: [1-9][0-9]* response\(s\)" "$WORK/stats-$tag.txt"
    drain_pool "$tag" 3
    grep -q "lost responses: 0" "$WORK/grid-$tag.txt"
    grep -Eq '"backend_drops":[1-9]' "$WORK/grid-$tag.txt"
    echo "cluster soak $tag: ok ($(grep -o '"backend_drops":[0-9]*' "$WORK/grid-$tag.txt"), $(grep -o '"shard_resumes":[0-9]*' "$WORK/grid-$tag.txt"))"
}

run_grid a
run_grid b

# Determinism: same seed, byte-identical transcripts across independent
# pool lifecycles (backend drop, resumes, and hedges included).
diff "$WORK/transcript-a.jsonl" "$WORK/transcript-b.jsonl"
echo "cluster soak: transcripts byte-identical across runs"

# Scatter-gather must be invisible in the answer: one healthy backend with
# no faults and no hedging gathers exactly the same responses (the header
# line differs - backend count and balance - so it is skipped) and the
# same per-family merge.
single="$(start_pool single 1)"
"$BIN" cluster grid --backends "$single" --seed "$SEED" \
    --families uniform,agreeable,loose --seeds "$SEEDS" --n 10 \
    --out "$WORK/transcript-single.jsonl" >"$WORK/grid-single.txt"
drain_pool single 1
grep -q "lost responses: 0" "$WORK/grid-single.txt"
diff <(tail -n +2 "$WORK/transcript-a.jsonl") <(tail -n +2 "$WORK/transcript-single.jsonl")
diff <(grep '^merged:' "$WORK/grid-a.txt") <(grep '^merged:' "$WORK/grid-single.txt")
echo "cluster soak: pooled answers identical to the single-node run"

# ---------------------------------------------------------------------------
# Churn phase: the same grid under elastic membership. The seeded
# backend_churn schedule fires three times (quarter points of the grid):
# the spare joins, backend 1 drains while holding live shards, backend 0
# flaps and recovers via the revive cadence.
cat >"$WORK/churn-events.json" <<EOF
{"events":[{"action":"join"},{"action":"drain","backend":1},{"action":"flap","backend":0}]}
EOF
CHURN_NTH=$(( UNITS / 4 ))
[ "$CHURN_NTH" -lt 1 ] && CHURN_NTH=1
cat >"$WORK/churn-plan.json" <<EOF
{"seed":$SEED,"rules":[{"site":"backend_churn","nth":$CHURN_NTH,"every":$CHURN_NTH}]}
EOF

run_churn() {
    local tag="$1"
    local backends spare
    backends="$(start_pool "churn-$tag" 3)"
    spare="$(start_pool "churnspare-$tag" 1)"
    "$BIN" cluster grid --backends "$backends" --balance hash --seed "$SEED" \
        --window 32 --plan "$WORK/churn-plan.json" \
        --churn "$WORK/churn-events.json" --spares "$spare" \
        --families uniform,agreeable,loose --seeds "$SEEDS" --n 10 \
        --out "$WORK/transcript-churn-$tag.jsonl" >"$WORK/grid-churn-$tag.txt"
    drain_pool "churn-$tag" 3
    drain_pool "churnspare-$tag" 1
    grep -q "lost responses: 0" "$WORK/grid-churn-$tag.txt"
    # The whole schedule ran: one join, one drain, one flap.
    grep -q '"churn_events":3' "$WORK/grid-churn-$tag.txt"
    grep -q '"joins":1' "$WORK/grid-churn-$tag.txt"
    grep -q '"drains":1' "$WORK/grid-churn-$tag.txt"
    grep -q '"flaps":1' "$WORK/grid-churn-$tag.txt"
    # The drained backend held live shards, so at least one migrated...
    grep -Eq '"migrations":[1-9]' "$WORK/grid-churn-$tag.txt"
    # ...and some backend's end-of-run scrape shows it answered work moved
    # onto it (`machmin load` surfaces the distinct migrated-answered count).
    # (grep reads the files directly: `cat | grep -q` would SIGPIPE cat
    # when grep quits at the first match, and pipefail turns that into a
    # spurious failure.)
    grep -q "migrated-answered:" \
        "$WORK"/load-churn-"$tag"-*.txt "$WORK"/load-churnspare-"$tag"-*.txt
    echo "cluster soak churn $tag: ok ($(grep -o '"migrations":[0-9]*' "$WORK/grid-churn-$tag.txt"), $(grep -o '"migrated_answers":[0-9]*' "$WORK/grid-churn-$tag.txt"))"
}

run_churn a
run_churn b

# Churn determinism: the deterministic slice (transcripts, event counters)
# is byte-identical across independent elastic-pool lifecycles.
diff "$WORK/transcript-churn-a.jsonl" "$WORK/transcript-churn-b.jsonl"
echo "cluster soak: churn transcripts byte-identical across runs"

# Elastic membership must be invisible in the answers: joins, drains,
# flaps, and migrations change who answers, never what is answered. (The
# header line differs — the joiner grew the backend count — so it is
# skipped.)
diff <(tail -n +2 "$WORK/transcript-churn-a.jsonl") <(tail -n +2 "$WORK/transcript-a.jsonl")
diff <(grep '^merged:' "$WORK/grid-churn-a.txt") <(grep '^merged:' "$WORK/grid-a.txt")
echo "cluster soak: churn answers identical to the static-pool run"

# ---------------------------------------------------------------------------
# Byzantine phase: proof-carrying answers under `--verify all`. The third
# backend's fault plan corrupts exactly one answer at response-encode time;
# the coordinator refutes it from the attached proof, quarantines the liar
# (it revives on the probe cadence once honest again), and re-asks the unit
# on the survivors. Refutation counters are seeded and gated; re-ask timing
# is reported, never gated.
cat >"$WORK/byz-plan.json" <<EOF
{"seed":$SEED,"rules":[{"site":"answer_corruption","nth":1}]}
EOF

run_byz() {
    local tag="$1"
    local backends
    backends="$(start_pool "byz-$tag" 3 "$WORK/byz-plan.json")"
    "$BIN" cluster grid --backends "$backends" --balance hash --seed "$SEED" \
        --window 32 --verify all \
        --families uniform,agreeable,loose --seeds "$SEEDS" --n 10 \
        --out "$WORK/transcript-byz-$tag.jsonl" >"$WORK/grid-byz-$tag.txt"
    drain_pool "byz-$tag" 3
    grep -q "lost responses: 0" "$WORK/grid-byz-$tag.txt"
    # Exactly the planted lie was refuted, charged to the liar (backend 2),
    # and the liar was quarantined through the ordinary recoverable path.
    grep -q '"refuted":1' "$WORK/grid-byz-$tag.txt"
    grep -q '"per_backend_refuted":\[0,0,1\]' "$WORK/grid-byz-$tag.txt"
    grep -Eq '"quarantines":[1-9]' "$WORK/grid-byz-$tag.txt"
    grep -q "1 refuted" "$WORK/grid-byz-$tag.txt"
    echo "cluster soak byzantine $tag: ok ($(grep -o '"refuted":[0-9]*' "$WORK/grid-byz-$tag.txt" | head -1), $(grep -o '"reasks":[0-9]*' "$WORK/grid-byz-$tag.txt"))"
}

run_byz a
run_byz b

# Byzantine determinism: the deterministic slice (transcripts, refutation
# counters) is byte-identical across independent lying-pool lifecycles.
# The *verified* and *unverifiable* counts (totals and per-backend
# splits) are excluded: every received response is checked under
# `--verify all`, including hedged and re-asked duplicates and cached
# journal replays, so those counts depend on how many duplicates the run
# happened to race into — the refutation fields do not.
diff "$WORK/transcript-byz-a.jsonl" "$WORK/transcript-byz-b.jsonl"
for field in refuted reasks; do
    diff <(grep -o "\"$field\":[0-9]*" "$WORK/grid-byz-a.txt") \
         <(grep -o "\"$field\":[0-9]*" "$WORK/grid-byz-b.txt")
done
diff <(grep -o '"per_backend_refuted":\[[^]]*\]' "$WORK/grid-byz-a.txt") \
     <(grep -o '"per_backend_refuted":\[[^]]*\]' "$WORK/grid-byz-b.txt")
echo "cluster soak: byzantine transcripts byte-identical across runs"

# The lie must be invisible in the answers: an honest single backend under
# the same `--verify all` policy gathers exactly the same proof-carrying
# responses (the header differs — backend count and balance — so it is
# skipped), with zero refutations.
vsingle="$(start_pool byz-single 1)"
"$BIN" cluster grid --backends "$vsingle" --seed "$SEED" --verify all \
    --families uniform,agreeable,loose --seeds "$SEEDS" --n 10 \
    --out "$WORK/transcript-byz-single.jsonl" >"$WORK/grid-byz-single.txt"
drain_pool byz-single 1
grep -q "lost responses: 0" "$WORK/grid-byz-single.txt"
grep -q '"refuted":0' "$WORK/grid-byz-single.txt"
diff <(tail -n +2 "$WORK/transcript-byz-a.jsonl") <(tail -n +2 "$WORK/transcript-byz-single.jsonl")
diff <(grep '^merged:' "$WORK/grid-byz-a.txt") <(grep '^merged:' "$WORK/grid-byz-single.txt")
echo "cluster soak: byzantine answers identical to the honest single-node run"

# ---------------------------------------------------------------------------
# Online phase: the streaming portfolio race served on the pool. Every
# (member × family × seed) cell replays its event stream on some backend
# with strictly no lookahead; the coordinator's per-member competitive-
# ratio merge must equal a single-node reference (the workload itself
# enforces this and prints the parity line), zero cells may be lost, and
# two same-seed pool lifecycles must produce byte-identical transcripts.
ONLINE_SEEDS=$(( SEEDS / 10 ))
[ "$ONLINE_SEEDS" -lt 2 ] && ONLINE_SEEDS=2

run_online() {
    local tag="$1"
    local backends
    backends="$(start_pool "online-$tag" 3)"
    "$BIN" cluster online --backends "$backends" --balance hash --seed "$SEED" \
        --window 32 --members all --families uniform,agreeable \
        --seeds "$ONLINE_SEEDS" --n 10 \
        --out "$WORK/transcript-online-$tag.jsonl" >"$WORK/online-$tag.txt"
    drain_pool "online-$tag" 3
    grep -q "lost responses: 0" "$WORK/online-$tag.txt"
    grep -q "merge parity: cluster == single-node reference" "$WORK/online-$tag.txt"
    echo "cluster soak online $tag: ok ($(grep -o 'cluster online: [0-9]* cell(s)' "$WORK/online-$tag.txt"))"
}

run_online a
run_online b

# Online determinism: transcripts and the per-member ratio merge are
# byte-identical across independent pool lifecycles.
diff "$WORK/transcript-online-a.jsonl" "$WORK/transcript-online-b.jsonl"
diff <(grep '^merged:' "$WORK/online-a.txt") <(grep '^merged:' "$WORK/online-b.txt")
echo "cluster soak: online race merges byte-identical across runs"
