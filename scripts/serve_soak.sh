#!/usr/bin/env bash
# Soak test for `machmin serve`: a seeded fault-plan server absorbs a mixed
# request load with zero lost responses, drains cleanly, and holds the
# admitted == responses invariant. Two same-seed runs must produce
# byte-identical transcripts, and a restart on the journal must replay every
# acked response.
#
# Usage: scripts/serve_soak.sh [n_requests] [seed]
# The caller should wrap this script in `timeout` (CI does) so a hung drain
# fails the job instead of stalling it.
set -euo pipefail

N="${1:-500}"
SEED="${2:-7}"
BIN="${MACHMIN:-./target/release/machmin}"
WORK="$(mktemp -d "${TMPDIR:-/tmp}/machmin-soak.XXXXXX")"
trap 'rm -rf "$WORK"' EXIT

wait_for_port() {
    for _ in $(seq 1 300); do
        [ -s "$1" ] && return 0
        sleep 0.1
    done
    echo "server never bound" >&2
    return 1
}

run_soak() {
    # One full server lifecycle: start with the chaos fault plan and a
    # journal, drive $N mixed requests through the closed-loop client
    # (window below the queue cap, so nothing sheds and the transcript is
    # deterministic), shut down, and check the server's own accounting.
    # --retry-attempts far above the plan's possible fire count makes
    # quarantine impossible, so every response is a pure function of its
    # request.
    local tag="$1"
    local server_log="$WORK/server-$tag.txt"
    local port_file="$WORK/port-$tag.txt"

    "$BIN" serve --addr 127.0.0.1:0 --workers 2 --queue-cap 16 \
        --seed "$SEED" --chaos --retry-attempts 1000 \
        --journal "$WORK/journal-$tag.jsonl" \
        --port-file "$port_file" >"$server_log" 2>/dev/null &
    local server_pid=$!

    wait_for_port "$port_file"
    "$BIN" load --addr "$(cat "$port_file")" --n "$N" --seed "$SEED" \
        --window 8 --out "$WORK/transcript-$tag.jsonl" \
        >"$WORK/load-$tag.txt"
    wait "$server_pid"

    grep -q "lost responses: 0" "$WORK/load-$tag.txt"
    grep -q "invariant requests_admitted == responses_sent: ok" "$server_log"
    echo "soak $tag: ok ($(grep '^requests:' "$server_log"))"
}

run_soak a
run_soak b

# Determinism: same seed, byte-identical transcripts across independent
# server lifecycles (panic retries and all).
diff "$WORK/transcript-a.jsonl" "$WORK/transcript-b.jsonl"
echo "soak: transcripts byte-identical across runs"

# Observability: a live server's stats scrape must account for every
# response. Run the same chaos load without the shutdown, then scrape the
# `stats` endpoint until the registry has flushed: the pooled latency
# histogram's observation count must equal the response counter, and the
# queue must have drained (in-flight back to zero) while the server is
# still up.
port_file="$WORK/port-stats.txt"
"$BIN" serve --addr 127.0.0.1:0 --workers 2 --queue-cap 16 \
    --seed "$SEED" --chaos --retry-attempts 1000 \
    --port-file "$port_file" >"$WORK/server-stats.txt" 2>/dev/null &
stats_pid=$!
wait_for_port "$port_file"
"$BIN" load --addr "$(cat "$port_file")" --n "$N" --seed "$SEED" \
    --window 8 --no-shutdown >"$WORK/load-stats.txt"
grep -q "lost responses: 0" "$WORK/load-stats.txt"
for _ in $(seq 1 100); do
    "$BIN" cluster stats --backends "$(cat "$port_file")" \
        --out "$WORK/stats.json" >"$WORK/stats-view.txt"
    grep -q "pool: $N response(s), $N observation(s)" "$WORK/stats-view.txt" \
        && break
    sleep 0.1
done
grep -q "1/1 backend(s) up" "$WORK/stats-view.txt"
grep -q "pool: $N response(s), $N observation(s)" "$WORK/stats-view.txt"
grep -q '"serve.responses": '"$N"'\b' "$WORK/stats.json"
grep -q '"in_flight": 0\b' "$WORK/stats.json"
"$BIN" load --addr "$(cat "$port_file")" --n 1 --seed 0 >/dev/null
wait "$stats_pid"
echo "soak: stats scrape accounted for all $N responses"

# Crash-safety: a fresh server on run A's journal replays every acked
# response on startup (the journal is complete, so nothing re-runs).
[ "$(grep -c '"rec":"acked"' "$WORK/journal-a.jsonl")" -eq "$N" ]
port_file="$WORK/port-replay.txt"
"$BIN" serve --addr 127.0.0.1:0 --journal "$WORK/journal-a.jsonl" \
    --port-file "$port_file" >"$WORK/server-replay.txt" 2>/dev/null &
replay_pid=$!
wait_for_port "$port_file"
"$BIN" load --addr "$(cat "$port_file")" --n 1 --seed 0 >/dev/null
wait "$replay_pid"
grep -q "journal: replayed $N acked response(s) on startup" "$WORK/server-replay.txt"
echo "soak: journal replay recovered $N acked responses"
