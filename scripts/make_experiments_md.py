#!/usr/bin/env python3
"""Assembles EXPERIMENTS.md from the narrative template and the measured
tables in experiments_output.txt (produced by `exp_all`)."""

import re
import sys
from pathlib import Path

root = Path(__file__).resolve().parent.parent
raw = (root / "experiments_output.txt").read_text()

# Split the exp_all output into blocks keyed by their "## Exx" headers.
blocks: dict[str, str] = {}
current_key = None
current: list[str] = []
for line in raw.splitlines():
    m = re.match(r"## (E\d+[ab]?)\b", line)
    if m:
        if current_key:
            blocks[current_key] = "\n".join(current).rstrip() + "\n"
        current_key = m.group(1)
        current = [line]
    elif current_key is not None:
        # The Corollary 1 line belongs to E8's block.
        current.append(line)
if current_key:
    blocks[current_key] = "\n".join(current).rstrip() + "\n"

template = (root / "scripts" / "EXPERIMENTS.template.md").read_text()

def sub(m: re.Match) -> str:
    key = m.group(1)
    if key not in blocks:
        sys.exit(f"missing experiment block {key} in experiments_output.txt")
    return "```text\n" + blocks[key].rstrip() + "\n```"

out = re.sub(r"\{\{(E\d+[ab]?)\}\}", sub, template)
(root / "EXPERIMENTS.md").write_text(out)
print(f"EXPERIMENTS.md written ({len(out)} bytes, {len(blocks)} tables)")
